//! End-to-end integration: every examined benchmark runs on both platforms
//! under every valid organization, and the reports satisfy global
//! invariants.

use heteropipe::{run, Organization, Platform, SystemConfig};
use heteropipe_mem::access::Component;
use heteropipe_sim::Ps;
use heteropipe_workloads::{registry, Scale};

/// Every one of the 46 examined benchmarks completes on both platforms at
/// test scale with sane reports.
#[test]
fn all_examined_benchmarks_run_on_both_platforms() {
    for w in registry::examined() {
        let p = w.pipeline(Scale::TEST).expect("builds");
        let mis = w.meta.misalignment_sensitive;
        let d = run::run(&p, &SystemConfig::discrete(), Organization::Serial, mis);
        let h = run::run(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            mis,
        );
        for r in [&d, &h] {
            assert!(r.roi > Ps::ZERO, "{}: empty ROI", p.name);
            assert!(r.busy.gpu > Ps::ZERO, "{}: GPU never ran", p.name);
            assert!(
                r.busy.copy + r.busy.cpu + r.busy.gpu <= r.roi * 3,
                "{}: busy exceeds 3x ROI",
                p.name
            );
            assert!(r.total_accesses() > 0, "{}: no memory accesses", p.name);
            assert_eq!(
                r.classes.total(),
                r.offchip_fetches + r.offchip_writebacks,
                "{}: classifier must cover all off-chip traffic",
                p.name
            );
            let fp_sum: u64 = r.footprint.iter().map(|(_, b)| b).sum();
            assert_eq!(fp_sum, r.total_footprint, "{}: footprint partition", p.name);
        }
        // Discrete copies exist iff the pipeline has copy stages.
        assert_eq!(
            d.accesses[Component::Copy.index()] > 0,
            p.copy_stages() > 0,
            "{}",
            p.name
        );
        // Page faults only ever on the heterogeneous processor.
        assert_eq!(d.faults, 0, "{}", p.name);
    }
}

/// The limited-copy footprint never exceeds the copy footprint (mirrors are
/// gone), and it shrinks for every benchmark with elidable mirrored data.
#[test]
fn limited_copy_footprints_never_grow() {
    for w in registry::examined() {
        let p = w.pipeline(Scale::TEST).expect("builds");
        let mis = w.meta.misalignment_sensitive;
        let d = run::run(&p, &SystemConfig::discrete(), Organization::Serial, mis);
        let h = run::run(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            mis,
        );
        // Allow one line of slack per buffer for misalignment spill.
        let slack = p.buffers.len() as u64 * 256;
        assert!(
            h.total_footprint <= d.total_footprint + slack,
            "{}: {} vs {}",
            p.name,
            h.total_footprint,
            d.total_footprint
        );
    }
}

/// Optimized organizations run every benchmark to completion and never
/// lose work: component busy times are organization-invariant within
/// tolerance (the same instructions execute, modulo cache effects).
#[test]
fn organizations_preserve_work() {
    for name in ["rodinia/backprop", "parboil/stencil", "rodinia/hotspot"] {
        let w = registry::find(name).expect("exists");
        let p = w.pipeline(Scale::TEST).expect("builds");
        let mis = w.meta.misalignment_sensitive;

        let serial = run::run(&p, &SystemConfig::discrete(), Organization::Serial, mis);
        let streamed = run::run(
            &p,
            &SystemConfig::discrete(),
            Organization::AsyncStreams { streams: 4 },
            mis,
        );
        let ratio = streamed.busy.gpu.as_secs_f64() / serial.busy.gpu.as_secs_f64();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{name}: GPU work changed too much under streams: {ratio}"
        );
        assert_eq!(serial.platform, Platform::DiscreteGpu);

        let h_serial = run::run(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            mis,
        );
        let chunked = run::run(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::ChunkedParallel { chunks: 4 },
            mis,
        );
        let ratio = chunked.busy.gpu.as_secs_f64() / h_serial.busy.gpu.as_secs_f64();
        assert!(
            (0.5..=2.5).contains(&ratio),
            "{name}: GPU work changed too much under chunking: {ratio}"
        );
    }
}

/// Full determinism across repeated runs, including the parallel
/// characterization driver.
#[test]
fn repeated_runs_are_bit_identical() {
    let w = registry::find("pannotia/mis").unwrap();
    let p = w.pipeline(Scale::TEST).unwrap();
    let a = run::run(
        &p,
        &SystemConfig::heterogeneous(),
        Organization::Serial,
        false,
    );
    let b = run::run(
        &p,
        &SystemConfig::heterogeneous(),
        Organization::Serial,
        false,
    );
    assert_eq!(a.roi, b.roi);
    assert_eq!(a.accesses, b.accesses);
    assert_eq!(a.offchip_fetches, b.offchip_fetches);
    assert_eq!(a.offchip_writebacks, b.offchip_writebacks);
    assert_eq!(a.classes, b.classes);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_footprint, b.total_footprint);
}

/// Larger inputs take longer and move more data — basic scaling sanity
/// across the whole stack.
#[test]
fn run_time_scales_with_input() {
    let w = registry::find("parboil/sgemm").unwrap();
    let small = w.pipeline(Scale::TEST).unwrap();
    let large = w.pipeline(Scale::new(0.5)).unwrap();
    let rs = run::run(
        &small,
        &SystemConfig::discrete(),
        Organization::Serial,
        false,
    );
    let rl = run::run(
        &large,
        &SystemConfig::discrete(),
        Organization::Serial,
        false,
    );
    assert!(rl.roi > rs.roi);
    assert!(rl.offchip_bytes > rs.offchip_bytes);
}
