//! The paper's qualitative results ("shapes"), asserted as integration
//! tests at a reduced-but-nontrivial scale. These are the claims
//! EXPERIMENTS.md records quantitatively at full scale.

use heteropipe::classify::AccessClass;
use heteropipe::experiments::{characterize_filtered, fig3, fig456, fig9, geomean, validate};
use heteropipe_workloads::{Scale, Suite};

const SCALE: Scale = Scale::PAPER; // shapes hold at full scale; runs in ~tens of seconds

/// §II / Fig. 3: the kmeans staircase — each optimization step helps, over
/// half the baseline run time is recovered, GPU utilization climbs steeply.
#[test]
fn fig3_kmeans_staircase() {
    let rows = fig3::compute(SCALE);
    assert!(
        rows[0].portions.0 > 0.5,
        "baseline copy share {}",
        rows[0].portions.0
    );
    for w in rows.windows(2) {
        assert!(
            w[1].rel_runtime <= w[0].rel_runtime * 1.10,
            "step {} -> {} regressed: {} vs {}",
            w[0].label,
            w[1].label,
            w[1].rel_runtime,
            w[0].rel_runtime
        );
    }
    let last = rows.last().unwrap();
    assert!(
        last.rel_runtime < 0.5,
        "recovered only to {}",
        last.rel_runtime
    );
    assert!(last.gpu_util > rows[0].gpu_util + 0.3);
}

/// §IV: removing copies helps modestly in aggregate (paper: ~7% geomean),
/// not dramatically — most busy time is compute, and page faults claw some
/// gains back.
#[test]
fn fig6_copy_removal_is_modest_in_aggregate() {
    let pairs = characterize_filtered(SCALE, |m| m.suite == Suite::Rodinia);
    let rows = fig456::fig6(&pairs);
    let gm = fig456::fig6_geomean(&rows);
    assert!(
        gm > 0.4 && gm < 1.0,
        "geomean limited/copy must be an improvement but not a blowout: {gm}"
    );
}

/// §IV-B: total CPU+GPU access counts stay similar after copy removal —
/// the caches don't magically get better from eliding copies.
#[test]
fn fig5_core_accesses_stable_without_copies() {
    let pairs = characterize_filtered(SCALE, |m| {
        m.suite == Suite::Parboil && !m.misalignment_sensitive
    });
    for p in &pairs {
        let copy_cores: u64 = p.copy.accesses[1] + p.copy.accesses[2];
        let lim_cores: u64 = p.limited.accesses[1] + p.limited.accesses[2];
        let ratio = lim_cores as f64 / copy_cores.max(1) as f64;
        assert!(
            (0.7..=1.4).contains(&ratio),
            "{}: core accesses changed {ratio}",
            p.meta.full_name()
        );
    }
}

/// §IV-A: copy benchmarks mirror most data — the copy engine touches the
/// majority of the footprint; limited-copy footprints shrink substantially.
#[test]
fn fig4_copy_engine_touches_most_data() {
    let pairs = characterize_filtered(SCALE, |m| ["kmeans", "hotspot", "cfd"].contains(&m.name));
    for p in &pairs {
        let touched = p
            .copy
            .footprint
            .iter()
            .filter(|(s, _)| s.contains(heteropipe_mem::access::Component::Copy))
            .map(|(_, b)| b)
            .sum::<u64>() as f64;
        let share = touched / p.copy.total_footprint as f64;
        assert!(
            share > 0.5,
            "{}: copy-touched share {share}",
            p.meta.full_name()
        );
        assert!(
            (p.limited.total_footprint as f64) < 0.8 * p.copy.total_footprint as f64,
            "{}: limited footprint didn't shrink",
            p.meta.full_name()
        );
    }
}

/// §V-C / Fig. 9: graph suites are dominated by same-stage cache
/// contention; dense pipelines show inter-stage producer-consumer spills.
#[test]
fn fig9_contention_dominates_graph_suites() {
    let pairs = characterize_filtered(SCALE, |m| {
        m.full_name() == "pannotia/pr"
            || m.full_name() == "lonestar/sssp"
            || m.full_name() == "rodinia/kmeans"
    });
    let rows = fig9::fig9(&pairs);
    for r in &rows {
        if r.name.contains("pannotia") || r.name.contains("lonestar") {
            assert!(
                r.copy_contention_share() > 0.35,
                "{}: contention {}",
                r.name,
                r.copy_contention_share()
            );
        }
        if r.name.contains("kmeans") {
            let wr = r.copy.fractions[AccessClass::WrSpill.index()];
            assert!(wr > 0.005, "kmeans W-R spills missing: {wr}");
        }
    }
}

/// §IV-C: page-fault-heavy benchmarks slow down on the heterogeneous
/// processor (the paper's srad shows a 7x GPU slowdown; we assert a
/// material one).
#[test]
fn srad_pays_for_page_faults() {
    let pairs = characterize_filtered(SCALE, |m| m.name == "srad");
    let p = &pairs[0];
    assert!(p.limited.faults > 1_000, "faults: {}", p.limited.faults);
    // Without faults, srad would gain plenty from copy removal; with them,
    // the gain is eaten (or reversed).
    assert!(
        p.limited.roi.as_secs_f64() > 0.5 * p.copy.roi.as_secs_f64(),
        "srad should not gain much: {} vs {}",
        p.limited.roi,
        p.copy.roi
    );
}

/// §V-A: the component-overlap estimate tracks actually-transformed runs.
#[test]
fn overlap_model_validates() {
    let rows = validate::validate_overlap(SCALE);
    let worst = rows.iter().map(|r| r.relative_error).fold(0.0f64, f64::max);
    assert!(worst < 0.35, "worst overlap-model error {worst}");
    // And on at least half the configurations it is tight (<10%).
    let tight = rows.iter().filter(|r| r.relative_error < 0.10).count();
    assert!(tight * 2 >= rows.len(), "only {tight}/{} tight", rows.len());
}

/// §V-B: migrating CPU work to the GPU yields multi-x gains for the
/// CPU-bottlenecked benchmarks.
#[test]
fn migrate_model_validates() {
    let rows = validate::validate_migrate(SCALE);
    for r in &rows {
        assert!(r.speedup > 2.0, "{}: {}x", r.name, r.speedup);
    }
}

/// Misalignment (`*` benchmarks of Fig. 5) inflates limited-copy GPU
/// accesses relative to an aligned allocator, and only for flagged
/// benchmarks.
#[test]
fn misalignment_only_affects_flagged_benchmarks() {
    let pairs = characterize_filtered(Scale::TEST, |m| {
        m.name == "hotspot" || m.name == "cfd" // flagged vs unflagged
    });
    for p in &pairs {
        let gpu = heteropipe_mem::access::Component::Gpu.index();
        let ratio = p.limited.accesses[gpu] as f64 / p.copy.accesses[gpu].max(1) as f64;
        if p.meta.misalignment_sensitive {
            assert!(ratio > 1.0, "{}: {ratio}", p.meta.full_name());
        } else {
            assert!(
                (0.85..=1.15).contains(&ratio),
                "{}: {ratio}",
                p.meta.full_name()
            );
        }
    }
}

/// The aggregate §IV-C claim: about half of all off-chip accesses in
/// limited-copy runs are cache contention.
#[test]
fn half_of_accesses_are_contention() {
    let pairs = characterize_filtered(SCALE, |m| {
        m.suite == Suite::Pannotia || m.suite == Suite::Lonestar
    });
    let rows = fig9::fig9(&pairs);
    let shares = fig9::mean_shares(&rows, true);
    let contention =
        shares[AccessClass::RrContention.index()] + shares[AccessClass::WrContention.index()];
    assert!(
        contention > 0.3,
        "mean contention share across graph suites: {contention}"
    );
    let _ = geomean([1.0].into_iter());
}
