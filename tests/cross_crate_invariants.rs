//! Property-based cross-crate invariants: the lowering, the runner, and the
//! classifiers agree for arbitrary synthetic pipelines.

use heteropipe::{lower, run, Organization, SystemConfig};
use heteropipe_sim::Ps;
use heteropipe_workloads::{Pattern, Pipeline, PipelineBuilder};

/// Builds a small random-but-valid pipeline from a compact genome.
fn synth_pipeline(genome: &[u8]) -> Pipeline {
    let mut b = PipelineBuilder::new("synth/prop");
    let n_buffers = 2 + (genome.first().copied().unwrap_or(0) % 3) as usize;
    let buffers: Vec<_> = (0..n_buffers)
        .map(|i| {
            let size = 64 * 1024 * (1 + (genome.get(i + 1).copied().unwrap_or(1) % 8) as u64);
            b.host(&format!("buf{i}"), size)
        })
        .collect();
    for &buf in &buffers {
        b.h2d(buf);
    }
    let stages = 1 + (genome.get(9).copied().unwrap_or(0) % 4) as usize;
    for s in 0..stages {
        let g = genome.get(10 + s).copied().unwrap_or(0);
        let src = buffers[g as usize % buffers.len()];
        let dst = buffers[(g as usize + 1) % buffers.len()];
        let pattern = match g % 4 {
            0 => Pattern::Stream { passes: 1 },
            1 => Pattern::Strided {
                stride: 1 + (g as u32 % 7),
            },
            2 => Pattern::Gather {
                count: 2_000,
                region: 1.0,
            },
            _ => Pattern::SparseSweep { fraction: 0.4 },
        };
        if g % 3 == 0 {
            b.cpu(&format!("c{s}"), 4_096, 8.0, 2.0)
                .reads(src, pattern)
                .writes(dst, Pattern::Stream { passes: 1 });
        } else {
            b.gpu(&format!("g{s}"), 16_384, 12.0, 6.0)
                .reads(src, pattern)
                .writes(dst, Pattern::Stream { passes: 1 });
        }
    }
    b.d2h(buffers[0]);
    b.build()
}

/// Any synthetic pipeline lowers to an acyclic graph on both platforms
/// under every organization, and all tasks execute.
#[test]
fn lowering_always_yields_a_dag() {
    heteropipe_sim::check::cases(24, 0xDA6, |g| {
        let genome = g.bytes(16);
        let p = synth_pipeline(&genome);
        let configs = [
            (SystemConfig::discrete(), Organization::Serial),
            (
                SystemConfig::discrete(),
                Organization::AsyncStreams { streams: 3 },
            ),
            (SystemConfig::heterogeneous(), Organization::Serial),
            (
                SystemConfig::heterogeneous(),
                Organization::ChunkedParallel { chunks: 3 },
            ),
        ];
        for (cfg, org) in configs {
            let graph = lower(&p, &cfg, org, false);
            for t in &graph.tasks {
                for d in &t.deps {
                    assert!(d.0 < t.id.0, "forward dep in {org}");
                }
            }
            assert!(!graph.tasks.is_empty());
        }
    });
}

/// Running any synthetic pipeline terminates with conserved accounting:
/// classifier total equals off-chip traffic, footprint partition sums,
/// ROI covers the busiest component.
#[test]
fn runner_conserves_accounting() {
    heteropipe_sim::check::cases(24, 0xACC7, |g| {
        let genome = g.bytes(16);
        let p = synth_pipeline(&genome);
        for cfg in [SystemConfig::discrete(), SystemConfig::heterogeneous()] {
            let r = run::run(&p, &cfg, Organization::Serial, false);
            assert!(r.roi > Ps::ZERO);
            assert_eq!(r.classes.total(), r.offchip_fetches + r.offchip_writebacks);
            let fp: u64 = r.footprint.iter().map(|(_, b)| b).sum();
            assert_eq!(fp, r.total_footprint);
            assert!(r.busy.cpu <= r.roi + Ps::from_nanos(1));
            assert!(r.busy.gpu <= r.roi + Ps::from_nanos(1));
            assert!(r.busy.copy <= r.roi + Ps::from_nanos(1));
        }
    });
}

/// Organizations move *time*, not semantics: chunking may change
/// off-chip traffic through the caches (a chunk that newly fits in
/// cache can eliminate nearly all capacity misses; chunked gathers can
/// also thrash), but the traffic always stays within the plausible
/// cache-reshaping envelope and never vanishes entirely (compulsory
/// traffic survives).
#[test]
fn organizations_move_time_not_data() {
    heteropipe_sim::check::cases(24, 0x0265, |g| {
        let genome = g.bytes(16);
        let p = synth_pipeline(&genome);
        let cfg = SystemConfig::heterogeneous();
        let serial = run::run(&p, &cfg, Organization::Serial, false);
        let chunked = run::run(&p, &cfg, Organization::ChunkedParallel { chunks: 4 }, false);
        assert!(chunked.offchip_bytes > 0, "compulsory traffic must survive");
        let ratio = chunked.offchip_bytes as f64 / serial.offchip_bytes.max(1) as f64;
        assert!(
            (0.02..=8.0).contains(&ratio),
            "off-chip bytes ratio {ratio}"
        );
    });
}

/// Deterministic smoke: the synthetic generator itself is deterministic and
/// produces valid pipelines for a fixed genome.
#[test]
fn synth_pipeline_is_valid_and_deterministic() {
    let a = synth_pipeline(&[7; 16]);
    let b = synth_pipeline(&[7; 16]);
    assert_eq!(a, b);
    assert_eq!(a.validate(), Ok(()));
}
