//! # heteropipe-serve
//!
//! Simulation-as-a-service: a dependency-free HTTP/1.1 server that fronts
//! the `heteropipe-engine` executor, turning the experiment pipeline into
//! a long-lived service whose content-addressed cache warms across
//! requests and clients.
//!
//! The workspace has no external dependencies, so everything here is
//! hand-rolled on `std`:
//!
//! * [`http`] — request parsing (Content-Length and chunked bodies),
//!   response writing (Content-Length, chunked, or incrementally streamed
//!   via [`http::BodyStream`]), keep-alive;
//! * [`json`] — a total JSON codec whose serialization is deterministic
//!   (insertion-ordered objects, exact integers), so cached runs answer
//!   byte-identically;
//! * [`server`] — a bounded worker pool behind an accept queue with
//!   connection limits (503 + `Retry-After` backpressure), per-request
//!   timeouts, graceful drain on shutdown, and deterministic fault seams
//!   on the accept/read/write paths;
//! * [`breaker`] — a circuit breaker that sheds doomed requests while the
//!   backend is unhealthy (observability routes stay exempt);
//! * [`error`] — the one JSON error envelope every non-2xx response
//!   carries (`{"error":{"code","message"},"request_id"}`);
//! * [`api`] — the routes (full reference in `docs/api.md`): `/healthz`
//!   (plus `/healthz/live` and `/healthz/ready`), `/metrics`,
//!   `/v1/benchmarks`, `POST /v1/runs`, `GET /v1/runs/{key}`,
//!   `GET /v1/runs/{key}/trace`, `POST /v1/sweeps` (batched execution
//!   streamed as NDJSON), `/v1/experiments/{fig3..fig9,table1,table2}`,
//!   and the deprecated `/v1/run` aliases;
//! * [`client`] — a small keep-alive client for tests, CI smoke checks,
//!   load generation, and coordinator→worker calls, with envelope and
//!   NDJSON parsing plus a per-host connection pool ([`ClientPool`]);
//! * [`shutdown`] — SIGINT/SIGTERM notification without `libc`.
//!
//! ```no_run
//! use std::sync::Arc;
//! use heteropipe_engine::Engine;
//! use heteropipe_serve::{api, server::ServerConfig};
//!
//! let engine = Arc::new(Engine::new());
//! let handle = api::serve(ServerConfig::default(), engine).unwrap();
//! println!("listening on http://{}", handle.addr());
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod breaker;
pub mod client;
pub mod error;
pub mod http;
pub mod jobs;
pub mod json;
pub mod server;
pub mod shutdown;
pub mod tenant;

pub use api::{serve, serve_durable, Api};
pub use breaker::{Admission, BreakerConfig, CircuitBreaker};
pub use client::{ApiError, Client, ClientPool, ClientResponse, PooledClient};
pub use error::envelope;
pub use json::Json;
pub use server::{Handler, Server, ServerConfig, ServerHandle, ServerStats};
pub use tenant::TenantGate;
