//! Async job tracking: the in-process registry behind `?async=1`.
//!
//! An asynchronous sweep or workflow is accepted with `202 Accepted`,
//! journaled (see `heteropipe_engine::journal`), and driven to
//! completion by a background thread. This module holds the shared
//! bookkeeping both front doors (serve's `Api` and the cluster
//! `Coordinator`) use to answer status polls:
//!
//! * [`AsyncJobs`] — the key→job registry;
//! * [`AsyncJob`] — one job's live state machine
//!   (`pending → running → done | failed`) and progress counters;
//! * the journal *intent* codecs ([`sweep_intent`] / [`workflow_intent`]
//!   / [`parse_intent`]) — the canonical self-describing job list
//!   written ahead of execution, from which a restarted process can
//!   resume the job with no other context.
//!
//! The registry reflects this process's lifetime; the journal on disk is
//! the durable record. A key present in the journal but absent here is a
//! job from a previous process that has not (yet) been resumed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Job states, in lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Journaled but not yet executing (e.g. awaiting resume).
    Pending,
    /// A driver thread is executing it right now.
    Running,
    /// Every record is journaled and the segment is sealed.
    Done,
    /// The driver gave up (journal unusable or the job unrunnable).
    Failed,
}

impl JobState {
    /// The wire spelling used in status bodies.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    fn from_u8(v: u8) -> JobState {
        match v {
            0 => JobState::Pending,
            1 => JobState::Running,
            2 => JobState::Done,
            _ => JobState::Failed,
        }
    }
}

/// One asynchronous job's live state and progress counters.
#[derive(Debug)]
pub struct AsyncJob {
    /// `"sweep"` or `"workflow"`.
    pub kind: &'static str,
    /// Total records expected (sweep entries, or workflow stages + the
    /// trailing result record).
    pub total: u64,
    state: AtomicU8,
    records_done: AtomicU64,
    records_failed: AtomicU64,
    error: Mutex<Option<String>>,
}

impl AsyncJob {
    fn new(kind: &'static str, total: u64, state: JobState, done: u64) -> AsyncJob {
        AsyncJob {
            kind,
            total,
            state: AtomicU8::new(state as u8),
            records_done: AtomicU64::new(done),
            records_failed: AtomicU64::new(0),
            error: Mutex::new(None),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        JobState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Moves the job to `state` (drivers only move forward).
    pub fn set_state(&self, state: JobState) {
        self.state.store(state as u8, Ordering::Release);
    }

    /// Marks the job failed with a reason for the status body.
    pub fn fail(&self, why: impl Into<String>) {
        *self.error.lock().unwrap() = Some(why.into());
        self.set_state(JobState::Failed);
    }

    /// Records one journaled record; `errored` marks per-entry failures
    /// (the record exists, its payload carries an error object).
    pub fn record_done(&self, errored: bool) {
        self.records_done.fetch_add(1, Ordering::Relaxed);
        if errored {
            self.records_failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records journaled so far.
    pub fn done(&self) -> u64 {
        self.records_done.load(Ordering::Relaxed)
    }

    /// Records journaled with a per-entry error payload.
    pub fn failed(&self) -> u64 {
        self.records_failed.load(Ordering::Relaxed)
    }

    /// The failure reason, when [`AsyncJob::state`] is
    /// [`JobState::Failed`].
    pub fn error(&self) -> Option<String> {
        self.error.lock().unwrap().clone()
    }
}

/// The key→job registry one server process maintains.
#[derive(Debug, Default)]
pub struct AsyncJobs {
    jobs: Mutex<HashMap<String, Arc<AsyncJob>>>,
}

impl AsyncJobs {
    /// An empty registry.
    pub fn new() -> AsyncJobs {
        AsyncJobs::default()
    }

    /// Registers (or returns the existing entry for) `key`. A completed
    /// or in-flight job is reused — resubmitting the same async job is
    /// idempotent; only a failed entry is replaced with a fresh one. The
    /// bool is `true` when the caller owns a brand-new entry and must
    /// drive it.
    pub fn register(
        &self,
        key: &str,
        kind: &'static str,
        total: u64,
        state: JobState,
        done: u64,
    ) -> (Arc<AsyncJob>, bool) {
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(existing) = jobs.get(key) {
            if existing.state() != JobState::Failed {
                return (Arc::clone(existing), false);
            }
        }
        let job = Arc::new(AsyncJob::new(kind, total, state, done));
        jobs.insert(key.to_string(), Arc::clone(&job));
        (job, true)
    }

    /// The registered job for `key`, if this process knows it.
    pub fn get(&self, key: &str) -> Option<Arc<AsyncJob>> {
        self.jobs.lock().unwrap().get(key).cloned()
    }

    /// Number of registered jobs (all states).
    pub fn len(&self) -> usize {
        self.jobs.lock().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.lock().unwrap().is_empty()
    }
}

/// The status body `GET /v1/sweeps/{key}` (and the workflow equivalent)
/// answers while a job is pending/running — and after, as the `state`
/// wrapper around completion.
pub fn status_json(key: &str, job: &AsyncJob) -> Json {
    let mut fields = vec![
        ("key".to_string(), Json::str(key)),
        ("kind".to_string(), Json::str(job.kind)),
        ("state".to_string(), Json::str(job.state().label())),
        ("jobs_total".to_string(), Json::U64(job.total)),
        ("records_done".to_string(), Json::U64(job.done())),
        ("records_failed".to_string(), Json::U64(job.failed())),
    ];
    if job.kind == "sweep" {
        fields.push((
            "records_url".to_string(),
            Json::str(format!("/v1/sweeps/{key}/records")),
        ));
    }
    if let Some(e) = job.error() {
        fields.push((
            "error".to_string(),
            Json::Obj(vec![("message".into(), Json::str(e))]),
        ));
    }
    Json::Obj(fields)
}

/// The `202 Accepted` body for a freshly submitted (or resubmitted)
/// async job.
pub fn accepted_json(key: &str, kind: &str, status_url: &str, total: u64) -> Json {
    let mut fields = vec![
        ("key".to_string(), Json::str(key)),
        ("kind".to_string(), Json::str(kind)),
        ("state".to_string(), Json::str("running")),
        ("jobs_total".to_string(), Json::U64(total)),
        ("status_url".to_string(), Json::str(status_url)),
    ];
    if kind == "sweep" {
        fields.push((
            "records_url".to_string(),
            Json::str(format!("/v1/sweeps/{key}/records")),
        ));
    }
    Json::Obj(fields)
}

/// Canonical journal intent for an async sweep: the fully expanded
/// per-job entry list (generator forms are expanded before journaling,
/// so resume is independent of how the sweep was phrased).
pub fn sweep_intent(entries: &[Json]) -> String {
    Json::Obj(vec![
        ("kind".to_string(), Json::str("sweep")),
        ("jobs".to_string(), Json::Arr(entries.to_vec())),
    ])
    .dump()
}

/// Canonical journal intent for an async workflow: the submitted body,
/// verbatim (a built-in name or an inline stage graph).
pub fn workflow_intent(body: &Json) -> String {
    Json::Obj(vec![
        ("kind".to_string(), Json::str("workflow")),
        ("body".to_string(), body.clone()),
    ])
    .dump()
}

/// Decodes a journaled intent back into its kind and payload: the
/// entries array for `"sweep"`, the submitted body for `"workflow"`.
pub fn parse_intent(intent: &str) -> Option<(String, Json)> {
    let v = Json::parse(intent)?;
    let kind = v.get("kind")?.as_str()?.to_string();
    let payload = match kind.as_str() {
        "sweep" => v.get("jobs")?.clone(),
        "workflow" => v.get("body")?.clone(),
        _ => return None,
    };
    Some((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_idempotent_until_failure() {
        let jobs = AsyncJobs::new();
        assert!(jobs.is_empty());
        let (a, fresh) = jobs.register("k1", "sweep", 4, JobState::Running, 0);
        assert!(fresh);
        let (b, fresh) = jobs.register("k1", "sweep", 4, JobState::Running, 0);
        assert!(!fresh, "in-flight job reused");
        assert!(Arc::ptr_eq(&a, &b));

        a.record_done(false);
        a.record_done(true);
        assert_eq!((a.done(), a.failed()), (2, 1));
        a.fail("journal unusable");
        assert_eq!(a.state(), JobState::Failed);
        let (c, fresh) = jobs.register("k1", "sweep", 4, JobState::Running, 0);
        assert!(fresh, "failed job is replaced");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(jobs.len(), 1);
        assert!(jobs.get("k2").is_none());
    }

    #[test]
    fn status_json_carries_state_and_progress() {
        let job = AsyncJob::new("sweep", 8, JobState::Running, 3);
        let s = status_json("abc", &job);
        assert_eq!(s.get("state").and_then(Json::as_str), Some("running"));
        assert_eq!(s.get("records_done").and_then(Json::as_u64), Some(3));
        assert_eq!(
            s.get("records_url").and_then(Json::as_str),
            Some("/v1/sweeps/abc/records")
        );
        job.fail("boom");
        let s = status_json("abc", &job);
        assert_eq!(s.get("state").and_then(Json::as_str), Some("failed"));
        assert!(s.get("error").is_some());
    }

    #[test]
    fn intents_round_trip() {
        let entries = vec![Json::Obj(vec![(
            "benchmark".into(),
            Json::str("rodinia/kmeans"),
        )])];
        let (kind, payload) = parse_intent(&sweep_intent(&entries)).unwrap();
        assert_eq!(kind, "sweep");
        assert_eq!(payload.as_array().unwrap().len(), 1);

        let body = Json::Obj(vec![("workflow".into(), Json::str("fig5"))]);
        let (kind, payload) = parse_intent(&workflow_intent(&body)).unwrap();
        assert_eq!(kind, "workflow");
        assert_eq!(payload.get("workflow").and_then(Json::as_str), Some("fig5"));

        assert!(parse_intent("not json").is_none());
        assert!(parse_intent("{\"kind\":\"other\"}").is_none());
    }
}
