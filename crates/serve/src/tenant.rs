//! Per-tenant admission control: `X-Api-Key`-keyed token buckets.
//!
//! Configuration comes from the `HETEROPIPE_TENANTS` environment
//! variable, a `;`-separated list of `key=rate:burst` clauses:
//!
//! ```text
//! HETEROPIPE_TENANTS="alice=50:100;bob=5:10;*=2:4"
//! ```
//!
//! gives the tenant presenting `X-Api-Key: alice` a bucket refilling at
//! 50 requests/second with a burst capacity of 100, and so on. The
//! optional `*` clause is the wildcard bucket shared by every request
//! that presents an *unknown* key. As with the fault plan, parsing is
//! strict — a typo'd clause fails loudly at startup rather than silently
//! admitting everyone.
//!
//! Enforcement semantics (shared by serve and the cluster coordinator):
//!
//! * no `HETEROPIPE_TENANTS` ⇒ the gate is disabled, everything admits;
//! * a request without `X-Api-Key` admits uncounted (operator traffic:
//!   health probes, metric scrapes, and the CLI tools);
//! * a known key draws one token from its tenant's bucket; an unknown
//!   key draws from the wildcard bucket when one is configured and
//!   admits uncounted otherwise;
//! * an empty bucket answers `429` under the standard error envelope
//!   with `Retry-After` set to the seconds until one token refills.
//!
//! Per-tenant admitted/throttled counts surface as
//! `heteropipe_tenant_requests_total{tenant}` /
//! `heteropipe_tenant_throttled_total{tenant}` in both `/metrics`
//! formats. Label cardinality is bounded by the config: unknown keys
//! are aggregated under the `*` tenant, never echoed as labels.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable naming the tenant plan.
pub const ENV_VAR: &str = "HETEROPIPE_TENANTS";

/// The wildcard tenant name: the shared bucket for unknown api keys.
pub const WILDCARD: &str = "*";

/// The admission decision for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admit {
    /// Admitted. `tenant` is the bucket charged (`None` when the gate is
    /// disabled, the request carried no key, or the key is unknown and
    /// no wildcard bucket exists).
    Granted {
        /// Name of the bucket charged, if any.
        tenant: Option<String>,
    },
    /// Throttled: the tenant's bucket is empty.
    Throttled {
        /// Name of the bucket that refused the request.
        tenant: String,
        /// Seconds until one token refills (always ≥ 1; goes into the
        /// `Retry-After` header and the envelope's `retry_after_s`).
        retry_after_s: u64,
    },
}

/// One tenant's admitted/throttled totals, for the metrics exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantCount {
    /// Tenant name (the api key, or `*` for the wildcard bucket).
    pub tenant: String,
    /// Requests that drew a token successfully.
    pub requests: u64,
    /// Requests refused with 429.
    pub throttled: u64,
}

/// A token bucket: `tokens` refills at `rate` per second up to `burst`.
#[derive(Debug)]
struct Bucket {
    name: String,
    rate: f64,
    burst: f64,
    state: Mutex<BucketState>,
    requests: AtomicU64,
    throttled: AtomicU64,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last: Instant,
}

impl Bucket {
    fn admit(&self) -> Admit {
        let mut state = self.state.lock().unwrap();
        let now = Instant::now();
        let dt = now.duration_since(state.last).as_secs_f64();
        state.tokens = (state.tokens + dt * self.rate).min(self.burst);
        state.last = now;
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            self.requests.fetch_add(1, Ordering::Relaxed);
            Admit::Granted {
                tenant: Some(self.name.clone()),
            }
        } else {
            self.throttled.fetch_add(1, Ordering::Relaxed);
            Admit::Throttled {
                tenant: self.name.clone(),
                retry_after_s: ((1.0 - state.tokens) / self.rate).ceil().max(1.0) as u64,
            }
        }
    }
}

/// The admission gate: one token bucket per configured tenant. Cheap to
/// consult when disabled (one branch); shared behind an `Arc` by the
/// server's worker threads.
#[derive(Debug, Default)]
pub struct TenantGate {
    buckets: Vec<Bucket>,
}

impl TenantGate {
    /// A gate that admits everything (no tenants configured).
    pub fn disabled() -> TenantGate {
        TenantGate::default()
    }

    /// Builds the gate from [`ENV_VAR`]; unset or empty means disabled.
    /// A malformed plan is an error — admission config must never fail
    /// open silently.
    pub fn from_env() -> Result<TenantGate, String> {
        match std::env::var(ENV_VAR) {
            Ok(s) => TenantGate::parse(&s),
            Err(_) => Ok(TenantGate::disabled()),
        }
    }

    /// Parses a `key=rate:burst;...` plan (see the module docs).
    pub fn parse(s: &str) -> Result<TenantGate, String> {
        let mut gate = TenantGate::default();
        for clause in s.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let err = |reason: &str| format!("bad tenant clause {clause:?}: {reason}");
            let (name, spec) = clause
                .split_once('=')
                .ok_or_else(|| err("expected key=rate:burst"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(err("tenant key must be non-empty"));
            }
            if gate.buckets.iter().any(|b| b.name == name) {
                return Err(err("duplicate tenant key"));
            }
            let (rate, burst) = spec
                .split_once(':')
                .ok_or_else(|| err("expected rate:burst after '='"))?;
            let rate: f64 = rate
                .trim()
                .parse()
                .map_err(|_| err("rate must be a number"))?;
            let burst: f64 = burst
                .trim()
                .parse()
                .map_err(|_| err("burst must be a number"))?;
            if !(rate > 0.0 && rate.is_finite()) {
                return Err(err("rate must be > 0"));
            }
            if !(burst >= 1.0 && burst.is_finite()) {
                return Err(err("burst must be >= 1"));
            }
            gate.buckets.push(Bucket {
                name: name.to_string(),
                rate,
                burst,
                state: Mutex::new(BucketState {
                    tokens: burst,
                    last: Instant::now(),
                }),
                requests: AtomicU64::new(0),
                throttled: AtomicU64::new(0),
            });
        }
        Ok(gate)
    }

    /// Whether any tenant is configured.
    pub fn is_enabled(&self) -> bool {
        !self.buckets.is_empty()
    }

    /// Admission decision for a request presenting `api_key` (the
    /// `X-Api-Key` header value, if any). See the module docs for the
    /// exact semantics.
    pub fn admit(&self, api_key: Option<&str>) -> Admit {
        let granted = Admit::Granted { tenant: None };
        if self.buckets.is_empty() {
            return granted;
        }
        let Some(key) = api_key else {
            return granted;
        };
        if let Some(bucket) = self.buckets.iter().find(|b| b.name == key) {
            return bucket.admit();
        }
        match self.buckets.iter().find(|b| b.name == WILDCARD) {
            Some(wildcard) => wildcard.admit(),
            None => granted,
        }
    }

    /// Per-tenant totals in configuration order (every configured tenant
    /// appears, so metric series exist from the first scrape).
    pub fn counts(&self) -> Vec<TenantCount> {
        self.buckets
            .iter()
            .map(|b| TenantCount {
                tenant: b.name.clone(),
                requests: b.requests.load(Ordering::Relaxed),
                throttled: b.throttled.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Total throttled requests across all tenants.
    pub fn total_throttled(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.throttled.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_gate_admits_everyone() {
        let gate = TenantGate::disabled();
        assert!(!gate.is_enabled());
        assert_eq!(gate.admit(Some("any")), Admit::Granted { tenant: None });
        assert_eq!(gate.admit(None), Admit::Granted { tenant: None });
        assert!(gate.counts().is_empty());
    }

    #[test]
    fn burst_drains_then_throttles_with_retry_after() {
        let gate = TenantGate::parse("alice=1:2").unwrap();
        assert!(gate.is_enabled());
        for _ in 0..2 {
            assert_eq!(
                gate.admit(Some("alice")),
                Admit::Granted {
                    tenant: Some("alice".into())
                }
            );
        }
        match gate.admit(Some("alice")) {
            Admit::Throttled {
                tenant,
                retry_after_s,
            } => {
                assert_eq!(tenant, "alice");
                assert!(retry_after_s >= 1);
            }
            other => panic!("expected throttle, got {other:?}"),
        }
        let counts = gate.counts();
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[0].requests, 2);
        assert_eq!(counts[0].throttled, 1);
        assert_eq!(gate.total_throttled(), 1);
    }

    #[test]
    fn bucket_refills_over_time() {
        let gate = TenantGate::parse("fast=1000:1").unwrap();
        assert!(matches!(gate.admit(Some("fast")), Admit::Granted { .. }));
        assert!(matches!(gate.admit(Some("fast")), Admit::Throttled { .. }));
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(matches!(gate.admit(Some("fast")), Admit::Granted { .. }));
    }

    #[test]
    fn unknown_keys_use_the_wildcard_when_present() {
        let gate = TenantGate::parse("alice=10:10;*=1:1").unwrap();
        assert_eq!(
            gate.admit(Some("mallory")),
            Admit::Granted {
                tenant: Some("*".into())
            }
        );
        assert!(matches!(
            gate.admit(Some("intruder")),
            Admit::Throttled { tenant, .. } if tenant == "*"
        ));
        // Without a wildcard, unknown keys admit uncounted.
        let open = TenantGate::parse("alice=10:10").unwrap();
        assert_eq!(open.admit(Some("mallory")), Admit::Granted { tenant: None });
        // Keyless requests always admit uncounted.
        assert_eq!(gate.admit(None), Admit::Granted { tenant: None });
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "alice",        // no '='
            "alice=10",     // no burst
            "=10:10",       // empty key
            "alice=0:10",   // zero rate
            "alice=10:0",   // zero burst
            "alice=x:10",   // NaN rate
            "alice=10:y",   // NaN burst
            "a=1:1;a=2:2",  // duplicate
            "alice=inf:10", // non-finite
        ] {
            let e = TenantGate::parse(bad).unwrap_err();
            assert!(e.contains("bad tenant clause"), "{bad} -> {e}");
        }
        assert!(TenantGate::parse("").unwrap().counts().is_empty());
        assert!(TenantGate::parse(" ; ").unwrap().counts().is_empty());
    }
}
