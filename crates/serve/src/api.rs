//! The HTTP API over the engine: health, metrics (JSON and Prometheus
//! text format), the benchmark catalog, resource-oriented runs with
//! retrievable per-run traces, batched sweeps streamed as NDJSON, and
//! whole-experiment renders. The full route reference, error envelope
//! schema, and deprecation policy live in `docs/api.md`.
//!
//! Responses are built from [`crate::json::Json`] values whose object keys
//! are emitted in insertion order, and [`heteropipe::RunReport`] is
//! float-free, so a `POST /v1/runs` answered from the cache is
//! byte-identical to the cold response that populated it. Every run
//! response carries the run's content address in `X-Run-Key`; feeding it
//! back to `GET /v1/runs/{key}` returns the cached report and
//! `GET /v1/runs/{key}/trace` the job's Chrome-trace timeline, stamped
//! with the originating request's correlation id. `POST /v1/sweeps`
//! executes a whole batch through the engine's dedup + single-flight
//! pipeline, streaming one NDJSON record per entry in completion order.
//! `POST /v1/workflows` runs a whole task graph — a built-in figure
//! graph by name or an inline sweep-stage list — through the
//! `heteropipe-flow` DAG runner, streaming one NDJSON stage-completion
//! event per stage; `GET /v1/workflows/{key}` returns the journaled
//! result (see docs/workflows.md).
//! The pre-redesign routes `POST /v1/run` and `GET /v1/run/{key}/trace`
//! remain as deprecated aliases answering identically to their canonical
//! forms, plus a `Deprecation` header.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use heteropipe::experiments::{characterize_all_with, fig3, fig456, fig78, fig9, tables};
use heteropipe::{AccessClass, Executor, JobSpec, Organization, Platform, RunReport, SystemConfig};
use heteropipe_engine::{run_key, sweep_key, Engine, EngineError, Journal, RunKey, SweepRecord};
use heteropipe_faults::Injector;
use heteropipe_flow::{
    figures, FlowRunner, Stage, StageEvent, StageKind, StageValue, TaskGraph, WorkflowResult,
};
use heteropipe_obs::log as obs_log;
use heteropipe_obs::MetricRegistry;
use heteropipe_workloads::{registry, Pipeline, Scale, Workload};

use crate::breaker::CircuitBreaker;
use crate::error::envelope;
use crate::http::{BodyStream, Request, Response};
use crate::jobs::{self, AsyncJob, AsyncJobs, JobState};
use crate::json::Json;
use crate::server::{Handler, ServerConfig, ServerStats};
use crate::server::{Server, ServerHandle};
use crate::tenant::{Admit, TenantGate};

/// Most entries accepted in one `POST /v1/sweeps` batch; larger sweeps
/// are rejected with `413 payload_too_large` so a single request cannot
/// monopolize the worker pool indefinitely.
pub const MAX_SWEEP_JOBS: usize = 512;

/// Most stages accepted in one inline `POST /v1/workflows` graph; the
/// built-in named graphs are exempt (the largest, `repro_all`, defines
/// the practical ceiling). Total sweep jobs across every inline stage
/// share the [`MAX_SWEEP_JOBS`] cap.
pub const MAX_WORKFLOW_STAGES: usize = 32;

/// The handler implementing the heteropipe-serve routes. Share it via
/// `Arc`; every worker thread dispatches through the same instance and the
/// same underlying [`Engine`].
pub struct Api {
    engine: Arc<Engine>,
    flow: Arc<FlowRunner>,
    stats: OnceLock<Arc<ServerStats>>,
    breaker: OnceLock<Arc<CircuitBreaker>>,
    server_faults: OnceLock<Arc<Injector>>,
    journal: OnceLock<Arc<Journal>>,
    async_jobs: AsyncJobs,
    tenants: OnceLock<Arc<TenantGate>>,
    deadline_exceeded: AtomicU64,
    /// Rendered report-JSON bodies keyed by run key. The key is a content
    /// address and `report_json` is deterministic, so a memoized body is
    /// immutable; warm `GET /v1/runs/{key}` serves it without touching
    /// the record codec at all (see [`Api::run_report`]).
    report_bodies: Mutex<HashMap<u128, Arc<Vec<u8>>>>,
}

/// Most rendered report bodies [`Api::run_report`] memoizes before the
/// map is cleared wholesale (reports are a few KiB each, so this bounds
/// the memo near 100 MiB worst case).
const MAX_MEMOIZED_BODIES: usize = 8192;

impl Api {
    /// An API over `engine`.
    pub fn new(engine: Arc<Engine>) -> Arc<Api> {
        let flow = Arc::new(FlowRunner::new(Arc::clone(&engine)));
        Arc::new(Api {
            engine,
            flow,
            stats: OnceLock::new(),
            breaker: OnceLock::new(),
            server_faults: OnceLock::new(),
            journal: OnceLock::new(),
            async_jobs: AsyncJobs::new(),
            tenants: OnceLock::new(),
            deadline_exceeded: AtomicU64::new(0),
            report_bodies: Mutex::new(HashMap::new()),
        })
    }

    /// The engine this API executes against.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The workflow runner behind `POST /v1/workflows`.
    pub fn flow(&self) -> &Arc<FlowRunner> {
        &self.flow
    }

    /// Wires in the server's own counters so `/metrics` can report them.
    /// Called by [`serve`]; later calls are ignored.
    pub fn attach_stats(&self, stats: Arc<ServerStats>) {
        let _ = self.stats.set(stats);
    }

    /// Wires in the server's circuit breaker so `/healthz/ready` and
    /// `/metrics` can report it. Called by [`serve`]; later calls ignored.
    pub fn attach_breaker(&self, breaker: Arc<CircuitBreaker>) {
        let _ = self.breaker.set(breaker);
    }

    /// Wires in the server's fault injector so `/metrics` can export its
    /// fired-fault tallies. Called by [`serve`]; later calls ignored.
    pub fn attach_faults(&self, faults: Arc<Injector>) {
        let _ = self.server_faults.set(faults);
    }

    /// Wires in the write-ahead journal enabling `?async=1` submission
    /// and crash-resume. Called by [`serve_durable`]; later calls ignored.
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        let _ = self.journal.set(journal);
    }

    /// Wires in the per-tenant admission gate. [`serve`] builds it from
    /// `HETEROPIPE_TENANTS`; tests attach a hand-parsed gate directly.
    /// Later calls ignored.
    pub fn attach_tenants(&self, tenants: Arc<TenantGate>) {
        let _ = self.tenants.set(tenants);
    }

    /// The write-ahead journal, when one is attached.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.get()
    }
}

/// Binds and starts a server running [`Api`] over `engine`. The tenant
/// admission gate is read from `HETEROPIPE_TENANTS`; a malformed plan
/// fails startup rather than admitting everyone silently.
pub fn serve(cfg: ServerConfig, engine: Arc<Engine>) -> std::io::Result<ServerHandle> {
    serve_inner(cfg, engine, None)
}

/// Like [`serve`], but with a write-ahead journal: `?async=1` submission
/// is enabled, and any sweep or workflow the journal shows as interrupted
/// (intent logged, segment unsealed) is resumed on background threads
/// before the listener accepts traffic. Thanks to the result cache,
/// resume re-executes only the jobs whose records never made it to the
/// journal.
pub fn serve_durable(
    cfg: ServerConfig,
    engine: Arc<Engine>,
    journal: Arc<Journal>,
) -> std::io::Result<ServerHandle> {
    serve_inner(cfg, engine, Some(journal))
}

fn serve_inner(
    cfg: ServerConfig,
    engine: Arc<Engine>,
    journal: Option<Arc<Journal>>,
) -> std::io::Result<ServerHandle> {
    let api = Api::new(engine);
    api.attach_faults(Arc::clone(&cfg.faults));
    let tenants = TenantGate::from_env()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    api.attach_tenants(Arc::new(tenants));
    if let Some(journal) = journal {
        api.attach_journal(journal);
    }
    let server = Server::bind(cfg, api.clone())?;
    api.attach_stats(server.stats());
    api.attach_breaker(server.breaker());
    let handle = server.start();
    api.resume_incomplete();
    Ok(handle)
}

impl Handler for Api {
    fn handle(&self, req: &Request) -> Response {
        if let Some(refused) = self.admission(req) {
            return refused;
        }
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz" | "/healthz/live") => health(),
            ("GET", "/healthz/ready") => self.ready(req),
            ("GET", "/metrics") => self.metrics(req),
            ("GET", "/v1/benchmarks") => benchmarks(),
            ("GET", "/v1/debug/profile") => profile_snapshot(),
            ("POST", "/v1/runs") => self.run(req),
            // Deprecated alias for `POST /v1/runs` (see docs/api.md).
            ("POST", "/v1/run") => deprecated(self.run(req), "/v1/runs"),
            ("POST", "/v1/sweeps") => self.sweeps(req),
            ("POST", "/v1/workflows") => self.workflows(req),
            (_, path) if path.starts_with("/v1/workflows/") => {
                let key = &path["/v1/workflows/".len()..];
                if req.method == "GET" {
                    self.workflow_lookup(req, key)
                } else {
                    method_not_allowed(req, "GET")
                }
            }
            (_, path) if path.starts_with("/v1/runs/") => {
                self.run_resource(req, &path["/v1/runs/".len()..], false)
            }
            // A sweep's retained trace lives under the sweep key the
            // `X-Sweep-Key` response header reported; workers and the
            // cluster coordinator expose the same shape.
            (_, path) if path.starts_with("/v1/sweeps/") => {
                self.sweep_resource(req, &path["/v1/sweeps/".len()..])
            }
            // Deprecated alias prefix for `/v1/runs/{key}/trace`.
            (_, path) if path.starts_with("/v1/run/") => {
                self.run_resource(req, &path["/v1/run/".len()..], true)
            }
            ("GET", "/v1/experiments") => experiments(),
            ("GET", path) if path.starts_with("/v1/experiments/") => {
                experiment_lookup(req, &path["/v1/experiments/".len()..])
            }
            ("POST", path) if path.starts_with("/v1/experiments/") => {
                self.experiment(req, &path["/v1/experiments/".len()..])
            }
            (
                _,
                "/healthz" | "/healthz/live" | "/healthz/ready" | "/metrics" | "/v1/benchmarks",
            ) => method_not_allowed(req, "GET"),
            (_, "/v1/runs" | "/v1/run" | "/v1/sweeps" | "/v1/workflows") => {
                method_not_allowed(req, "POST")
            }
            (_, "/v1/experiments") => method_not_allowed(req, "GET"),
            (_, path) if path.starts_with("/v1/experiments/") => {
                method_not_allowed(req, "GET, POST")
            }
            _ => fail(req, 404, "not_found", "no such route"),
        }
    }
}

impl Api {
    /// The front-door admission check every route but the operator
    /// surfaces (health probes, metric scrapes) passes through: the
    /// per-tenant token bucket first, then the `X-Deadline-Ms` budget.
    /// `None` means admitted.
    fn admission(&self, req: &Request) -> Option<Response> {
        if matches!(
            req.path.as_str(),
            "/healthz" | "/healthz/live" | "/healthz/ready" | "/metrics"
        ) {
            return None;
        }
        if let Some(gate) = self.tenants.get() {
            if let Admit::Throttled {
                tenant,
                retry_after_s,
            } = gate.admit(req.header("x-api-key"))
            {
                return Some(envelope(
                    429,
                    "tenant_throttled",
                    &format!("tenant {tenant:?} is over its request budget"),
                    Some(retry_after_s),
                    &req.request_id,
                ));
            }
        }
        match deadline_ms(req) {
            Err(why) => Some(fail(req, 400, "bad_request", &why)),
            Ok(Some(0)) => Some(self.deadline_refusal(req)),
            Ok(_) => None,
        }
    }

    /// The 504 envelope for a request whose deadline budget is already
    /// spent, counted for `/metrics`.
    fn deadline_refusal(&self, req: &Request) -> Response {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        envelope(
            504,
            "deadline_exceeded",
            "deadline budget exhausted before execution",
            Some(1),
            &req.request_id,
        )
    }
}

/// Parses the `X-Deadline-Ms` header: the caller's remaining time budget
/// in milliseconds, decremented hop by hop across the cluster. Absent
/// means no deadline; a non-integer value is a 400-shaped error.
pub fn deadline_ms(req: &Request) -> Result<Option<u64>, String> {
    match req.header("x-deadline-ms") {
        None => Ok(None),
        Some(v) => v.trim().parse::<u64>().map(Some).map_err(|_| {
            format!("X-Deadline-Ms must be a non-negative integer of milliseconds, got {v:?}")
        }),
    }
}

/// Whether the request asked for asynchronous (journaled) execution:
/// `?async=1` or `?async=true`.
pub fn wants_async(req: &Request) -> bool {
    req.query
        .split('&')
        .any(|kv| kv == "async=1" || kv == "async=true")
}

/// Parses the `?from_index=N` resume cursor of a `/records` fetch.
pub fn from_index(req: &Request) -> Result<u64, String> {
    match req
        .query
        .split('&')
        .find_map(|kv| kv.strip_prefix("from_index="))
    {
        None => Ok(0),
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("from_index must be a non-negative integer, got {v:?}")),
    }
}

/// The error envelope with the request's correlation id (see
/// [`crate::error::envelope`]).
fn fail(req: &Request, status: u16, code: &str, message: &str) -> Response {
    envelope(status, code, message, None, &req.request_id)
}

/// A 405 envelope carrying the route's `Allow` header.
fn method_not_allowed(req: &Request, allow: &str) -> Response {
    fail(req, 405, "method_not_allowed", "method not allowed").with_header("Allow", allow)
}

/// Marks a response as served by a deprecated route alias: RFC 9745's
/// `Deprecation` header plus a `Link` to the canonical successor. The
/// payload is untouched, so aliases answer byte-identically to their
/// canonical routes.
fn deprecated(resp: Response, successor: &str) -> Response {
    resp.with_header("Deprecation", "true")
        .with_header("Link", &format!("<{successor}>; rel=\"successor-version\""))
}

/// Liveness: the process is up and serving — always 200. `/healthz` keeps
/// answering this for compatibility; `/healthz/live` is the explicit form.
fn health() -> Response {
    Response::json(200, &Json::Obj(vec![("status".into(), Json::str("ok"))]))
}

impl Api {
    /// Readiness: whether this instance should receive traffic. Unready
    /// (503 + `Retry-After`) while the circuit breaker is open or graceful
    /// shutdown has begun; liveness stays green either way, so an
    /// orchestrator drains traffic instead of killing the process. The
    /// unready body is the standard error envelope extended with the
    /// probe fields (`status`, `breaker`, `shutting_down`).
    fn ready(&self, req: &Request) -> Response {
        let breaker_open = self.breaker.get().is_some_and(|b| b.currently_open());
        let shutting_down = self
            .stats
            .get()
            .is_some_and(|s| s.shutting_down.load(Ordering::SeqCst));
        let state = self.breaker.get().map_or("unknown", |b| b.state_name());
        let probe = vec![
            (
                "status".to_string(),
                Json::str(if breaker_open || shutting_down {
                    "unready"
                } else {
                    "ready"
                }),
            ),
            ("breaker".to_string(), Json::str(state)),
            ("shutting_down".to_string(), Json::Bool(shutting_down)),
        ];
        if breaker_open || shutting_down {
            let retry = self.breaker.get().map_or(1, |b| b.retry_after_secs());
            let mut fields = vec![
                (
                    "error".to_string(),
                    Json::Obj(vec![
                        ("code".into(), Json::str("unready")),
                        (
                            "message".into(),
                            Json::str(if shutting_down {
                                "shutting down"
                            } else {
                                "circuit breaker open"
                            }),
                        ),
                        ("retry_after_s".into(), Json::U64(retry)),
                    ]),
                ),
                ("request_id".to_string(), Json::str(&req.request_id)),
            ];
            fields.extend(probe);
            Response::json(503, &Json::Obj(fields)).with_header("Retry-After", &retry.to_string())
        } else {
            Response::json(200, &Json::Obj(probe))
        }
    }
}

/// Splits the remainder of a `/v1/runs/{key}[/sub]` path into the key
/// segment and the optional sub-resource after it.
fn split_resource(rest: &str) -> (&str, Option<&str>) {
    match rest.split_once('/') {
        Some((key, sub)) => (key, Some(sub)),
        None => (rest, None),
    }
}

/// Whether a path segment is a well-formed run key: exactly 32 hex
/// digits. Anything else — wrong length, non-hex characters, embedded
/// slashes (already split off by [`split_resource`]) — is rejected up
/// front with a 400 envelope instead of falling through to a generic 404.
fn valid_run_key(key: &str) -> bool {
    key.len() == 32 && key.bytes().all(|b| b.is_ascii_hexdigit())
}

impl Api {
    /// Dispatches `/v1/runs/{key}` and its sub-resources (`/trace`), plus
    /// the deprecated `/v1/run/{key}/trace` alias when `alias` is set.
    fn run_resource(&self, req: &Request, rest: &str, alias: bool) -> Response {
        let (key, sub) = split_resource(rest);
        if !valid_run_key(key) {
            return fail(
                req,
                400,
                "bad_request",
                &format!("run key must be 32 hex characters, got {key:?}"),
            );
        }
        match (sub, alias) {
            (Some("trace"), _) => {
                if req.method != "GET" {
                    return method_not_allowed(req, "GET");
                }
                let resp = self.run_trace(req, key);
                if alias {
                    deprecated(resp, &format!("/v1/runs/{key}/trace"))
                } else {
                    resp
                }
            }
            // The cached-report lookup is new with the redesign; it never
            // existed under `/v1/run/{key}`, so the alias stays a 404 with
            // a pointer at the canonical route.
            (None, true) => fail(
                req,
                404,
                "not_found",
                &format!("no such route (the cached report lives at /v1/runs/{key})"),
            ),
            (None, false) => {
                if req.method != "GET" {
                    return method_not_allowed(req, "GET");
                }
                self.run_report(req, key)
            }
            (Some(other), _) => fail(
                req,
                404,
                "not_found",
                &format!("no such run sub-resource: {other:?} (try /trace)"),
            ),
        }
    }

    /// `GET /v1/runs/{key}`: the cached report for a previously executed
    /// run, straight from the engine's result cache — no execution, no
    /// cache-metric side effects.
    ///
    /// The hot path is zero-decode: existence is proven by the engine's
    /// validated-bytes tier (magic + version + checksum, no field parse),
    /// the run key doubles as a strong `ETag` (it is a content address
    /// and [`report_json`] is deterministic), and a warm repeat serves
    /// the memoized rendered body — or, with a matching `If-None-Match`,
    /// an empty `304 Not Modified`. Only the first `GET` after a cold
    /// start pays the record decode.
    fn run_report(&self, req: &Request, key: &str) -> Response {
        let parsed = RunKey::from_hex(key).expect("validated by run_resource");
        let hex = parsed.hex();
        if self.engine.cached_bytes(parsed).is_none() {
            return fail(req, 404, "not_found", "no cached report for that run key");
        }
        let etag = format!("\"{hex}\"");
        if if_none_match(req, &etag) {
            return Response {
                status: 304,
                headers: Vec::new(),
                body: Vec::new(),
                chunked: false,
                stream: None,
            }
            .with_header("X-Run-Key", &hex)
            .with_header("ETag", &etag);
        }
        let memoized = self.report_bodies.lock().unwrap().get(&parsed.0).cloned();
        let body = match memoized {
            Some(body) => body,
            None => {
                let Some(report) = self.engine.cached(parsed) else {
                    return fail(req, 404, "not_found", "no cached report for that run key");
                };
                let body = Arc::new(report_json(&report).dump().into_bytes());
                let mut memo = self.report_bodies.lock().unwrap();
                if memo.len() >= MAX_MEMOIZED_BODIES {
                    memo.clear();
                }
                memo.insert(parsed.0, Arc::clone(&body));
                body
            }
        };
        Response {
            status: 200,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.as_ref().clone(),
            chunked: false,
            stream: None,
        }
        .with_header("X-Run-Key", &hex)
        .with_header("ETag", &etag)
    }

    /// Dispatches `/v1/sweeps/{key}` and its sub-resources: the bare key
    /// answers an async job's status, `/records` streams its journaled
    /// NDJSON records, and `/trace` the engine's retained Chrome trace
    /// (under the sweep key the `X-Sweep-Key` response header reported).
    fn sweep_resource(&self, req: &Request, rest: &str) -> Response {
        let (key, sub) = split_resource(rest);
        if !valid_run_key(key) {
            return fail(
                req,
                400,
                "bad_request",
                &format!("sweep key must be 32 hex characters, got {key:?}"),
            );
        }
        match sub {
            Some("trace") => {
                if req.method != "GET" {
                    return method_not_allowed(req, "GET");
                }
                self.run_trace(req, key)
            }
            Some("records") => {
                if req.method != "GET" {
                    return method_not_allowed(req, "GET");
                }
                self.sweep_records(req, key)
            }
            None => {
                if req.method != "GET" {
                    return method_not_allowed(req, "GET");
                }
                self.sweep_status(req, key)
            }
            _ => fail(
                req,
                404,
                "not_found",
                "no such sweep sub-resource (try /trace or /records)",
            ),
        }
    }

    /// `GET /v1/sweeps/{key}`: the status of an async sweep — from this
    /// process's registry when it is (or was) driving the job, otherwise
    /// reconstructed from the on-disk journal so a restarted process
    /// still answers for jobs it has not resumed.
    fn sweep_status(&self, req: &Request, key: &str) -> Response {
        let key = key.to_ascii_lowercase();
        if let Some(job) = self.async_jobs.get(&key) {
            return Response::json(200, &jobs::status_json(&key, &job))
                .with_header("X-Sweep-Key", &key);
        }
        if let Some(journal) = self.journal.get() {
            if let Ok(Some(replay)) = journal.replay(&key) {
                if let Some(body) = journal_status_json(&key, "sweep", &replay) {
                    return Response::json(200, &body).with_header("X-Sweep-Key", &key);
                }
            }
        }
        fail(
            req,
            404,
            "not_found",
            "no such async sweep (submit one with POST /v1/sweeps?async=1)",
        )
    }

    /// `GET /v1/sweeps/{key}/records?from_index=N`: the journaled NDJSON
    /// records of an async sweep, in index order (ascending), starting at
    /// `from_index` so a poller can resume a partial read. A snapshot of
    /// what is journaled right now — poll the status route for `done`
    /// before treating the stream as complete. No trailing summary line:
    /// records are timing-free and byte-stable; the summary is not.
    fn sweep_records(&self, req: &Request, key: &str) -> Response {
        let key = key.to_ascii_lowercase();
        let from = match from_index(req) {
            Ok(from) => from,
            Err(why) => return fail(req, 400, "bad_request", &why),
        };
        let Some(journal) = self.journal.get() else {
            return fail(
                req,
                404,
                "not_found",
                "this server has no journal (async records live on durable servers)",
            );
        };
        match journal.replay(&key) {
            Ok(Some(replay)) => {
                let mut records = replay.records;
                records.sort_by_key(|&(i, _)| i);
                let mut body = String::new();
                for (index, line) in &records {
                    if *index >= from {
                        body.push_str(line);
                        body.push('\n');
                    }
                }
                Response {
                    status: 200,
                    headers: vec![("Content-Type".into(), "application/x-ndjson".into())],
                    body: body.into_bytes(),
                    chunked: false,
                    stream: None,
                }
                .with_header("X-Sweep-Key", &key)
                .with_header("X-Job-State", if replay.done { "done" } else { "pending" })
            }
            Ok(None) => fail(req, 404, "not_found", "no journaled records for that key"),
            Err(e) => envelope(
                503,
                "journal_unavailable",
                &format!("journal replay failed: {e}"),
                Some(1),
                &req.request_id,
            ),
        }
    }
}

/// A status body reconstructed from a journal segment alone, for keys no
/// live registry entry covers (a previous process journaled them). `None`
/// when the segment's intent is unreadable or of a different kind.
pub fn journal_status_json(
    key: &str,
    kind: &str,
    replay: &heteropipe_engine::Replay,
) -> Option<Json> {
    let (ikind, payload) = jobs::parse_intent(&replay.intent)?;
    if ikind != kind {
        return None;
    }
    let total = match kind {
        "sweep" => payload.as_array()?.len() as u64,
        // Workflow totals are stage events + the trailing result record;
        // without running the graph we only know what is journaled.
        _ => replay.records.len() as u64,
    };
    let state = if replay.done { "done" } else { "pending" };
    let failed = replay
        .records
        .iter()
        .filter(|(_, line)| {
            Json::parse(line)
                .and_then(|v| v.get("status").and_then(Json::as_str).map(|s| s == "error"))
                .unwrap_or(false)
        })
        .count() as u64;
    let mut fields = vec![
        ("key".to_string(), Json::str(key)),
        ("kind".to_string(), Json::str(kind)),
        ("state".to_string(), Json::str(state)),
        ("jobs_total".to_string(), Json::U64(total)),
        (
            "records_done".to_string(),
            Json::U64(replay.records.len() as u64),
        ),
        ("records_failed".to_string(), Json::U64(failed)),
    ];
    if kind == "sweep" {
        fields.push((
            "records_url".to_string(),
            Json::str(format!("/v1/sweeps/{key}/records")),
        ));
    }
    Some(Json::Obj(fields))
}

/// `GET /v1/debug/profile`: a JSON snapshot of the always-on phase
/// profiler, heaviest phase first (see docs/observability.md). The
/// cluster coordinator serves the same route from its own process.
pub fn profile_snapshot() -> Response {
    Response {
        status: 200,
        headers: vec![("Content-Type".into(), "application/json".into())],
        body: heteropipe_obs::profile::render_debug_json().into_bytes(),
        chunked: false,
        stream: None,
    }
}

/// Whether a `/metrics` request asked for Prometheus text format instead
/// of the JSON default: `?format=prometheus` wins, `?format=json` forces
/// JSON, otherwise an `Accept` header preferring `text/plain` (or an
/// OpenMetrics type) selects Prometheus.
pub fn wants_prometheus(req: &Request) -> bool {
    for kv in req.query.split('&') {
        match kv {
            "format=prometheus" => return true,
            "format=json" => return false,
            _ => {}
        }
    }
    req.header("accept").is_some_and(|a| {
        let a = a.to_ascii_lowercase();
        a.contains("text/plain") || a.contains("openmetrics")
    })
}

impl Api {
    fn metrics(&self, req: &Request) -> Response {
        if wants_prometheus(req) {
            return self.metrics_prometheus();
        }
        self.metrics_json()
    }

    /// Prometheus text exposition of the same counters `/metrics` reports
    /// as JSON, built fresh per scrape from the engine and server state.
    fn metrics_prometheus(&self) -> Response {
        let r = MetricRegistry::new();
        let e = self.engine.metrics();
        let set = |name: &str, help: &str, v: u64| r.counter(name, help).set(v);
        set(
            "heteropipe_engine_jobs_executed_total",
            "Jobs actually simulated (cache misses and uncached runs).",
            e.jobs_executed,
        );
        for (tier, v) in [("memory", e.memory_hits), ("disk", e.disk_hits)] {
            r.counter_with(
                "heteropipe_engine_cache_hits_total",
                "Cache hits by tier.",
                &[("tier", tier)],
            )
            .set(v);
        }
        set(
            "heteropipe_engine_cache_misses_total",
            "Cache lookups that found nothing.",
            e.misses,
        );
        set(
            "heteropipe_engine_job_failures_total",
            "Jobs that panicked inside a batch.",
            e.failures,
        );
        set(
            "heteropipe_engine_simulated_picoseconds_total",
            "Total simulated time across executed jobs.",
            e.simulated_ps,
        );
        set(
            "heteropipe_engine_wall_nanoseconds_total",
            "Total wall-clock time spent simulating.",
            e.wall_ns,
        );
        set(
            "heteropipe_engine_sweeps_total",
            "Sweeps executed through the batch pipeline.",
            e.sweeps,
        );
        set(
            "heteropipe_engine_sweep_jobs_total",
            "Entries submitted across all sweeps.",
            e.sweep_jobs,
        );
        set(
            "heteropipe_engine_sweep_deduped_total",
            "Sweep entries deduplicated onto an in-batch leader.",
            e.sweep_deduped,
        );
        set(
            "heteropipe_engine_flights_coalesced_total",
            "Jobs coalesced onto a concurrent identical execution.",
            e.flights_coalesced,
        );
        r.gauge(
            "heteropipe_engine_traces_retained",
            "Job traces currently held by the trace store.",
        )
        .set(self.engine.traces().len() as f64);

        // Workflow counters (docs/workflows.md): graphs executed through
        // the DAG runner and their per-stage memoization activity.
        let f = self.flow.metrics();
        set(
            "heteropipe_workflows_total",
            "Workflows executed through the DAG runner.",
            f.workflows,
        );
        set(
            "heteropipe_workflow_stages_total",
            "Stage slots processed across all workflows.",
            f.stages,
        );
        set(
            "heteropipe_workflow_stage_cache_hits_total",
            "Workflow stages served from the stage memo without executing.",
            f.stage_cache_hits,
        );
        set(
            "heteropipe_workflow_stage_failures_total",
            "Workflow stages whose body failed.",
            f.stage_failures,
        );

        // Resilience counters (docs/robustness.md): retries, quarantines,
        // watchdog overruns, and cache self-healing activity.
        set(
            "heteropipe_engine_exec_retries_total",
            "Execution attempts retried after a panic.",
            e.exec_retries,
        );
        set(
            "heteropipe_engine_jobs_quarantined_total",
            "Jobs quarantined after exhausting their retry budget.",
            e.jobs_quarantined,
        );
        set(
            "heteropipe_engine_watchdog_fired_total",
            "Jobs whose execution overran the watchdog deadline.",
            e.watchdog_fired,
        );
        set(
            "heteropipe_cache_tmp_swept_total",
            "Stale cache temp files swept at open.",
            e.cache.tmp_swept,
        );
        set(
            "heteropipe_cache_records_quarantined_total",
            "Corrupt cache records moved to quarantine.",
            e.cache.records_quarantined,
        );
        set(
            "heteropipe_cache_read_errors_total",
            "Cache disk reads failed with an I/O error (served as misses).",
            e.cache.read_errors,
        );
        set(
            "heteropipe_cache_persist_retries_total",
            "Cache persist attempts retried after a transient failure.",
            e.cache.persist_retries,
        );
        set(
            "heteropipe_cache_persist_failures_total",
            "Cache persists abandoned after the retry budget.",
            e.cache.persist_failures,
        );

        // Durability counters (docs/robustness.md): write-ahead journal
        // activity plus the admission layer's refusals.
        if let Some(j) = self.journal.get() {
            let js = j.stats();
            set(
                "heteropipe_journal_appended_total",
                "Lines appended to the write-ahead journal (intent, record, and seal lines).",
                js.appended,
            );
            set(
                "heteropipe_journal_replayed_total",
                "Record lines read back by journal replay.",
                js.replayed,
            );
            set(
                "heteropipe_journal_recovered_total",
                "Interrupted async jobs resumed to completion after a restart.",
                js.recovered,
            );
            set(
                "heteropipe_journal_segments_quarantined_total",
                "Corrupt journal segments moved to quarantine.",
                js.segments_quarantined,
            );
            set(
                "heteropipe_journal_gc_total",
                "Expired sealed journal segments deleted by startup GC.",
                js.gc_swept,
            );
        }
        set(
            "heteropipe_deadline_exceeded_total",
            "Requests refused because their X-Deadline-Ms budget was exhausted.",
            self.deadline_exceeded.load(Ordering::Relaxed),
        );
        if let Some(gate) = self.tenants.get() {
            for t in gate.counts() {
                r.counter_with(
                    "heteropipe_tenant_requests_total",
                    "Requests admitted per tenant bucket.",
                    &[("tenant", &t.tenant)],
                )
                .set(t.requests);
                r.counter_with(
                    "heteropipe_tenant_throttled_total",
                    "Requests refused with a 429 per tenant bucket.",
                    &[("tenant", &t.tenant)],
                )
                .set(t.throttled);
            }
        }

        // Injected-fault tallies per (site, kind), from the engine's
        // injector plus the server's (skipped when they are one shared
        // injector, as a chaos run configures).
        let mut fault_counts = self.engine.faults().counts();
        if let Some(sf) = self.server_faults.get() {
            if !std::ptr::eq(self.engine.faults(), Arc::as_ptr(sf)) {
                fault_counts.extend(sf.counts());
            }
        }
        for c in fault_counts {
            r.counter_with(
                "heteropipe_faults_injected_total",
                "Faults fired by the deterministic injector.",
                &[("site", c.site), ("kind", c.kind)],
            )
            .set(c.fired);
        }

        if let Some(b) = self.breaker.get() {
            r.gauge(
                "heteropipe_server_breaker_open",
                "Whether the circuit breaker is open right now (1 = open).",
            )
            .set(f64::from(u8::from(b.currently_open())));
            set(
                "heteropipe_server_breaker_opened_total",
                "Times the circuit breaker tripped open.",
                b.opened_total(),
            );
            set(
                "heteropipe_server_breaker_shed_total",
                "Requests shed with a 503 while the breaker was open.",
                b.shed_total(),
            );
        }

        if let Some(s) = self.stats.get() {
            use std::sync::atomic::Ordering::Relaxed;
            set(
                "heteropipe_server_requests_total",
                "Requests fully parsed and dispatched to the handler.",
                s.requests.load(Relaxed),
            );
            set(
                "heteropipe_server_rejected_total",
                "Connections refused with a 503 by the admission check.",
                s.rejected.load(Relaxed),
            );
            set(
                "heteropipe_server_shed_total",
                "Requests shed with a 503 by the circuit breaker.",
                s.shed.load(Relaxed),
            );
            r.gauge(
                "heteropipe_server_in_flight",
                "Requests currently inside the handler.",
            )
            .set(s.in_flight.load(Relaxed) as f64);
            for (class, v) in [
                ("2xx", s.status_2xx.load(Relaxed)),
                ("4xx", s.status_4xx.load(Relaxed)),
                ("5xx", s.status_5xx.load(Relaxed)),
            ] {
                r.counter_with(
                    "heteropipe_server_responses_total",
                    "Responses sent, by status class.",
                    &[("class", class)],
                )
                .set(v);
            }
            r.histogram(
                "heteropipe_server_request_latency_microseconds",
                "Handler latency distribution.",
            )
            .merge(&s.latency_us.lock().unwrap());
        }

        // Always-on phase profiler (docs/observability.md): wall time
        // attributed to named hot-path phases in the sim event loop, the
        // engine execute path, and the workflow runner.
        for p in heteropipe_obs::profile::snapshot() {
            r.counter_with(
                "heteropipe_profile_phase_total_nanoseconds",
                "Wall nanoseconds attributed to a profiled phase.",
                &[("phase", p.name)],
            )
            .set(p.total_ns);
            r.histogram_with(
                "heteropipe_profile_phase_duration_nanoseconds",
                "Per-call wall-time distribution of a profiled phase.",
                &[("phase", p.name)],
            )
            .merge(&p.histogram);
        }

        Response {
            status: 200,
            headers: vec![(
                "Content-Type".into(),
                "text/plain; version=0.0.4; charset=utf-8".into(),
            )],
            body: r.render_prometheus().into_bytes(),
            chunked: false,
            stream: None,
        }
    }

    /// `GET /v1/runs/{key}/trace`: the Chrome-trace timeline retained for
    /// a run (or sweep) key. The key is validated by [`Api::run_resource`]
    /// before this is reached.
    fn run_trace(&self, req: &Request, key: &str) -> Response {
        match self.engine.traces().render(&key.to_ascii_lowercase()) {
            Some(json) => Response {
                status: 200,
                headers: vec![("Content-Type".into(), "application/json".into())],
                body: json.into_bytes(),
                chunked: false,
                stream: None,
            },
            None => fail(req, 404, "not_found", "no trace retained for that run key"),
        }
    }

    fn metrics_json(&self) -> Response {
        let e = self.engine.metrics();
        let engine = Json::Obj(vec![
            ("jobs_total".into(), Json::U64(e.jobs_total())),
            ("jobs_executed".into(), Json::U64(e.jobs_executed)),
            ("memory_hits".into(), Json::U64(e.memory_hits)),
            ("disk_hits".into(), Json::U64(e.disk_hits)),
            ("misses".into(), Json::U64(e.misses)),
            ("failures".into(), Json::U64(e.failures)),
            ("hit_rate".into(), Json::F64(e.hit_rate())),
            ("simulated_ps".into(), Json::U64(e.simulated_ps)),
            ("wall_ns".into(), Json::U64(e.wall_ns)),
            (
                "sweeps".into(),
                Json::Obj(vec![
                    ("count".into(), Json::U64(e.sweeps)),
                    ("jobs".into(), Json::U64(e.sweep_jobs)),
                    ("deduped".into(), Json::U64(e.sweep_deduped)),
                    ("flights_coalesced".into(), Json::U64(e.flights_coalesced)),
                ]),
            ),
            (
                "resilience".into(),
                Json::Obj(vec![
                    ("exec_retries".into(), Json::U64(e.exec_retries)),
                    ("jobs_quarantined".into(), Json::U64(e.jobs_quarantined)),
                    ("watchdog_fired".into(), Json::U64(e.watchdog_fired)),
                    ("cache_tmp_swept".into(), Json::U64(e.cache.tmp_swept)),
                    (
                        "cache_records_quarantined".into(),
                        Json::U64(e.cache.records_quarantined),
                    ),
                    ("cache_read_errors".into(), Json::U64(e.cache.read_errors)),
                    (
                        "cache_persist_retries".into(),
                        Json::U64(e.cache.persist_retries),
                    ),
                    (
                        "cache_persist_failures".into(),
                        Json::U64(e.cache.persist_failures),
                    ),
                ]),
            ),
        ]);

        let server = match self.stats.get() {
            Some(s) => {
                use std::sync::atomic::Ordering::Relaxed;
                let lat = s.latency_us.lock().unwrap();
                let breaker = match self.breaker.get() {
                    Some(b) => Json::Obj(vec![
                        ("state".into(), Json::str(b.state_name())),
                        ("opened".into(), Json::U64(b.opened_total())),
                        ("shed".into(), Json::U64(b.shed_total())),
                    ]),
                    None => Json::Null,
                };
                Json::Obj(vec![
                    ("requests".into(), Json::U64(s.requests.load(Relaxed))),
                    ("in_flight".into(), Json::U64(s.in_flight.load(Relaxed))),
                    ("rejected_503".into(), Json::U64(s.rejected.load(Relaxed))),
                    ("shed_503".into(), Json::U64(s.shed.load(Relaxed))),
                    ("breaker".into(), breaker),
                    (
                        "responses".into(),
                        Json::Obj(vec![
                            ("2xx".into(), Json::U64(s.status_2xx.load(Relaxed))),
                            ("4xx".into(), Json::U64(s.status_4xx.load(Relaxed))),
                            ("5xx".into(), Json::U64(s.status_5xx.load(Relaxed))),
                        ]),
                    ),
                    (
                        "latency_us".into(),
                        Json::Obj(vec![
                            ("count".into(), Json::U64(lat.count())),
                            ("mean".into(), Json::F64(lat.mean())),
                            ("p50".into(), Json::U64(lat.percentile(0.50))),
                            ("p99".into(), Json::U64(lat.percentile(0.99))),
                            ("max".into(), Json::U64(lat.max())),
                        ]),
                    ),
                ])
            }
            None => Json::Null,
        };

        let f = self.flow.metrics();
        let workflows = Json::Obj(vec![
            ("count".into(), Json::U64(f.workflows)),
            ("stages".into(), Json::U64(f.stages)),
            ("stage_cache_hits".into(), Json::U64(f.stage_cache_hits)),
            ("stage_failures".into(), Json::U64(f.stage_failures)),
        ]);

        let profile = Json::Arr(
            heteropipe_obs::profile::snapshot()
                .into_iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("phase".into(), Json::str(p.name)),
                        ("count".into(), Json::U64(p.count)),
                        ("total_ns".into(), Json::U64(p.total_ns)),
                        ("p99_ns".into(), Json::U64(p.histogram.percentile(0.99))),
                        ("max_ns".into(), Json::U64(p.max_ns)),
                    ])
                })
                .collect(),
        );

        let journal = match self.journal.get() {
            Some(j) => {
                let js = j.stats();
                Json::Obj(vec![
                    ("appended".into(), Json::U64(js.appended)),
                    ("replayed".into(), Json::U64(js.replayed)),
                    ("recovered".into(), Json::U64(js.recovered)),
                    ("tmp_swept".into(), Json::U64(js.tmp_swept)),
                    (
                        "segments_quarantined".into(),
                        Json::U64(js.segments_quarantined),
                    ),
                    ("torn_truncated".into(), Json::U64(js.torn_truncated)),
                    ("gc_swept".into(), Json::U64(js.gc_swept)),
                    ("async_jobs".into(), Json::U64(self.async_jobs.len() as u64)),
                ])
            }
            None => Json::Null,
        };

        let tenants = Json::Arr(
            self.tenants
                .get()
                .map(|g| g.counts())
                .unwrap_or_default()
                .into_iter()
                .map(|t| {
                    Json::Obj(vec![
                        ("tenant".into(), Json::str(t.tenant)),
                        ("requests".into(), Json::U64(t.requests)),
                        ("throttled".into(), Json::U64(t.throttled)),
                    ])
                })
                .collect(),
        );

        Response::json(
            200,
            &Json::Obj(vec![
                ("engine".into(), engine),
                ("workflows".into(), workflows),
                ("journal".into(), journal),
                ("tenants".into(), tenants),
                (
                    "deadline_exceeded".into(),
                    Json::U64(self.deadline_exceeded.load(Ordering::Relaxed)),
                ),
                ("server".into(), server),
                ("profile".into(), profile),
            ]),
        )
    }

    fn run(&self, req: &Request) -> Response {
        let Some(body) = parse_body(req) else {
            return fail(req, 400, "bad_request", "body must be a JSON object");
        };
        let job = match parse_job_spec(&body) {
            Ok(job) => job,
            Err(e) => return fail(req, e.status, e.code, &e.message),
        };
        let spec = job.spec();
        let key = run_key(&spec);
        let request_id = (!req.request_id.is_empty()).then_some(req.request_id.as_str());
        match self.engine.try_execute_observed(&spec, request_id) {
            Ok(report) => {
                Response::json(200, &report_json(&report)).with_header("X-Run-Key", &key.hex())
            }
            // A quarantined job will stay broken until an operator looks
            // at it: 503 + Retry-After tells well-behaved clients to back
            // off rather than hammer a poisoned key.
            Err(e @ EngineError::Quarantined { .. }) => envelope(
                503,
                "quarantined",
                &e.to_string(),
                Some(30),
                &req.request_id,
            )
            .with_header("X-Run-Key", &key.hex()),
            Err(e) => {
                fail(req, 500, "internal", &e.to_string()).with_header("X-Run-Key", &key.hex())
            }
        }
    }

    /// `POST /v1/sweeps`: executes a whole batch through the engine's
    /// dedup + single-flight sweep pipeline, streaming one NDJSON record
    /// per entry the moment it completes (completion order — each record
    /// carries its request index and run key) and a final summary line.
    /// The response carries the sweep's content address in `X-Sweep-Key`.
    fn sweeps(&self, req: &Request) -> Response {
        let Some(body) = parse_body(req) else {
            return fail(req, 400, "bad_request", "body must be a JSON object");
        };
        let entries = match sweep_entries(&body) {
            Ok(entries) => entries,
            Err(e) => return fail(req, e.status, e.code, &e.message),
        };
        if entries.is_empty() {
            return fail(req, 400, "bad_request", "sweep has no jobs");
        }
        if entries.len() > MAX_SWEEP_JOBS {
            return fail(
                req,
                413,
                "payload_too_large",
                &format!(
                    "sweep of {} jobs exceeds the {MAX_SWEEP_JOBS}-job cap",
                    entries.len()
                ),
            );
        }
        let mut owned = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            match parse_job_spec(entry) {
                Ok(job) => owned.push(job),
                Err(e) => return fail(req, e.status, e.code, &format!("jobs[{i}]: {}", e.message)),
            }
        }
        let keys: Vec<RunKey> = owned.iter().map(|o| run_key(&o.spec())).collect();
        let sweep_hex = sweep_key(&keys).hex();

        if wants_async(req) {
            return self.sweep_async(req, &entries, owned, sweep_hex);
        }

        let engine = Arc::clone(&self.engine);
        let request_id = req.request_id.clone();
        let stream = BodyStream::new(move |sink| {
            let specs: Vec<JobSpec<'_>> = owned.iter().map(OwnedJobSpec::spec).collect();
            // The engine calls the sink from its worker threads; the
            // chunk writer is the one shared side effect to serialize.
            let out = Mutex::new(sink);
            let broken = AtomicBool::new(false);
            let rid = (!request_id.is_empty()).then_some(request_id.as_str());
            let outcome = engine.execute_sweep_observed(&specs, rid, &|rec| {
                if broken.load(Ordering::Relaxed) {
                    return;
                }
                let line = format!("{}\n", sweep_record_json(rec).dump());
                if out.lock().unwrap().send(line.as_bytes()).is_err() {
                    // The peer went away mid-stream. Keep executing (the
                    // cache still warms for the retry) but stop writing.
                    broken.store(true, Ordering::Relaxed);
                }
            });
            if broken.load(Ordering::Relaxed) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "sweep stream peer went away",
                ));
            }
            let line = format!("{}\n", sweep_summary_json(&outcome).dump());
            let mut w = out.lock().unwrap();
            w.send(line.as_bytes())
        });
        Response::streaming(200, "application/x-ndjson", stream)
            .with_header("X-Sweep-Key", &sweep_hex)
    }

    /// `POST /v1/sweeps?async=1`: accepts the (already validated) sweep,
    /// journals its intent, and answers `202 Accepted` immediately with
    /// the key to poll. A background thread executes the batch, appending
    /// each record to the journal as it completes; `GET /v1/sweeps/{key}`
    /// reports progress and `GET /v1/sweeps/{key}/records` streams the
    /// journaled NDJSON. Resubmitting the same sweep while it runs (or
    /// after it finishes) is idempotent: same key, same 202.
    fn sweep_async(
        &self,
        req: &Request,
        entries: &[Json],
        owned: Vec<OwnedJobSpec>,
        sweep_hex: String,
    ) -> Response {
        let Some(journal) = self.journal.get() else {
            return envelope(
                503,
                "async_unavailable",
                "async sweeps need a write-ahead journal; start the server with one (serve --journal-dir)",
                None,
                &req.request_id,
            );
        };
        let total = owned.len() as u64;
        // A sealed segment from an earlier run means the job is already
        // complete: adopt it instead of re-executing.
        let sealed = matches!(journal.replay(&sweep_hex), Ok(Some(r)) if r.done);
        let state = if sealed {
            JobState::Done
        } else {
            JobState::Running
        };
        let done = if sealed { total } else { 0 };
        let (job, fresh) = self
            .async_jobs
            .register(&sweep_hex, "sweep", total, state, done);
        if !fresh || sealed {
            return Response::json(202, &jobs::status_json(&sweep_hex, &job))
                .with_header("X-Sweep-Key", &sweep_hex);
        }
        // Write-ahead: the full expanded job list hits the journal before
        // any execution, so a crash at any later point is resumable.
        if let Err(e) = journal.begin(&sweep_hex, &jobs::sweep_intent(entries)) {
            job.fail(format!("journal intent write failed: {e}"));
            return envelope(
                503,
                "journal_unavailable",
                &format!("could not journal sweep intent: {e}"),
                Some(1),
                &req.request_id,
            );
        }
        let rid = (!req.request_id.is_empty()).then(|| req.request_id.clone());
        self.spawn_sweep_driver(
            Arc::clone(journal),
            job,
            owned,
            sweep_hex.clone(),
            rid,
            HashSet::new(),
            false,
        );
        Response::json(
            202,
            &jobs::accepted_json(
                &sweep_hex,
                "sweep",
                &format!("/v1/sweeps/{sweep_hex}"),
                total,
            ),
        )
        .with_header("X-Sweep-Key", &sweep_hex)
    }

    /// Spawns the background thread that executes an async sweep and
    /// journals its records. `already` holds the record indexes a prior
    /// process journaled (resume skips re-appending them — the cache makes
    /// re-execution itself nearly free); `recovered` marks a crash-resume
    /// so completion counts toward `heteropipe_journal_recovered_total`.
    #[allow(clippy::too_many_arguments)]
    fn spawn_sweep_driver(
        &self,
        journal: Arc<Journal>,
        job: Arc<AsyncJob>,
        owned: Vec<OwnedJobSpec>,
        key_hex: String,
        request_id: Option<String>,
        already: HashSet<u64>,
        recovered: bool,
    ) {
        let engine = Arc::clone(&self.engine);
        std::thread::spawn(move || {
            drive_sweep(
                &engine, &journal, &job, &owned, &key_hex, request_id, &already, recovered,
            );
        });
    }

    /// `POST /v1/workflows?async=1`: accepts the validated graph, journals
    /// the submitted body as intent, answers 202, and drives the workflow
    /// on a background thread — one journaled record per stage event plus
    /// a final record holding the full result (the shape
    /// `GET /v1/workflows/{key}` serves).
    fn workflow_async(
        &self,
        req: &Request,
        body: &Json,
        graph: TaskGraph,
        wkey: String,
    ) -> Response {
        let Some(journal) = self.journal.get() else {
            return envelope(
                503,
                "async_unavailable",
                "async workflows need a write-ahead journal; start the server with one (serve --journal-dir)",
                None,
                &req.request_id,
            );
        };
        // Stage events plus the trailing result record.
        let total = graph.len() as u64 + 1;
        let sealed = matches!(journal.replay(&wkey), Ok(Some(r)) if r.done);
        let state = if sealed {
            JobState::Done
        } else {
            JobState::Running
        };
        let done = if sealed { total } else { 0 };
        let (job, fresh) = self
            .async_jobs
            .register(&wkey, "workflow", total, state, done);
        if !fresh || sealed {
            return Response::json(202, &jobs::status_json(&wkey, &job))
                .with_header("X-Workflow-Key", &wkey);
        }
        if let Err(e) = journal.begin(&wkey, &jobs::workflow_intent(body)) {
            job.fail(format!("journal intent write failed: {e}"));
            return envelope(
                503,
                "journal_unavailable",
                &format!("could not journal workflow intent: {e}"),
                Some(1),
                &req.request_id,
            );
        }
        let rid = (!req.request_id.is_empty()).then(|| req.request_id.clone());
        self.spawn_workflow_driver(
            Arc::clone(journal),
            job,
            graph,
            wkey.clone(),
            rid,
            HashSet::new(),
            false,
        );
        Response::json(
            202,
            &jobs::accepted_json(&wkey, "workflow", &format!("/v1/workflows/{wkey}"), total),
        )
        .with_header("X-Workflow-Key", &wkey)
    }

    /// Spawns the background thread driving an async workflow (see
    /// [`Api::spawn_sweep_driver`] for the `already`/`recovered` contract).
    #[allow(clippy::too_many_arguments)]
    fn spawn_workflow_driver(
        &self,
        journal: Arc<Journal>,
        job: Arc<AsyncJob>,
        graph: TaskGraph,
        key_hex: String,
        request_id: Option<String>,
        already: HashSet<u64>,
        recovered: bool,
    ) {
        let flow = Arc::clone(&self.flow);
        std::thread::spawn(move || {
            drive_workflow(
                &flow, &journal, &job, &graph, &key_hex, request_id, &already, recovered,
            );
        });
    }

    /// Replays the journal at startup: every segment with an intent but no
    /// seal is re-registered and driven to completion on background
    /// threads. The result cache turns already-persisted jobs into hits,
    /// so only the missing tail actually re-executes, and the journaled
    /// records end up identical to an uninterrupted run's.
    pub fn resume_incomplete(&self) {
        let Some(journal) = self.journal.get() else {
            return;
        };
        for key in journal.incomplete() {
            let Ok(Some(replay)) = journal.replay(&key) else {
                continue;
            };
            let Some((kind, payload)) = jobs::parse_intent(&replay.intent) else {
                obs_log::warn(
                    "serve",
                    "journaled intent is unreadable; segment left unresumed",
                    &[("key", key.clone().into())],
                );
                continue;
            };
            match kind.as_str() {
                "sweep" => self.resume_sweep(journal, &key, &payload, &replay),
                "workflow" => self.resume_workflow(journal, &key, &payload, &replay),
                _ => {}
            }
        }
    }

    fn resume_sweep(
        &self,
        journal: &Arc<Journal>,
        key: &str,
        payload: &Json,
        replay: &heteropipe_engine::Replay,
    ) {
        let entries = payload.as_array().map(<[Json]>::to_vec).unwrap_or_default();
        let mut owned = Vec::with_capacity(entries.len());
        for entry in &entries {
            match parse_job_spec(entry) {
                Ok(job) => owned.push(job),
                Err(e) => {
                    let (job, _) = self.async_jobs.register(
                        key,
                        "sweep",
                        entries.len() as u64,
                        JobState::Failed,
                        0,
                    );
                    job.fail(format!("journaled intent no longer parses: {}", e.message));
                    return;
                }
            }
        }
        let already = replay.indexes();
        let (job, fresh) = self.async_jobs.register(
            key,
            "sweep",
            owned.len() as u64,
            JobState::Running,
            already.len() as u64,
        );
        if !fresh {
            return;
        }
        obs_log::info(
            "serve",
            "resuming interrupted async sweep from journal",
            &[
                ("key", key.to_string().into()),
                ("jobs_total", (owned.len() as u64).into()),
                ("records_journaled", (already.len() as u64).into()),
            ],
        );
        self.spawn_sweep_driver(
            Arc::clone(journal),
            job,
            owned,
            key.to_string(),
            None,
            already,
            true,
        );
    }

    fn resume_workflow(
        &self,
        journal: &Arc<Journal>,
        key: &str,
        payload: &Json,
        replay: &heteropipe_engine::Replay,
    ) {
        let graph = match workflow_graph(payload) {
            Ok(graph) => graph,
            Err(e) => {
                let (job, _) = self
                    .async_jobs
                    .register(key, "workflow", 0, JobState::Failed, 0);
                job.fail(format!("journaled intent no longer parses: {}", e.message));
                return;
            }
        };
        let total = graph.len() as u64 + 1;
        let already = replay.indexes();
        let (job, fresh) = self.async_jobs.register(
            key,
            "workflow",
            total,
            JobState::Running,
            already.len() as u64,
        );
        if !fresh {
            return;
        }
        obs_log::info(
            "serve",
            "resuming interrupted async workflow from journal",
            &[
                ("key", key.to_string().into()),
                ("records_journaled", (already.len() as u64).into()),
            ],
        );
        self.spawn_workflow_driver(
            Arc::clone(journal),
            job,
            graph,
            key.to_string(),
            None,
            already,
            true,
        );
    }

    /// `POST /v1/workflows`: runs a task graph — a built-in named graph
    /// (`{"workflow": "fig5", "scale": 0.08}`) or an inline list of sweep
    /// stages with dependency edges — streaming one NDJSON stage-completion
    /// event per stage and a trailing summary line. The response carries
    /// the graph's content address in `X-Workflow-Key`; feeding it back to
    /// `GET /v1/workflows/{key}` returns the journaled result.
    fn workflows(&self, req: &Request) -> Response {
        let Some(body) = parse_body(req) else {
            return fail(req, 400, "bad_request", "body must be a JSON object");
        };
        let graph = match workflow_graph(&body) {
            Ok(graph) => graph,
            Err(e) => return fail(req, e.status, e.code, &e.message),
        };
        // Full validation (duplicates, unknown edges, cycles) up front, so
        // a bad graph is a clean 400 envelope instead of a broken stream.
        let wkey = match graph.workflow_key() {
            Ok(key) => key.hex(),
            Err(e) => return fail(req, 400, "bad_request", &format!("invalid workflow: {e}")),
        };
        if wants_async(req) {
            return self.workflow_async(req, &body, graph, wkey);
        }
        // An `X-Deadline-Ms` budget (already vetted by admission) becomes
        // an absolute deadline the DAG runner checks between levels:
        // stages whose level starts past it fail with a deadline error
        // and their dependents cascade-skip.
        let deadline = deadline_ms(req)
            .ok()
            .flatten()
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        let flow = Arc::clone(&self.flow);
        let request_id = req.request_id.clone();
        let stream = BodyStream::new(move |sink| {
            // The runner calls the sink from its worker threads; the chunk
            // writer is the one shared side effect to serialize.
            let out = Mutex::new(sink);
            let broken = AtomicBool::new(false);
            let rid = (!request_id.is_empty()).then_some(request_id.as_str());
            let result = flow.run_observed_deadline(
                &graph,
                rid,
                &|ev| {
                    if broken.load(Ordering::Relaxed) {
                        return;
                    }
                    let line = format!("{}\n", stage_event_json(ev).dump());
                    if out.lock().unwrap().send(line.as_bytes()).is_err() {
                        // The peer went away mid-stream. Keep executing
                        // (the memo still warms for the retry) but stop
                        // writing.
                        broken.store(true, Ordering::Relaxed);
                    }
                },
                deadline,
            );
            let result = result.expect("graph validated before streaming");
            if broken.load(Ordering::Relaxed) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "workflow stream peer went away",
                ));
            }
            let line = format!("{}\n", workflow_summary_json(&result).dump());
            let mut w = out.lock().unwrap();
            w.send(line.as_bytes())
        });
        Response::streaming(200, "application/x-ndjson", stream)
            .with_header("X-Workflow-Key", &wkey)
    }

    /// `GET /v1/workflows/{key}`: the journaled result of a previously
    /// executed workflow — summary, per-stage events, and the rendered
    /// text of every declared output stage.
    fn workflow_lookup(&self, req: &Request, key: &str) -> Response {
        if !valid_run_key(key) {
            return fail(
                req,
                400,
                "bad_request",
                &format!("workflow key must be 32 hex characters, got {key:?}"),
            );
        }
        let key = key.to_ascii_lowercase();
        if let Some(result) = self.flow.journaled(&key) {
            return Response::json(200, &workflow_result_json(&result))
                .with_header("X-Workflow-Key", &result.key_hex)
                .into_chunked();
        }
        // Not in the in-memory result journal: an async workflow this
        // process is (or was) driving answers its live status...
        if let Some(job) = self.async_jobs.get(&key) {
            if job.state() != JobState::Done {
                return Response::json(200, &jobs::status_json(&key, &job))
                    .with_header("X-Workflow-Key", &key);
            }
        }
        // ...and a sealed segment from a previous process answers from
        // disk: its final record is the full result JSON.
        if let Some(journal) = self.journal.get() {
            if let Ok(Some(replay)) = journal.replay(&key) {
                if replay.done {
                    if let Some(result) = replay
                        .records
                        .iter()
                        .max_by_key(|&&(i, _)| i)
                        .and_then(|(_, line)| Json::parse(line))
                        .filter(|v| v.get("workflow").is_some())
                    {
                        return Response::json(200, &result)
                            .with_header("X-Workflow-Key", &key)
                            .into_chunked();
                    }
                }
                if let Some(body) = journal_status_json(&key, "workflow", &replay) {
                    return Response::json(200, &body).with_header("X-Workflow-Key", &key);
                }
            }
        }
        fail(req, 404, "not_found", "no journaled workflow for that key")
    }

    fn experiment(&self, req: &Request, name: &str) -> Response {
        let body = parse_body(req).unwrap_or(Json::Obj(Vec::new()));
        let scale = match parse_scale(&body) {
            Ok(scale) => scale,
            Err(why) => return fail(req, 400, "bad_request", why),
        };
        let exec: &dyn Executor = &*self.engine;

        let rendered = match name {
            "fig3" => fig3::render(&fig3::compute_with(exec, scale)),
            "fig4" => fig456::render_fig4(&fig4_rows(exec, scale)),
            "fig5" => fig456::render_fig5(&fig456::fig5(&characterize_all_with(exec, scale))),
            "fig6" => {
                let pairs = characterize_all_with(exec, scale);
                fig456::render_fig6_with_effects(&fig456::fig6(&pairs), &pairs)
            }
            "fig7" => fig78::render_fig7(&fig78::fig7(&characterize_all_with(exec, scale))),
            "fig8" => fig78::render_fig8(&fig78::fig8(&characterize_all_with(exec, scale))),
            "fig9" => fig9::render(&fig9::fig9(&characterize_all_with(exec, scale))),
            "table1" => tables::render_table1(),
            "table2" => tables::render_table2(),
            _ => {
                return fail(
                    req,
                    404,
                    "not_found",
                    &format!("unknown experiment: {name} (fig3..fig9, table1, table2)"),
                )
            }
        };

        Response::json(
            200,
            &Json::Obj(vec![
                ("experiment".into(), Json::str(name)),
                ("scale".into(), Json::F64(scale.factor())),
                ("rendered".into(), Json::str(rendered)),
            ]),
        )
        .into_chunked()
    }
}

fn fig4_rows(exec: &dyn Executor, scale: Scale) -> Vec<fig456::Fig4Row> {
    fig456::fig4(&characterize_all_with(exec, scale))
}

/// The background body of an async sweep: execute the batch, append each
/// record to the journal as it completes, then seal the segment. Records
/// whose index is in `already` were journaled by a previous process and
/// are skipped (the engine still "executes" them, but the cache answers).
/// A failed append never fails the job — it is retried once after the
/// batch; only records that still cannot be journaled fail the job, since
/// an unsealed segment without them could never resume faithfully.
#[allow(clippy::too_many_arguments)]
fn drive_sweep(
    engine: &Arc<Engine>,
    journal: &Arc<Journal>,
    job: &Arc<AsyncJob>,
    owned: &[OwnedJobSpec],
    key_hex: &str,
    request_id: Option<String>,
    already: &HashSet<u64>,
    recovered: bool,
) {
    let specs: Vec<JobSpec<'_>> = owned.iter().map(OwnedJobSpec::spec).collect();
    let rid = request_id.as_deref();
    let retry: Mutex<Vec<(u64, String, bool)>> = Mutex::new(Vec::new());
    engine.execute_sweep_observed(&specs, rid, &|rec| {
        let index = rec.index as u64;
        if already.contains(&index) {
            return;
        }
        let line = sweep_record_json(rec).dump();
        let errored = rec.result.is_err();
        match journal.append_record(key_hex, index, &line) {
            Ok(()) => job.record_done(errored),
            Err(e) => {
                obs_log::warn(
                    "serve",
                    "journal append failed; retrying after the batch",
                    &[
                        ("key", key_hex.to_string().into()),
                        ("index", index.into()),
                        ("error", e.to_string().into()),
                    ],
                );
                retry.lock().unwrap().push((index, line, errored));
            }
        }
    });
    let mut lost = 0u64;
    for (index, line, errored) in retry.into_inner().unwrap() {
        match journal.append_record(key_hex, index, &line) {
            Ok(()) => job.record_done(errored),
            Err(e) => {
                lost += 1;
                obs_log::error(
                    "serve",
                    "journal append failed permanently",
                    &[
                        ("key", key_hex.to_string().into()),
                        ("index", index.into()),
                        ("error", e.to_string().into()),
                    ],
                );
            }
        }
    }
    if lost > 0 {
        job.fail(format!("{lost} record(s) could not be journaled"));
        return;
    }
    match journal.finish(key_hex, job.total) {
        Ok(()) => {
            if recovered {
                journal.mark_recovered();
            }
            job.set_state(JobState::Done);
        }
        Err(e) => job.fail(format!("journal seal failed: {e}")),
    }
}

/// The background body of an async workflow: run the graph, journaling
/// one record per stage event (in emission order) and a final record
/// holding the full result JSON — the shape `GET /v1/workflows/{key}`
/// serves, so a restarted process can answer lookups from disk alone.
#[allow(clippy::too_many_arguments)]
fn drive_workflow(
    flow: &Arc<FlowRunner>,
    journal: &Arc<Journal>,
    job: &Arc<AsyncJob>,
    graph: &TaskGraph,
    key_hex: &str,
    request_id: Option<String>,
    already: &HashSet<u64>,
    recovered: bool,
) {
    let rid = request_id.as_deref();
    let counter = AtomicU64::new(0);
    let result = flow.run_observed(graph, rid, &|ev| {
        let index = counter.fetch_add(1, Ordering::Relaxed);
        if already.contains(&index) {
            return;
        }
        let line = stage_event_json(ev).dump();
        let errored = ev.error.is_some();
        match journal.append_record(key_hex, index, &line) {
            Ok(()) => job.record_done(errored),
            Err(e) => obs_log::warn(
                "serve",
                "journal append failed for workflow stage event",
                &[
                    ("key", key_hex.to_string().into()),
                    ("index", index.into()),
                    ("error", e.to_string().into()),
                ],
            ),
        }
    });
    match result {
        Ok(result) => {
            let final_index = job.total.saturating_sub(1);
            if !already.contains(&final_index) {
                let line = workflow_result_json(&result).dump();
                if let Err(e) = journal.append_record(key_hex, final_index, &line) {
                    job.fail(format!("journal append failed for workflow result: {e}"));
                    return;
                }
                job.record_done(false);
            }
            match journal.finish(key_hex, job.total) {
                Ok(()) => {
                    if recovered {
                        journal.mark_recovered();
                    }
                    job.set_state(JobState::Done);
                }
                Err(e) => job.fail(format!("journal seal failed: {e}")),
            }
        }
        Err(e) => job.fail(format!("workflow failed: {e}")),
    }
}

/// Parses a request body as a JSON object (`None` for empty, non-UTF-8,
/// unparseable, or non-object bodies). Shared with the cluster
/// coordinator so both front doors reject malformed bodies identically.
pub fn parse_body(req: &Request) -> Option<Json> {
    if req.body.is_empty() {
        return None;
    }
    let text = std::str::from_utf8(&req.body).ok()?;
    match Json::parse(text) {
        Some(v @ Json::Obj(_)) => Some(v),
        _ => None,
    }
}

fn parse_scale(body: &Json) -> Result<Scale, &'static str> {
    match body.get("scale") {
        None | Some(Json::Null) => Ok(Scale::PAPER),
        Some(v) => {
            let f = v.as_f64().ok_or("scale must be a number")?;
            if f > 0.0 && f.is_finite() {
                Ok(Scale::new(f))
            } else {
                Err("scale must be a positive finite number")
            }
        }
    }
}

fn parse_organization(v: Option<&Json>) -> Result<Organization, &'static str> {
    match v {
        None | Some(Json::Null) => Ok(Organization::Serial),
        Some(Json::Str(s)) if s == "serial" => Ok(Organization::Serial),
        Some(Json::Obj(_)) => {
            let obj = v.unwrap();
            if let Some(n) = obj.get("async_streams").and_then(Json::as_u64) {
                if n == 0 || n > u64::from(u32::MAX) {
                    return Err("async_streams must be in 1..=u32::MAX");
                }
                Ok(Organization::AsyncStreams { streams: n as u32 })
            } else if let Some(n) = obj.get("chunked_parallel").and_then(Json::as_u64) {
                if n == 0 || n > u64::from(u32::MAX) {
                    return Err("chunked_parallel must be in 1..=u32::MAX");
                }
                Ok(Organization::ChunkedParallel { chunks: n as u32 })
            } else {
                Err("organization object needs async_streams or chunked_parallel")
            }
        }
        Some(_) => Err("organization must be \"serial\" or an object"),
    }
}

/// A job spec parsed from JSON, owning its pipeline and config so it can
/// outlive the request body (the sweep stream borrows specs from inside
/// the response producer, after the request has been dropped).
#[derive(Debug)]
pub struct OwnedJobSpec {
    pipeline: Pipeline,
    config: SystemConfig,
    organization: Organization,
    misalignment_sensitive: bool,
}

impl OwnedJobSpec {
    /// The borrowed [`JobSpec`] view the engine executes and keys on.
    pub fn spec(&self) -> JobSpec<'_> {
        JobSpec {
            pipeline: &self.pipeline,
            config: &self.config,
            organization: self.organization,
            misalignment_sensitive: self.misalignment_sensitive,
        }
    }
}

/// Why a job spec failed to parse, shaped for the error envelope.
#[derive(Debug)]
pub struct SpecError {
    /// HTTP status the envelope should carry (400, 404, 413, 422).
    pub status: u16,
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl SpecError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> SpecError {
        SpecError {
            status,
            code,
            message: message.into(),
        }
    }

    fn bad(message: impl Into<String>) -> SpecError {
        SpecError::new(400, "bad_request", message)
    }
}

/// Parses one job-spec object (`benchmark`, `system`, `organization`,
/// `scale`, `misalignment_sensitive`) — the shared front half of
/// `POST /v1/runs` and every `POST /v1/sweeps` entry.
pub fn parse_job_spec(body: &Json) -> Result<OwnedJobSpec, SpecError> {
    let Some(name) = body.get("benchmark").and_then(Json::as_str) else {
        return Err(SpecError::bad("missing field: benchmark"));
    };
    let Some(workload) = registry::find(name) else {
        return Err(SpecError::new(
            404,
            "not_found",
            format!("unknown benchmark: {name}"),
        ));
    };
    let config = match body.get("system").and_then(Json::as_str) {
        None | Some("discrete") => SystemConfig::discrete(),
        Some("heterogeneous") => SystemConfig::heterogeneous(),
        Some(other) => {
            return Err(SpecError::bad(format!(
                "unknown system: {other} (discrete | heterogeneous)"
            )))
        }
    };
    let organization = parse_organization(body.get("organization")).map_err(SpecError::bad)?;
    // `lower` panics on a platform/organization mismatch; answer 400
    // instead of letting the handler's panic guard turn it into a 500.
    match (config.platform, organization) {
        (Platform::DiscreteGpu, Organization::ChunkedParallel { .. }) => {
            return Err(SpecError::bad(
                "chunked_parallel requires the heterogeneous system",
            ))
        }
        (Platform::Heterogeneous, Organization::AsyncStreams { .. }) => {
            return Err(SpecError::bad("async_streams requires the discrete system"))
        }
        _ => {}
    }
    let scale = parse_scale(body).map_err(SpecError::bad)?;
    let Some(pipeline) = workload.pipeline(scale) else {
        return Err(SpecError::new(
            422,
            "not_runnable",
            format!("benchmark {name} is catalogued but not runnable"),
        ));
    };
    let misalignment_sensitive = body
        .get("misalignment_sensitive")
        .and_then(Json::as_bool)
        .unwrap_or(workload.meta.misalignment_sensitive);
    Ok(OwnedJobSpec {
        pipeline,
        config,
        organization,
        misalignment_sensitive,
    })
}

/// Expands a `POST /v1/sweeps` body into its per-job spec objects: either
/// the explicit `"jobs"` array, or the generator cross-product
/// `benchmarks × systems × organizations` with `scale` and
/// `misalignment_sensitive` shared across every generated entry.
pub fn sweep_entries(body: &Json) -> Result<Vec<Json>, SpecError> {
    if let Some(jobs) = body.get("jobs") {
        let Some(arr) = jobs.as_array() else {
            return Err(SpecError::bad("\"jobs\" must be an array of job objects"));
        };
        for (i, j) in arr.iter().enumerate() {
            if !matches!(j, Json::Obj(_)) {
                return Err(SpecError::bad(format!("jobs[{i}] must be an object")));
            }
        }
        return Ok(arr.to_vec());
    }
    let names: Vec<String> = match body.get("benchmarks") {
        // The named sets skip catalogued-but-unrunnable workloads, since
        // a generated sweep should not be doomed by the census.
        Some(Json::Str(s)) if s == "all" || s == "examined" => registry::all()
            .iter()
            .filter(|w| (s == "all" || w.meta.examined) && w.pipeline(Scale::TEST).is_some())
            .map(|w| w.meta.full_name())
            .collect(),
        Some(Json::Arr(items)) => {
            let mut names = Vec::with_capacity(items.len());
            for it in items {
                match it.as_str() {
                    Some(s) => names.push(s.to_owned()),
                    None => return Err(SpecError::bad("\"benchmarks\" entries must be strings")),
                }
            }
            names
        }
        _ => return Err(SpecError::bad(
            "body needs \"jobs\" (array) or \"benchmarks\" (name list | \"examined\" | \"all\")",
        )),
    };
    let systems: Vec<Json> = match body.get("systems") {
        None => vec![Json::str("discrete")],
        Some(Json::Arr(items)) if !items.is_empty() => items.clone(),
        Some(s @ Json::Str(_)) => vec![s.clone()],
        Some(_) => {
            return Err(SpecError::bad(
                "\"systems\" must be a system name or a non-empty array of them",
            ))
        }
    };
    let organizations: Vec<Json> = match body.get("organizations") {
        None => vec![body.get("organization").cloned().unwrap_or(Json::Null)],
        Some(Json::Arr(items)) if !items.is_empty() => items.clone(),
        Some(_) => {
            return Err(SpecError::bad(
                "\"organizations\" must be a non-empty array",
            ))
        }
    };
    let mut entries = Vec::with_capacity(names.len() * systems.len() * organizations.len());
    for name in &names {
        for system in &systems {
            for org in &organizations {
                let mut obj = vec![
                    ("benchmark".to_string(), Json::str(name.clone())),
                    ("system".to_string(), system.clone()),
                ];
                if !matches!(org, Json::Null) {
                    obj.push(("organization".to_string(), org.clone()));
                }
                for field in ["scale", "misalignment_sensitive"] {
                    if let Some(v) = body.get(field) {
                        obj.push((field.to_string(), v.clone()));
                    }
                }
                entries.push(Json::Obj(obj));
            }
        }
    }
    Ok(entries)
}

/// The stable per-entry error code in sweep NDJSON records.
fn engine_error_code(e: &EngineError) -> &'static str {
    match e {
        EngineError::Quarantined { .. } => "quarantined",
        _ => "execution_failed",
    }
}

/// One NDJSON line of a sweep stream. Deliberately free of timing and
/// cache-disposition fields, so a warm repeat of the same sweep emits
/// byte-identical records (only the trailing summary line varies).
fn sweep_record_json(rec: &SweepRecord) -> Json {
    let mut obj = vec![
        ("index".to_string(), Json::U64(rec.index as u64)),
        ("key".to_string(), Json::str(rec.key_hex.clone())),
    ];
    match &rec.result {
        Ok(report) => {
            obj.push(("status".to_string(), Json::str("ok")));
            obj.push(("deduped".to_string(), Json::Bool(rec.deduped)));
            obj.push(("report".to_string(), report_json(report)));
        }
        Err(e) => {
            obj.push(("status".to_string(), Json::str("error")));
            obj.push(("deduped".to_string(), Json::Bool(rec.deduped)));
            obj.push((
                "error".to_string(),
                Json::Obj(vec![
                    ("code".into(), Json::str(engine_error_code(e))),
                    ("message".into(), Json::str(e.to_string())),
                ]),
            ));
        }
    }
    Json::Obj(obj)
}

/// The trailing NDJSON summary line of a sweep stream (the one line that
/// carries timing, excluded from byte-identity guarantees).
fn sweep_summary_json(outcome: &heteropipe_engine::SweepOutcome) -> Json {
    let s = &outcome.summary;
    Json::Obj(vec![(
        "sweep".to_string(),
        Json::Obj(vec![
            ("key".into(), Json::str(outcome.key_hex.clone())),
            ("jobs_total".into(), Json::U64(s.jobs_total)),
            ("jobs_unique".into(), Json::U64(s.jobs_unique)),
            ("duplicates".into(), Json::U64(s.duplicates)),
            ("cache_hits".into(), Json::U64(s.cache_hits)),
            ("executed".into(), Json::U64(s.executed)),
            ("coalesced".into(), Json::U64(s.coalesced)),
            ("failed".into(), Json::U64(s.failed)),
            ("wall_ms".into(), Json::U64(s.wall_ns / 1_000_000)),
            ("speedup_vs_serial".into(), Json::F64(s.speedup_vs_serial())),
        ]),
    )])
}

/// Builds the graph a `POST /v1/workflows` body describes: either a
/// built-in named graph (`"workflow"` plus optional `"scale"`) or an
/// inline `"stages"` array of sweep stages with dependency edges.
pub fn workflow_graph(body: &Json) -> Result<TaskGraph, SpecError> {
    if let Some(name) = body.get("workflow") {
        let Some(name) = name.as_str() else {
            return Err(SpecError::bad("\"workflow\" must be a string"));
        };
        let scale = parse_scale(body).map_err(SpecError::bad)?;
        return match figures::graph(name, scale, false) {
            Some(fg) => Ok(fg.graph),
            None => Err(SpecError::new(
                404,
                "not_found",
                format!(
                    "unknown workflow: {name} (built-ins: {})",
                    figures::names().join(", ")
                ),
            )),
        };
    }
    let Some(stages) = body.get("stages") else {
        return Err(SpecError::bad(
            "body needs \"workflow\" (built-in name) or \"stages\" (array of stage objects)",
        ));
    };
    let Some(stages) = stages.as_array() else {
        return Err(SpecError::bad("\"stages\" must be an array"));
    };
    if stages.is_empty() {
        return Err(SpecError::bad("workflow has no stages"));
    }
    if stages.len() > MAX_WORKFLOW_STAGES {
        return Err(SpecError::new(
            413,
            "payload_too_large",
            format!(
                "workflow of {} stages exceeds the {MAX_WORKFLOW_STAGES}-stage cap",
                stages.len()
            ),
        ));
    }
    let mut graph = TaskGraph::new("inline");
    let mut total_jobs = 0usize;
    for (i, stage) in stages.iter().enumerate() {
        let Json::Obj(_) = stage else {
            return Err(SpecError::bad(format!("stages[{i}] must be an object")));
        };
        let built = inline_stage(stage, &mut total_jobs)
            .map_err(|e| SpecError::new(e.status, e.code, format!("stages[{i}]: {}", e.message)))?;
        let name = built.name().to_owned();
        graph.add(built);
        graph.output(name);
    }
    Ok(graph)
}

/// Parses one inline workflow stage: a name, optional `deps`, and a sweep
/// body (the same `jobs` / `benchmarks` forms as `POST /v1/sweeps`). The
/// stage key is derived from the sweep's content address, so identical
/// inline sweep stages memoize across workflows.
fn inline_stage(stage: &Json, total_jobs: &mut usize) -> Result<Stage, SpecError> {
    let Some(name) = stage.get("name").and_then(Json::as_str) else {
        return Err(SpecError::bad("missing field: name"));
    };
    let deps: Vec<String> = match stage.get("deps") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Arr(items)) => {
            let mut deps = Vec::with_capacity(items.len());
            for d in items {
                match d.as_str() {
                    Some(s) => deps.push(s.to_owned()),
                    None => return Err(SpecError::bad("\"deps\" entries must be stage names")),
                }
            }
            deps
        }
        Some(_) => return Err(SpecError::bad("\"deps\" must be an array of stage names")),
    };
    let entries = sweep_entries(stage)?;
    if entries.is_empty() {
        return Err(SpecError::bad("stage sweep has no jobs"));
    }
    *total_jobs += entries.len();
    if *total_jobs > MAX_SWEEP_JOBS {
        return Err(SpecError::new(
            413,
            "payload_too_large",
            format!("workflow exceeds the {MAX_SWEEP_JOBS}-job cap across its stages"),
        ));
    }
    let mut owned = Vec::with_capacity(entries.len());
    for (j, entry) in entries.iter().enumerate() {
        match parse_job_spec(entry) {
            Ok(job) => owned.push(job),
            Err(e) => {
                return Err(SpecError::new(
                    e.status,
                    e.code,
                    format!("jobs[{j}]: {}", e.message),
                ))
            }
        }
    }
    let keys: Vec<RunKey> = owned.iter().map(|o| run_key(&o.spec())).collect();
    let sweep_hex = sweep_key(&keys).hex();
    let mut built = Stage::new(name, StageKind::Sweep, move |ctx| {
        let specs: Vec<JobSpec<'_>> = owned.iter().map(OwnedJobSpec::spec).collect();
        let records = Mutex::new(Vec::with_capacity(specs.len()));
        let outcome = ctx.engine().execute_sweep_observed(&specs, None, &|rec| {
            records
                .lock()
                .unwrap()
                .push((rec.index, sweep_record_json(rec).dump()));
        });
        if outcome.summary.failed > 0 {
            return Err(format!(
                "{} of {} sweep jobs failed",
                outcome.summary.failed, outcome.summary.jobs_total
            ));
        }
        // Completion order is nondeterministic; the stage value is the
        // records in submission order, one JSON line each.
        let mut records = records.into_inner().unwrap();
        records.sort_by_key(|&(i, _)| i);
        let mut text = String::new();
        for (_, line) in records {
            text.push_str(&line);
            text.push('\n');
        }
        Ok(StageValue::from_text(text))
    })
    .input(format!("jobs={sweep_hex}"));
    for d in deps {
        built = built.dep(d);
    }
    Ok(built)
}

/// One NDJSON stage-completion event of a workflow stream (also the
/// `events` entries of the journaled result).
pub fn stage_event_json(ev: &StageEvent) -> Json {
    let mut obj = vec![
        ("stage".to_string(), Json::str(ev.stage.clone())),
        ("kind".to_string(), Json::str(ev.kind.label())),
        ("key".to_string(), Json::str(ev.key_hex.clone())),
        ("status".to_string(), Json::str(ev.status.label())),
        ("cache_hit".to_string(), Json::Bool(ev.cache_hit)),
        ("wall_ms".to_string(), Json::U64(ev.wall_ns / 1_000_000)),
    ];
    if let Some(e) = &ev.error {
        obj.push((
            "error".to_string(),
            Json::Obj(vec![("message".into(), Json::str(e.clone()))]),
        ));
    }
    Json::Obj(obj)
}

/// The workflow summary object shared by the trailing NDJSON line and the
/// journaled-result lookup.
pub fn workflow_summary_json(result: &WorkflowResult) -> Json {
    let s = &result.summary;
    Json::Obj(vec![(
        "workflow".to_string(),
        Json::Obj(vec![
            ("key".into(), Json::str(result.key_hex.clone())),
            ("name".into(), Json::str(result.name.clone())),
            ("stages_total".into(), Json::U64(s.stages_total)),
            ("executed".into(), Json::U64(s.executed)),
            ("cache_hits".into(), Json::U64(s.cache_hits)),
            ("failed".into(), Json::U64(s.failed)),
            ("skipped".into(), Json::U64(s.skipped)),
            ("wall_ms".into(), Json::U64(s.wall_ns / 1_000_000)),
        ]),
    )])
}

/// The `GET /v1/workflows/{key}` body: summary, per-stage events, and the
/// rendered text of every declared output stage.
pub fn workflow_result_json(result: &WorkflowResult) -> Json {
    let mut fields = match workflow_summary_json(result) {
        Json::Obj(fields) => fields,
        _ => unreachable!("summary is an object"),
    };
    fields.push((
        "events".to_string(),
        Json::Arr(result.events.iter().map(stage_event_json).collect()),
    ));
    fields.push((
        "outputs".to_string(),
        Json::Arr(
            result
                .outputs
                .iter()
                .map(|(stage, text)| {
                    Json::Obj(vec![
                        ("stage".into(), Json::str(stage.clone())),
                        ("text".into(), Json::str(text.as_str())),
                    ])
                })
                .collect(),
        ),
    ));
    Json::Obj(fields)
}

/// The `GET /v1/benchmarks` census response (also served locally by the
/// cluster coordinator — the catalogue is static, so no proxying).
pub fn benchmarks() -> Response {
    let all = registry::all();
    let examined = all.iter().filter(|w| w.meta.examined).count();
    let list: Vec<Json> = all.iter().map(benchmark_json).collect();
    Response::json(
        200,
        &Json::Obj(vec![
            ("total".into(), Json::U64(all.len() as u64)),
            ("examined".into(), Json::U64(examined as u64)),
            ("benchmarks".into(), Json::Arr(list)),
        ]),
    )
    .into_chunked()
}

fn benchmark_json(w: &Workload) -> Json {
    let m = &w.meta;
    Json::Obj(vec![
        ("name".into(), Json::str(m.full_name())),
        ("suite".into(), Json::str(m.suite.to_string())),
        ("examined".into(), Json::Bool(m.examined)),
        (
            "runnable".into(),
            Json::Bool(w.pipeline(Scale::TEST).is_some()),
        ),
        ("pc_comm".into(), Json::Bool(m.pc_comm)),
        ("pipe_parallel".into(), Json::Bool(m.pipe_parallel)),
        ("regular".into(), Json::Bool(m.regular)),
        ("irregular".into(), Json::Bool(m.irregular)),
        ("sw_queue".into(), Json::Bool(m.sw_queue)),
        (
            "misalignment_sensitive".into(),
            Json::Bool(m.misalignment_sensitive),
        ),
    ])
}

/// Whether a request's `If-None-Match` header matches `etag` (a quoted
/// entity tag). Strong comparison over a comma-separated candidate list,
/// tolerating a `W/` weakness prefix, the bare unquoted tag (clients
/// often echo the `X-Run-Key` value directly), and `*`.
fn if_none_match(req: &Request, etag: &str) -> bool {
    let Some(raw) = req.header("if-none-match") else {
        return false;
    };
    let bare = etag.trim_matches('"');
    raw.split(',').map(str::trim).any(|cand| {
        let cand = cand.strip_prefix("W/").unwrap_or(cand);
        cand == "*" || cand == etag || cand == bare
    })
}

/// The experiment catalogue: every paper figure/table reproduction the
/// API can execute, with its paper section and the knobs a `POST` body
/// accepts. One row per `{id}` of `/v1/experiments/{id}`.
const EXPERIMENTS: &[(&str, &str, &str)] = &[
    (
        "fig3",
        "kmeans case study: run time and component activity across five organizations",
        "II",
    ),
    (
        "fig4",
        "memory footprint by component set, copy vs limited-copy",
        "IV-A",
    ),
    (
        "fig5",
        "memory accesses by component, copy vs limited-copy",
        "IV-B",
    ),
    (
        "fig6",
        "run time activity breakdown, copy vs limited-copy",
        "IV-C",
    ),
    ("fig7", "component-overlap run time estimate (Eq. 1)", "V-A"),
    (
        "fig8",
        "migrated-compute run time estimate (Eq. 2-4)",
        "V-B",
    ),
    (
        "fig9",
        "off-chip memory accesses classified by cause",
        "IV-D",
    ),
    ("table1", "simulated system parameters", "III"),
    (
        "table2",
        "producer-consumer constructs census, 58 benchmarks",
        "III",
    ),
];

/// One experiment's metadata object (the `GET /v1/experiments/{id}` body
/// and the per-entry shape of the index).
fn experiment_json(id: &str, title: &str, section: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::str(id)),
        ("title".into(), Json::str(title)),
        ("section".into(), Json::str(section)),
        ("knobs".into(), Json::Arr(vec![Json::str("scale")])),
        (
            "execute".into(),
            Json::str(format!("POST /v1/experiments/{id}")),
        ),
    ])
}

/// The `GET /v1/experiments` index body: every figure/table reproduction
/// with id, title, paper section, and accepted knobs. Also served
/// locally by the cluster coordinator — the catalogue is static, so no
/// proxying.
pub fn experiments_index() -> Json {
    Json::Obj(vec![
        ("total".into(), Json::U64(EXPERIMENTS.len() as u64)),
        (
            "experiments".into(),
            Json::Arr(
                EXPERIMENTS
                    .iter()
                    .map(|&(id, title, section)| experiment_json(id, title, section))
                    .collect(),
            ),
        ),
    ])
}

/// The metadata object for one experiment id, or `None` when unknown.
pub fn experiment_meta(id: &str) -> Option<Json> {
    EXPERIMENTS
        .iter()
        .find(|&&(eid, _, _)| eid == id)
        .map(|&(eid, title, section)| experiment_json(eid, title, section))
}

/// The `GET /v1/experiments` response.
pub fn experiments() -> Response {
    Response::json(200, &experiments_index()).into_chunked()
}

/// The `GET /v1/experiments/{id}` response: metadata only — execution
/// stays on `POST`.
pub fn experiment_lookup(req: &Request, id: &str) -> Response {
    match experiment_meta(id) {
        Some(meta) => Response::json(200, &meta),
        None => fail(
            req,
            404,
            "not_found",
            &format!("unknown experiment: {id} (fig3..fig9, table1, table2)"),
        ),
    }
}

/// Renders a [`RunReport`] as a JSON object. Every field is an integer,
/// string, or bool except `gpu_utilization` (derived, deterministic), so
/// identical reports always serialize to identical bytes.
pub fn report_json(r: &RunReport) -> Json {
    let platform = match r.platform {
        Platform::DiscreteGpu => "discrete",
        Platform::Heterogeneous => "heterogeneous",
    };
    Json::Obj(vec![
        ("benchmark".into(), Json::str(r.benchmark.clone())),
        ("platform".into(), Json::str(platform)),
        ("organization".into(), Json::str(r.organization.to_string())),
        ("roi_ps".into(), Json::U64(r.roi.as_picos())),
        (
            "busy_ps".into(),
            Json::Obj(vec![
                ("copy".into(), Json::U64(r.busy.copy.as_picos())),
                ("cpu".into(), Json::U64(r.busy.cpu.as_picos())),
                ("gpu".into(), Json::U64(r.busy.gpu.as_picos())),
            ]),
        ),
        (
            "exclusive".into(),
            Json::Arr(
                r.exclusive
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("components".into(), Json::str(s.components.clone())),
                            ("ps".into(), Json::U64(s.time.as_picos())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "accesses".into(),
            Json::Obj(vec![
                ("copy".into(), Json::U64(r.accesses[0])),
                ("cpu".into(), Json::U64(r.accesses[1])),
                ("gpu".into(), Json::U64(r.accesses[2])),
            ]),
        ),
        (
            "offchip".into(),
            Json::Obj(vec![
                ("fetches".into(), Json::U64(r.offchip_fetches)),
                ("writebacks".into(), Json::U64(r.offchip_writebacks)),
                ("bytes".into(), Json::U64(r.offchip_bytes)),
            ]),
        ),
        (
            "classes".into(),
            Json::Obj(
                AccessClass::ALL
                    .iter()
                    .map(|&c| (c.label().to_string(), Json::U64(r.classes.get(c))))
                    .collect(),
            ),
        ),
        (
            "footprint".into(),
            Json::Arr(
                r.footprint
                    .iter()
                    .map(|&(set, bytes)| {
                        Json::Obj(vec![
                            ("components".into(), Json::str(set.label())),
                            ("bytes".into(), Json::U64(bytes)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_footprint_bytes".into(), Json::U64(r.total_footprint)),
        ("faults".into(), Json::U64(r.faults)),
        ("c_serial_ps".into(), Json::U64(r.c_serial.as_picos())),
        ("cpu_flops".into(), Json::U64(r.cpu_flops)),
        ("gpu_flops".into(), Json::U64(r.gpu_flops)),
        ("remote_hits".into(), Json::U64(r.remote_hits)),
        ("bw_limited".into(), Json::Bool(r.bw_limited)),
        ("gpu_utilization".into(), Json::F64(r.gpu_utilization())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_resource_paths_split_and_keys_validate() {
        assert_eq!(split_resource("abc123"), ("abc123", None));
        assert_eq!(split_resource("abc123/trace"), ("abc123", Some("trace")));
        assert_eq!(split_resource("a/b/trace"), ("a", Some("b/trace")));
        assert_eq!(split_resource(""), ("", None));

        let hex = "0123456789abcdef0123456789abcdef";
        assert!(valid_run_key(hex));
        assert!(valid_run_key(&hex.to_ascii_uppercase()));
        assert!(!valid_run_key(""));
        assert!(!valid_run_key("abc123"), "too short");
        assert!(!valid_run_key(&"g".repeat(32)), "non-hex");
        assert!(!valid_run_key(&format!("{hex}0")), "too long");
    }

    #[test]
    fn sweep_entry_generator_expands_the_cross_product() {
        let body = Json::Obj(vec![
            (
                "benchmarks".into(),
                Json::Arr(vec![Json::str("rodinia/kmeans"), Json::str("rodinia/srad")]),
            ),
            (
                "systems".into(),
                Json::Arr(vec![Json::str("discrete"), Json::str("heterogeneous")]),
            ),
            ("scale".into(), Json::F64(0.08)),
        ]);
        let entries = sweep_entries(&body).unwrap();
        assert_eq!(entries.len(), 4, "2 benchmarks x 2 systems");
        for e in &entries {
            assert!(e.get("benchmark").and_then(Json::as_str).is_some());
            assert!(e.get("system").and_then(Json::as_str).is_some());
            assert_eq!(e.get("scale").and_then(Json::as_f64), Some(0.08));
        }
        // Every generated entry parses into a runnable job spec.
        assert!(entries.iter().all(|e| parse_job_spec(e).is_ok()));

        // An explicit jobs array passes through untouched.
        let explicit = Json::Obj(vec![(
            "jobs".into(),
            Json::Arr(vec![Json::Obj(vec![(
                "benchmark".into(),
                Json::str("rodinia/kmeans"),
            )])]),
        )]);
        assert_eq!(sweep_entries(&explicit).unwrap().len(), 1);

        // Neither jobs nor a benchmark set: a 400-shaped error.
        let err = sweep_entries(&Json::Obj(Vec::new())).unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn job_spec_parse_errors_carry_envelope_codes() {
        let spec = |fields: Vec<(String, Json)>| parse_job_spec(&Json::Obj(fields));
        let err = spec(vec![]).unwrap_err();
        assert_eq!((err.status, err.code), (400, "bad_request"));
        let err = spec(vec![("benchmark".into(), Json::str("rodinia/nonesuch"))]).unwrap_err();
        assert_eq!((err.status, err.code), (404, "not_found"));
        let err = spec(vec![
            ("benchmark".into(), Json::str("rodinia/kmeans")),
            (
                "organization".into(),
                Json::Obj(vec![("chunked_parallel".into(), Json::U64(8))]),
            ),
        ])
        .unwrap_err();
        assert_eq!((err.status, err.code), (400, "bad_request"));
        assert!(spec(vec![("benchmark".into(), Json::str("rodinia/kmeans"))]).is_ok());
    }

    #[test]
    fn metrics_format_negotiation() {
        let req = |query: &str, accept: Option<&str>| Request {
            method: "GET".into(),
            path: "/metrics".into(),
            query: query.into(),
            headers: accept
                .map(|a| vec![("accept".to_string(), a.to_string())])
                .unwrap_or_default(),
            body: Vec::new(),
            http10: false,
            request_id: String::new(),
        };
        assert!(wants_prometheus(&req("format=prometheus", None)));
        assert!(!wants_prometheus(&req("", None)), "JSON by default");
        assert!(wants_prometheus(&req("", Some("text/plain"))));
        assert!(wants_prometheus(&req(
            "",
            Some("application/openmetrics-text; version=1.0.0")
        )));
        assert!(
            !wants_prometheus(&req("format=json", Some("text/plain"))),
            "explicit query parameter beats the Accept header"
        );
        assert!(!wants_prometheus(&req("", Some("application/json"))));
    }

    #[test]
    fn organization_parsing() {
        assert_eq!(parse_organization(None), Ok(Organization::Serial));
        assert_eq!(
            parse_organization(Some(&Json::str("serial"))),
            Ok(Organization::Serial)
        );
        let streams = Json::Obj(vec![("async_streams".into(), Json::U64(3))]);
        assert_eq!(
            parse_organization(Some(&streams)),
            Ok(Organization::AsyncStreams { streams: 3 })
        );
        let chunks = Json::Obj(vec![("chunked_parallel".into(), Json::U64(8))]);
        assert_eq!(
            parse_organization(Some(&chunks)),
            Ok(Organization::ChunkedParallel { chunks: 8 })
        );
        assert!(parse_organization(Some(&Json::str("bogus"))).is_err());
        let zero = Json::Obj(vec![("async_streams".into(), Json::U64(0))]);
        assert!(parse_organization(Some(&zero)).is_err());
    }

    #[test]
    fn scale_parsing_defaults_to_paper() {
        assert_eq!(parse_scale(&Json::Obj(Vec::new())).unwrap(), Scale::PAPER);
        let custom = Json::Obj(vec![("scale".into(), Json::F64(0.08))]);
        assert_eq!(parse_scale(&custom).unwrap(), Scale::new(0.08));
        let bad = Json::Obj(vec![("scale".into(), Json::F64(-1.0))]);
        assert!(parse_scale(&bad).is_err());
    }

    #[test]
    fn report_json_round_trips_and_is_deterministic() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let report = heteropipe::run::run(&p, &cfg, Organization::Serial, false);
        let a = report_json(&report).dump();
        let b = report_json(&report).dump();
        assert_eq!(a, b);
        let parsed = Json::parse(&a).expect("server JSON must parse");
        assert_eq!(
            parsed.get("benchmark").and_then(Json::as_str),
            Some("rodinia/kmeans")
        );
        assert_eq!(
            parsed.get("roi_ps").and_then(Json::as_u64),
            Some(report.roi.as_picos())
        );
        let classes = parsed.get("classes").unwrap();
        assert!(classes.get("required").and_then(Json::as_u64).is_some());
    }
}
