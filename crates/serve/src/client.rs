//! A small blocking HTTP/1.1 client, enough to exercise the server: used
//! by the integration tests, the CI smoke check, the load generator, and
//! the cluster coordinator's worker calls. A [`Client`] keeps one
//! connection alive across requests and reconnects transparently when the
//! server closes it; a [`ClientPool`] keeps a bounded set of idle
//! kept-alive connections *per host*, so concurrent request paths check
//! out warm connections instead of re-dialing.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;
use std::time::Duration;

use crate::json::Json;

/// Response as seen by the client.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Decoded body (Content-Length or chunked).
    pub body: Vec<u8>,
}

/// The server's JSON error envelope, as parsed from a non-2xx body (see
/// `docs/api.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Stable machine-readable error code (`not_found`, `quarantined`...).
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// Back-off hint in seconds, when the server sent one.
    pub retry_after_s: Option<u64>,
    /// The correlation id the failure is logged under server-side.
    pub request_id: String,
}

impl ClientResponse {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    pub fn json(&self) -> Option<Json> {
        Json::parse(std::str::from_utf8(&self.body).ok()?)
    }

    /// Parses the body as the server's error envelope. `None` when the
    /// body is not envelope-shaped (e.g. a 2xx payload).
    pub fn api_error(&self) -> Option<ApiError> {
        let v = self.json()?;
        let err = v.get("error")?;
        Some(ApiError {
            code: err.get("code").and_then(Json::as_str)?.to_owned(),
            message: err.get("message").and_then(Json::as_str)?.to_owned(),
            retry_after_s: err.get("retry_after_s").and_then(Json::as_u64),
            request_id: v
                .get("request_id")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
        })
    }

    /// Parses the body as NDJSON: one JSON value per non-empty line, in
    /// stream order. `None` if any line fails to parse.
    pub fn ndjson(&self) -> Option<Vec<Json>> {
        let text = std::str::from_utf8(&self.body).ok()?;
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(Json::parse)
            .collect()
    }
}

/// A keep-alive HTTP/1.1 client for one server address.
pub struct Client {
    addr: String,
    timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for `addr` (`host:port`) with a 30 s I/O timeout.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
            conn: None,
        }
    }

    /// Overrides the per-operation I/O timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Sends a GET and reads the response.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None, &[])
    }

    /// Sends a GET with extra request headers (e.g. `Accept` or a caller's
    /// own `X-Request-Id`).
    pub fn get_with_headers(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None, headers)
    }

    /// Sends a POST with a JSON body and reads the response.
    pub fn post_json(&mut self, path: &str, body: &Json) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body.dump().into_bytes()), &[])
    }

    /// Sends a POST with a JSON body and extra request headers.
    pub fn post_json_with_headers(
        &mut self,
        path: &str,
        body: &Json,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body.dump().into_bytes()), headers)
    }

    /// Sends a POST with a raw body (still labelled `application/json`).
    pub fn post_raw(&mut self, path: &str, body: Vec<u8>) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body), &[])
    }

    /// Sends a POST with a raw body and extra request headers (the
    /// coordinator's proxy path: the already-serialized client body plus a
    /// propagated `X-Request-Id`).
    pub fn post_raw_with_headers(
        &mut self,
        path: &str,
        body: Vec<u8>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body), headers)
    }

    /// Whether a kept-alive connection is currently held (a pool only
    /// retains clients that still have one).
    pub fn has_connection(&self) -> bool {
        self.conn.is_some()
    }

    fn connect(&self) -> std::io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(BufReader::new(stream))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<Vec<u8>>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        // One retry: a kept-alive connection may have been closed by the
        // server between requests; a fresh connection gets a clean answer.
        let reused = self.conn.is_some();
        match self.try_request(method, path, body.as_deref(), extra_headers) {
            Ok(resp) => Ok(resp),
            Err(e) if reused => {
                self.conn = None;
                let _ = e;
                self.try_request(method, path, body.as_deref(), extra_headers)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        if self.conn.is_none() {
            self.conn = Some(self.connect()?);
        }
        let conn = self.conn.as_mut().unwrap();

        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            head.push_str("Content-Type: application/json\r\n");
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let stream = conn.get_mut();
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body)?;
        }
        stream.flush()?;

        let resp = read_response(conn)?;
        if resp
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        {
            self.conn = None;
        }
        Ok(resp)
    }
}

/// A bounded pool of idle kept-alive [`Client`]s, keyed by host address.
///
/// `checkout(addr)` hands back a warm connection when one is idle and a
/// fresh (unconnected) client otherwise; dropping the returned
/// [`PooledClient`] checks the client back in *only* when it still holds a
/// live kept-alive connection, so broken or server-closed connections are
/// discarded instead of being handed to the next caller. At most
/// `max_idle_per_host` clients are retained per address — surplus
/// check-ins simply drop their connection.
pub struct ClientPool {
    timeout: Duration,
    max_idle_per_host: usize,
    idle: Mutex<HashMap<String, Vec<Client>>>,
}

impl Default for ClientPool {
    fn default() -> ClientPool {
        ClientPool::new()
    }
}

impl ClientPool {
    /// An empty pool with a 30 s I/O timeout and 8 idle clients per host.
    pub fn new() -> ClientPool {
        ClientPool {
            timeout: Duration::from_secs(30),
            max_idle_per_host: 8,
            idle: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the I/O timeout applied to clients the pool creates.
    pub fn with_timeout(mut self, timeout: Duration) -> ClientPool {
        self.timeout = timeout;
        self
    }

    /// Overrides how many idle clients are retained per host.
    pub fn with_max_idle(mut self, max_idle_per_host: usize) -> ClientPool {
        self.max_idle_per_host = max_idle_per_host;
        self
    }

    /// Checks out a client for `addr`: a pooled warm one when available,
    /// a fresh one otherwise. The client returns to the pool on drop if
    /// its connection survived.
    pub fn checkout(&self, addr: &str) -> PooledClient<'_> {
        let client = self
            .idle
            .lock()
            .expect("client pool poisoned")
            .get_mut(addr)
            .and_then(Vec::pop)
            .unwrap_or_else(|| Client::new(addr).with_timeout(self.timeout));
        PooledClient {
            pool: self,
            client: Some(client),
        }
    }

    /// How many idle clients are currently pooled for `addr`.
    pub fn idle_count(&self, addr: &str) -> usize {
        self.idle
            .lock()
            .expect("client pool poisoned")
            .get(addr)
            .map_or(0, Vec::len)
    }

    fn checkin(&self, client: Client) {
        if !client.has_connection() {
            return;
        }
        let mut idle = self.idle.lock().expect("client pool poisoned");
        let slot = idle.entry(client.addr.clone()).or_default();
        if slot.len() < self.max_idle_per_host {
            slot.push(client);
        }
    }
}

/// A [`Client`] checked out of a [`ClientPool`]; derefs to the client and
/// checks it back in on drop (when the connection is still alive).
pub struct PooledClient<'a> {
    pool: &'a ClientPool,
    client: Option<Client>,
}

impl Deref for PooledClient<'_> {
    type Target = Client;
    fn deref(&self) -> &Client {
        self.client.as_ref().expect("client taken")
    }
}

impl DerefMut for PooledClient<'_> {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("client taken")
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            self.pool.checkin(client);
        }
    }
}

fn bad(why: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, why.to_string())
}

fn read_line(r: &mut impl BufRead) -> std::io::Result<String> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Reads one HTTP/1.1 response (status line, headers, body) from `r`.
pub fn read_response(r: &mut impl BufRead) -> std::io::Result<ClientResponse> {
    let status_line = read_line(r)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("not an HTTP/1.x response"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable status code"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("header missing colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let mut body = Vec::new();
    if find("transfer-encoding").is_some_and(|v| v.to_ascii_lowercase().contains("chunked")) {
        loop {
            let size_line = read_line(r)?;
            let size_hex = size_line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_hex, 16).map_err(|_| bad("bad chunk size"))?;
            if size == 0 {
                // Trailers (we send none, but stay correct) then final CRLF.
                while !read_line(r)?.is_empty() {}
                break;
            }
            let start = body.len();
            body.resize(start + size, 0);
            r.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            r.read_exact(&mut crlf)?;
        }
    } else if let Some(len) = find("content-length") {
        let len: usize = len.parse().map_err(|_| bad("bad content-length"))?;
        body.resize(len, 0);
        r.read_exact(&mut body)?;
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    /// A keep-alive HTTP server good for a few requests: reads one request
    /// head per loop and answers `200 ok` without closing the connection.
    fn tiny_server() -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let mut seen = Vec::new();
            loop {
                let n = match stream.read(&mut buf) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => n,
                };
                seen.extend_from_slice(&buf[..n]);
                while let Some(end) = seen.windows(4).position(|w| w == b"\r\n\r\n") {
                    seen.drain(..end + 4);
                    let resp = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
                    if stream.write_all(resp).is_err() {
                        return;
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn pool_reuses_kept_alive_connections() {
        let (addr, server) = tiny_server();
        let pool = ClientPool::new().with_timeout(Duration::from_secs(5));
        assert_eq!(pool.idle_count(&addr), 0);
        {
            let mut c = pool.checkout(&addr);
            assert!(!c.has_connection(), "fresh checkout starts unconnected");
            let resp = c.get("/healthz").unwrap();
            assert_eq!(resp.status, 200);
            assert!(c.has_connection());
        }
        assert_eq!(pool.idle_count(&addr), 1, "live connection checked in");
        {
            let mut c = pool.checkout(&addr);
            assert!(c.has_connection(), "warm connection reused");
            assert_eq!(c.get("/healthz").unwrap().status, 200);
        }
        assert_eq!(pool.idle_count(&addr), 1);
        drop(pool);
        server.join().unwrap();
    }

    #[test]
    fn pool_discards_connectionless_clients_and_caps_idle() {
        let pool = ClientPool::new().with_max_idle(1);
        // Never-connected clients are not retained.
        drop(pool.checkout("127.0.0.1:9"));
        assert_eq!(pool.idle_count("127.0.0.1:9"), 0);
        // The cap bounds how many live clients one host retains.
        let (addr, server) = tiny_server();
        let mut a = pool.checkout(&addr);
        assert_eq!(a.get("/healthz").unwrap().status, 200);
        let b = Client::new(&addr).with_timeout(Duration::from_secs(5));
        // Second connection to the same accept-once server would block; a
        // connected client is enough to exercise the cap, so hand the pool
        // one real connection and one fresh client.
        drop(a);
        assert_eq!(pool.idle_count(&addr), 1);
        assert!(!b.has_connection());
        pool.checkin(b);
        assert_eq!(pool.idle_count(&addr), 1, "connectionless client dropped");
        drop(pool);
        server.join().unwrap();
    }
}
