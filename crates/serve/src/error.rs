//! The one JSON error envelope every non-2xx response carries (see
//! `docs/api.md`):
//!
//! ```json
//! {"error":{"code":"not_found","message":"no such route"},"request_id":"req-..."}
//! ```
//!
//! `code` is a stable machine-readable slug, `message` is human-readable
//! prose, and `retry_after_s` appears only when the server wants the
//! client to back off (it is mirrored in the `Retry-After` header). The
//! `request_id` is the same correlation id echoed in `X-Request-Id`, so a
//! failure report alone is enough to find the server-side log lines.

use crate::http::Response;
use crate::json::Json;

/// Builds the standard error envelope for `status`.
///
/// When `retry_after_s` is set the `Retry-After` header is added too.
/// The `X-Request-Id` header is *not* added here: the connection loop
/// stamps it on every handler response, and pre-parse error paths (which
/// have no parsed request) add it themselves with a fresh id.
pub fn envelope(
    status: u16,
    code: &str,
    message: &str,
    retry_after_s: Option<u64>,
    request_id: &str,
) -> Response {
    let mut error = vec![
        ("code".into(), Json::str(code)),
        ("message".into(), Json::str(message)),
    ];
    if let Some(s) = retry_after_s {
        error.push(("retry_after_s".into(), Json::U64(s)));
    }
    let body = Json::Obj(vec![
        ("error".into(), Json::Obj(error)),
        ("request_id".into(), Json::str(request_id)),
    ]);
    let resp = Response::json(status, &body);
    match retry_after_s {
        Some(s) => resp.with_header("Retry-After", &s.to_string()),
        None => resp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_shape_is_stable() {
        let resp = envelope(404, "not_found", "no such route", None, "req-1");
        assert_eq!(resp.status, 404);
        assert_eq!(
            resp.body,
            br#"{"error":{"code":"not_found","message":"no such route"},"request_id":"req-1"}"#
        );
        assert!(!resp.headers.iter().any(|(n, _)| n == "Retry-After"));
    }

    #[test]
    fn retry_after_lands_in_body_and_header() {
        let resp = envelope(503, "quarantined", "job poisoned", Some(30), "req-2");
        let v = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").and_then(Json::as_str), Some("quarantined"));
        assert_eq!(err.get("retry_after_s").and_then(Json::as_u64), Some(30));
        assert_eq!(v.get("request_id").and_then(Json::as_str), Some("req-2"));
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| n == "Retry-After" && v == "30"));
    }
}
