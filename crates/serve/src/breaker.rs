//! A circuit breaker for the request path: load-shedding that fails fast
//! while the backend is unhealthy instead of queueing doomed work.
//!
//! Classic three-state machine (see `docs/robustness.md`):
//!
//! * **Closed** — requests flow; consecutive 5xx responses are counted and
//!   `failure_threshold` of them in a row trips the breaker.
//! * **Open** — requests are shed with `503` + `Retry-After` (observability
//!   routes — `/healthz*`, `/metrics` — are exempt at the server layer, so
//!   probes and scrapes keep working). After `cooldown`, the next admission
//!   moves to half-open.
//! * **Half-open** — up to `half_open_probes` trial requests are admitted;
//!   that many successes in a row close the breaker, any failure re-opens
//!   it for another cooldown.
//!
//! The breaker is shared across worker threads; all state sits behind one
//! mutex taken for a few comparisons per request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Circuit-breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive request failures (5xx) that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing again.
    pub cooldown: Duration,
    /// Trial requests admitted while half-open; that many consecutive
    /// successes close the breaker.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_secs(1),
            half_open_probes: 2,
        }
    }
}

#[derive(Debug)]
enum State {
    Closed {
        consecutive_failures: u32,
    },
    Open {
        until: Instant,
    },
    HalfOpen {
        probes_in_flight: u32,
        successes: u32,
    },
}

/// Whether the breaker admitted a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed to the handler.
    Allowed,
    /// Shed: answer `503` with `Retry-After` and do not run the handler.
    Shed,
}

/// The shared circuit breaker. One instance per server, consulted by every
/// worker for non-exempt routes.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
    /// Requests shed while open (or past the half-open probe budget).
    shed_total: AtomicU64,
    /// Times the breaker tripped from closed or half-open to open.
    opened_total: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
            shed_total: AtomicU64::new(0),
            opened_total: AtomicU64::new(0),
        }
    }

    /// The configuration this breaker runs under.
    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    /// Decides whether a request may proceed, advancing open → half-open
    /// once the cooldown has elapsed.
    pub fn admit(&self) -> Admission {
        let mut state = self.state.lock().unwrap();
        loop {
            match &mut *state {
                State::Closed { .. } => return Admission::Allowed,
                State::Open { until } => {
                    if Instant::now() < *until {
                        self.shed_total.fetch_add(1, Ordering::Relaxed);
                        return Admission::Shed;
                    }
                    *state = State::HalfOpen {
                        probes_in_flight: 0,
                        successes: 0,
                    };
                    // Re-evaluate as half-open to take a probe slot.
                }
                State::HalfOpen {
                    probes_in_flight, ..
                } => {
                    if *probes_in_flight < self.cfg.half_open_probes.max(1) {
                        *probes_in_flight += 1;
                        return Admission::Allowed;
                    }
                    self.shed_total.fetch_add(1, Ordering::Relaxed);
                    return Admission::Shed;
                }
            }
        }
    }

    /// Reports a successful (non-5xx) response for an admitted request.
    pub fn record_success(&self) {
        let mut state = self.state.lock().unwrap();
        match &mut *state {
            State::Closed {
                consecutive_failures,
            } => *consecutive_failures = 0,
            State::HalfOpen {
                probes_in_flight,
                successes,
            } => {
                *probes_in_flight = probes_in_flight.saturating_sub(1);
                *successes += 1;
                if *successes >= self.cfg.half_open_probes.max(1) {
                    *state = State::Closed {
                        consecutive_failures: 0,
                    };
                }
            }
            // A stale success while open changes nothing.
            State::Open { .. } => {}
        }
    }

    /// Reports a failed (5xx) response for an admitted request.
    pub fn record_failure(&self) {
        let mut state = self.state.lock().unwrap();
        let trip = match &mut *state {
            State::Closed {
                consecutive_failures,
            } => {
                *consecutive_failures += 1;
                *consecutive_failures >= self.cfg.failure_threshold.max(1)
            }
            State::HalfOpen { .. } => true,
            State::Open { .. } => false,
        };
        if trip {
            *state = State::Open {
                until: Instant::now() + self.cfg.cooldown,
            };
            self.opened_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the breaker is open *right now* (cooldown not yet elapsed).
    /// Readiness probes use this; it never mutates state.
    pub fn currently_open(&self) -> bool {
        match &*self.state.lock().unwrap() {
            State::Open { until } => Instant::now() < *until,
            _ => false,
        }
    }

    /// The state's label: `closed`, `open`, or `half_open`. An open
    /// breaker whose cooldown has elapsed reports `half_open`, matching
    /// what the next admission will see.
    pub fn state_name(&self) -> &'static str {
        match &*self.state.lock().unwrap() {
            State::Closed { .. } => "closed",
            State::Open { until } if Instant::now() < *until => "open",
            State::Open { .. } => "half_open",
            State::HalfOpen { .. } => "half_open",
        }
    }

    /// Requests shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Times the breaker tripped open so far.
    pub fn opened_total(&self) -> u64 {
        self.opened_total.load(Ordering::Relaxed)
    }

    /// The `Retry-After` value (whole seconds, minimum 1) shed responses
    /// should advertise: the cooldown rounded up.
    pub fn retry_after_secs(&self) -> u64 {
        self.cfg.cooldown.as_secs() + u64::from(self.cfg.cooldown.subsec_nanos() > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64, probes: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
            half_open_probes: probes,
        })
    }

    #[test]
    fn stays_closed_below_threshold_and_resets_on_success() {
        let b = breaker(3, 50, 1);
        b.record_failure();
        b.record_failure();
        b.record_success(); // streak broken
        b.record_failure();
        b.record_failure();
        assert_eq!(b.admit(), Admission::Allowed);
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.opened_total(), 0);
    }

    #[test]
    fn trips_open_sheds_then_recovers_through_half_open() {
        let b = breaker(2, 30, 2);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.opened_total(), 1);
        assert_eq!(b.admit(), Admission::Shed);
        assert!(b.currently_open());
        assert_eq!(b.shed_total(), 1);

        std::thread::sleep(Duration::from_millis(40));
        assert!(!b.currently_open(), "cooldown elapsed");
        // Two probe slots, then shedding resumes until they resolve.
        assert_eq!(b.admit(), Admission::Allowed);
        assert_eq!(b.admit(), Admission::Allowed);
        assert_eq!(b.admit(), Admission::Shed);
        b.record_success();
        assert_eq!(b.state_name(), "half_open");
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.admit(), Admission::Allowed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let b = breaker(1, 20, 1);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.admit(), Admission::Allowed, "probe admitted");
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.opened_total(), 2);
        assert_eq!(b.admit(), Admission::Shed);
    }

    #[test]
    fn retry_after_rounds_up() {
        assert_eq!(breaker(1, 1, 1).retry_after_secs(), 1);
        assert_eq!(breaker(1, 1000, 1).retry_after_secs(), 1);
        assert_eq!(breaker(1, 1500, 1).retry_after_secs(), 2);
    }

    #[test]
    fn concurrent_admissions_respect_probe_budget() {
        let b = std::sync::Arc::new(breaker(1, 1, 3));
        b.record_failure();
        std::thread::sleep(Duration::from_millis(5));
        let allowed: u32 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let b = std::sync::Arc::clone(&b);
                    s.spawn(move || u32::from(b.admit() == Admission::Allowed))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(allowed, 3, "exactly the probe budget admitted");
    }
}
