//! In-tree JSON: a value tree, a deterministic serializer, and a total
//! parser. No serde — the workspace is dependency-free, and the payloads
//! (run requests, reports, metrics) are small and fully known.
//!
//! Integers are kept exact: a [`RunReport`](heteropipe::RunReport) is
//! float-free, so serializing it never rounds through `f64`, and the same
//! report always serializes to the same bytes — the property behind the
//! server's byte-identical warm cache hits. Floats serialize through Rust's
//! shortest-round-trip `Display`, always with a decimal point or exponent so
//! they parse back as floats.
//!
//! Parsing is total: any malformation (bad escape, lone surrogate, leading
//! zero, trailing garbage, unterminated structure, excessive nesting)
//! returns `None`, never a panic.

/// A JSON value. Object keys keep insertion order, so serialization is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (exact).
    U64(u64),
    /// A negative integer (exact).
    I64(i64),
    /// A float (anything written with a fraction or exponent, or an
    /// integer too large for the exact variants).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean inside, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// An exact non-negative integer, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// A numeric value widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses JSON text; `None` on any syntax error. Alias for [`parse`].
    pub fn parse(text: &str) -> Option<Json> {
        parse(text)
    }

    /// Serializes to compact JSON text.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; the server never produces them, but the
        // serializer must stay total.
        out.push_str("null");
        return;
    }
    let s = v.to_string(); // shortest round-trip representation
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0"); // keep float-ness through a round trip
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text. Returns `None` on any malformation.
pub fn parse(text: &str) -> Option<Json> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return None; // trailing garbage
    }
    Some(v)
}

/// Deepest permitted nesting; beyond this the parser rejects rather than
/// risking a stack overflow on adversarial input like `[[[[…`.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Option<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn value(&mut self, depth: usize) -> Option<Json> {
        if depth > MAX_DEPTH {
            return None;
        }
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Some(Json::Str(self.string()?)),
            b'[' => self.array(depth),
            b'{' => self.object(depth),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn array(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']').is_some() {
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b']' => return Some(Json::Arr(items)),
                _ => return None,
            }
        }
    }

    fn object(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}').is_some() {
            return Some(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b'}' => return Some(Json::Obj(members)),
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain (non-escape, non-quote) bytes is
            // valid UTF-8 because the input is a &str.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
            }
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => out.push(self.escape()?),
                _ => return None, // raw control character
            }
        }
    }

    fn escape(&mut self) -> Option<char> {
        Some(match self.bump()? {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must pair with a low surrogate.
                    self.eat(b'\\')?;
                    self.eat(b'u')?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return None;
                    }
                    let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(scalar)?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return None; // lone low surrogate
                } else {
                    char::from_u32(hi)?
                }
            }
            _ => return None,
        })
    }

    fn hex4(&mut self) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump()? {
                b @ b'0'..=b'9' => (b - b'0') as u32,
                b @ b'a'..=b'f' => (b - b'a' + 10) as u32,
                b @ b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return None,
            };
            v = (v << 4) | d;
        }
        Some(v)
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        let negative = self.eat(b'-').is_some();
        // Integer part: "0" alone or a nonzero-led digit run (leading
        // zeros are invalid JSON).
        match self.bump()? {
            b'0' => {
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return None;
                }
            }
            b'1'..=b'9' => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return None,
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            self.digits1()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits1()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if integral {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Some(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Some(Json::U64(v));
            }
            // Integer beyond 64-bit range: fall through to f64.
        }
        let v = text.parse::<f64>().ok()?;
        if !v.is_finite() {
            return None; // overflowed to infinity
        }
        Some(Json::F64(v))
    }

    fn digits1(&mut self) -> Option<()> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe_sim::check::{self, Gen};

    fn roundtrip(v: &Json) {
        let text = v.dump();
        let back = parse(&text).unwrap_or_else(|| panic!("failed to parse {text:?}"));
        assert_eq!(&back, v, "round trip changed value for {text:?}");
    }

    #[test]
    fn scalars_round_trip() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::U64(0));
        roundtrip(&Json::U64(u64::MAX));
        roundtrip(&Json::I64(-1));
        roundtrip(&Json::I64(i64::MIN));
        roundtrip(&Json::F64(0.25));
        roundtrip(&Json::F64(-1.5e300));
        roundtrip(&Json::Str(String::new()));
        roundtrip(&Json::str("plain"));
    }

    #[test]
    fn floats_stay_floats() {
        assert_eq!(Json::F64(1.0).dump(), "1.0");
        assert_eq!(parse("1.0"), Some(Json::F64(1.0)));
        assert_eq!(parse("1"), Some(Json::U64(1)));
        assert_eq!(parse("1e2"), Some(Json::F64(100.0)));
        // Integers beyond u64 fall back to f64 rather than failing.
        assert!(matches!(
            parse("99999999999999999999999999"),
            Some(Json::F64(_))
        ));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote \" backslash \\ newline \n tab \t nul \u{0} emoji 🚀 greek λ";
        roundtrip(&Json::str(s));
        assert_eq!(
            parse(r#""surrogate pair \ud83d\ude80""#),
            Some(Json::str("surrogate pair 🚀"))
        );
        assert_eq!(parse(r#""\u00e9""#), Some(Json::str("é")));
    }

    #[test]
    fn object_helpers() {
        let v = parse(r#"{"a": 1, "b": [true, null], "c": {"d": -2.5}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-2.5)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{1: 2}",
            "tru",
            "nul",
            "+1",
            ".5",
            "1.",
            "1e",
            "1e+",
            "01",
            "-01",
            "--1",
            "0x10",
            "\"unterminated",
            "\"bad escape \\x\"",
            "\"lone high surrogate \\ud800\"",
            "\"lone low surrogate \\udc00\"",
            "\"pair with bad low \\ud800\\u0041\"",
            "\"short hex \\u12\"",
            "\"raw control \u{01}\"",
            "1 2",
            "[] []",
            "nan",
            "Infinity",
            "1e999",
        ] {
            assert_eq!(parse(bad), None, "should reject {bad:?}");
        }
        // Nesting past MAX_DEPTH is rejected, not a stack overflow.
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(parse(&deep), None);
        assert!(parse(&("[".repeat(8) + &"]".repeat(8))).is_some());
    }

    /// Seeded generator for arbitrary JSON values (the satellite's
    /// property-test generators): escape-heavy strings, unicode, nested
    /// arrays/objects, and number edge cases.
    fn gen_value(g: &mut Gen, depth: usize) -> Json {
        let top = if depth >= 3 { 6 } else { 8 };
        match g.u64(0, top) {
            0 => Json::Null,
            1 => Json::Bool(g.bool()),
            2 => Json::U64(match g.u64(0, 4) {
                0 => g.u64(0, 1 << 20),
                1 => u64::MAX,
                2 => u64::MAX - g.u64(0, 100),
                _ => g.u64(0, u64::MAX),
            }),
            3 => Json::I64(-(g.u64(1, 1 << 62) as i64)),
            4 => Json::F64(match g.u64(0, 4) {
                0 => g.f64(-1.0, 1.0),
                1 => g.f64(-1e300, 1e300),
                2 => g.f64(0.0, 1e-300),
                _ => g.f64(-1e9, 1e9),
            }),
            5 => Json::Str(gen_string(g)),
            6 => Json::Arr(g.vec(0, 5, |g| gen_value(g, depth + 1))),
            _ => Json::Obj(
                g.vec(0, 5, |g| (gen_string(g), gen_value(g, depth + 1)))
                    .into_iter()
                    .collect(),
            ),
        }
    }

    fn gen_string(g: &mut Gen) -> String {
        let n = g.usize(0, 12);
        let mut s = String::new();
        for _ in 0..n {
            match g.u64(0, 6) {
                0 => s.push(g.u64(0x20, 0x7F) as u8 as char),
                1 => s.push(['"', '\\', '\n', '\r', '\t', '/'][g.usize(0, 6)]),
                2 => s.push(char::from_u32(g.u32(0, 0x20)).unwrap()),
                3 => s.push('🚀'), // astral plane (surrogate pair in \u form)
                4 => s.push(char::from_u32(g.u32(0x80, 0xD800)).unwrap()),
                _ => s.push(char::from_u32(g.u32(0xE000, 0x11_0000)).unwrap_or('λ')),
            }
        }
        s
    }

    #[test]
    fn property_arbitrary_values_round_trip() {
        check::cases(256, 0x5E12E, |g| {
            roundtrip(&gen_value(g, 0));
        });
    }

    #[test]
    fn property_serialization_is_deterministic() {
        check::cases(64, 0xD137, |g| {
            let v = gen_value(g, 0);
            assert_eq!(v.dump(), v.dump());
            assert_eq!(v.dump(), parse(&v.dump()).unwrap().dump());
        });
    }
}
