//! Ctrl-c / SIGTERM notification without external crates.
//!
//! The workspace has no dependencies, so instead of the `libc` or
//! `signal-hook` crates this registers handlers through the C `signal`
//! function that std already links. The handler body only stores into a
//! static atomic — the one thing that is async-signal-safe — and the
//! server binary polls [`signaled`] from an ordinary thread to trigger
//! graceful shutdown.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::SIGNALED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal wiring off unix; shutdown still works via `ServerHandle`.
    pub fn install() {}
}

/// Registers SIGINT/SIGTERM handlers that set the shutdown flag. Safe to
/// call more than once.
pub fn install() {
    imp::install();
}

/// True once SIGINT or SIGTERM has been received (or [`trigger`] called).
pub fn signaled() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

/// Sets the flag programmatically — used by tests and by servers that want
/// to reuse the same polling loop for non-signal shutdown causes.
pub fn trigger() {
    SIGNALED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_sets_flag() {
        install();
        trigger();
        assert!(signaled());
    }
}
