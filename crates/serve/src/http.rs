//! Hand-rolled HTTP/1.1: request parsing and response writing over any
//! `BufRead`/`Write` pair.
//!
//! The server only needs the subset the API speaks: request lines with
//! origin-form targets, header fields, `Content-Length` and chunked request
//! bodies, keep-alive negotiation, and `Content-Length`, chunked, or
//! incrementally streamed ([`BodyStream`]) responses. Every limit (line
//! length, header count, body size) is
//! explicit, and any malformation surfaces as a typed [`ReadError`] the
//! connection loop maps to a 4xx response — parsing never panics.

use std::fmt;
use std::io::{self, BufRead, Write};
use std::sync::Arc;

/// Parsing limits, chosen for an API whose largest legitimate payload is a
/// small JSON document.
pub mod limits {
    /// Longest accepted request/status/header line, bytes.
    pub const MAX_LINE: usize = 8 * 1024;
    /// Most header fields per message.
    pub const MAX_HEADERS: usize = 64;
    /// Largest accepted request body, bytes.
    pub const MAX_BODY: usize = 1024 * 1024;
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// Header fields in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when none was sent).
    pub body: Vec<u8>,
    /// Whether the request was HTTP/1.0 (affects keep-alive default).
    pub http10: bool,
    /// Correlation id for this request. Empty after parsing; the
    /// connection loop fills it in (honoring a well-formed inbound
    /// `X-Request-Id`, otherwise generating one) before the handler runs,
    /// and echoes it back as the `X-Request-Id` response header.
    pub request_id: String,
}

impl Request {
    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange:
    /// HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with an explicit
    /// `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => !self.http10,
        }
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly before sending anything.
    Closed,
    /// The read timed out. `mid_request` distinguishes an idle keep-alive
    /// connection going quiet (close silently) from a stalled sender
    /// (answer 408).
    Timeout {
        /// Whether any bytes of a request had already arrived.
        mid_request: bool,
    },
    /// A line, header block, or body exceeded its limit (maps to 413/431).
    TooLarge,
    /// The bytes were not valid HTTP (maps to 400).
    Malformed(&'static str),
    /// Transport error.
    Io(io::Error),
}

impl ReadError {
    fn from_io(e: io::Error, mid_request: bool) -> ReadError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                ReadError::Timeout { mid_request }
            }
            io::ErrorKind::UnexpectedEof if !mid_request => ReadError::Closed,
            _ => ReadError::Io(e),
        }
    }
}

/// Reads one line up to CRLF (or bare LF), without the terminator.
fn read_line(r: &mut impl BufRead, started: &mut bool) -> Result<String, ReadError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() && !*started {
                    Err(ReadError::Closed)
                } else {
                    Err(ReadError::Malformed("connection closed mid-line"))
                };
            }
            Ok(_) => {
                *started = true;
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map_err(|_| ReadError::Malformed("non-UTF-8 header bytes"));
                }
                if buf.len() >= limits::MAX_LINE {
                    return Err(ReadError::TooLarge);
                }
                buf.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::from_io(e, *started)),
        }
    }
}

fn read_exact_limited(r: &mut impl BufRead, n: usize, out: &mut Vec<u8>) -> Result<(), ReadError> {
    if out.len() + n > limits::MAX_BODY {
        return Err(ReadError::TooLarge);
    }
    let start = out.len();
    out.resize(start + n, 0);
    r.read_exact(&mut out[start..])
        .map_err(|e| ReadError::from_io(e, true))
}

/// Reads and parses one request from `r`.
///
/// `Err(Closed)` means the peer hung up between requests (the normal end of
/// a keep-alive session); other errors map to 4xx responses or a silent
/// close, per [`ReadError`].
pub fn read_request(r: &mut impl BufRead) -> Result<Request, ReadError> {
    let mut started = false;
    let line = read_line(r, &mut started)?;
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(ReadError::Malformed("bad method"))?
        .to_owned();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(ReadError::Malformed("bad target"))?;
    let version = parts
        .next()
        .ok_or(ReadError::Malformed("missing version"))?;
    if parts.next().is_some() {
        return Err(ReadError::Malformed("extra request-line fields"));
    }
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        _ => return Err(ReadError::Malformed("unsupported HTTP version")),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut started)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits::MAX_HEADERS {
            return Err(ReadError::TooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ReadError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut req = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
        http10,
        request_id: String::new(),
    };

    let chunked = req
        .header("transfer-encoding")
        .map(|v| v.eq_ignore_ascii_case("chunked"))
        .unwrap_or(false);
    if chunked {
        req.body = read_chunked_body(r, &mut started)?;
    } else if let Some(cl) = req.header("content-length") {
        let n: usize = cl
            .parse()
            .map_err(|_| ReadError::Malformed("bad content-length"))?;
        if n > limits::MAX_BODY {
            return Err(ReadError::TooLarge);
        }
        let mut body = Vec::new();
        read_exact_limited(r, n, &mut body)?;
        req.body = body;
    }
    Ok(req)
}

fn read_chunked_body(r: &mut impl BufRead, started: &mut bool) -> Result<Vec<u8>, ReadError> {
    let mut body = Vec::new();
    loop {
        let size_line = read_line(r, started)?;
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| ReadError::Malformed("bad chunk size"))?;
        if size == 0 {
            // Trailer section: lines until the empty one.
            loop {
                if read_line(r, started)?.is_empty() {
                    return Ok(body);
                }
            }
        }
        read_exact_limited(r, size, &mut body)?;
        let crlf = read_line(r, started)?;
        if !crlf.is_empty() {
            return Err(ReadError::Malformed("chunk data not CRLF-terminated"));
        }
    }
}

/// Reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// The write side handed to a [`BodyStream`] closure: each [`send`]
/// frames its bytes as one HTTP chunk and flushes, so the peer sees the
/// record the moment it is produced (this is how `POST /v1/sweeps`
/// streams NDJSON records in completion order).
///
/// [`send`]: ChunkSink::send
pub struct ChunkSink<'a> {
    w: &'a mut (dyn Write + Send),
}

impl ChunkSink<'_> {
    /// Writes `data` as one chunk and flushes. Empty slices are skipped —
    /// a zero-length chunk would terminate the stream early.
    pub fn send(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        write!(self.w, "\r\n")?;
        self.w.flush()
    }
}

/// A streamed response body: a closure invoked with a [`ChunkSink`] after
/// the headers go out, producing chunks incrementally instead of
/// materializing the whole body. An `Err` tears the connection down —
/// with chunked framing the missing terminal chunk tells the peer the
/// stream was truncated.
#[derive(Clone)]
pub struct BodyStream(Arc<StreamFn>);

/// The producer closure type inside a [`BodyStream`].
type StreamFn = dyn Fn(&mut ChunkSink<'_>) -> io::Result<()> + Send + Sync;

impl BodyStream {
    /// Wraps a producer closure.
    pub fn new(f: impl Fn(&mut ChunkSink<'_>) -> io::Result<()> + Send + Sync + 'static) -> Self {
        BodyStream(Arc::new(f))
    }
}

impl fmt::Debug for BodyStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BodyStream(..)")
    }
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra header fields (`Content-Type` etc.; framing headers are added
    /// by [`write_to`](Self::write_to)).
    pub headers: Vec<(String, String)>,
    /// Response body (ignored when `stream` is set).
    pub body: Vec<u8>,
    /// Whether to send the body with chunked transfer-encoding instead of
    /// `Content-Length`.
    pub chunked: bool,
    /// A streaming body producer; when set the body is always chunked and
    /// `body` is ignored.
    pub stream: Option<BodyStream>,
}

/// Chunk size used when writing chunked bodies.
const CHUNK: usize = 8 * 1024;

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &crate::json::Json) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: value.dump().into_bytes(),
            chunked: false,
            stream: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
            chunked: false,
            stream: None,
        }
    }

    /// A response whose body is produced incrementally by `stream`, sent
    /// with chunked transfer-encoding as the producer emits.
    pub fn streaming(status: u16, content_type: &str, stream: BodyStream) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), content_type.into())],
            body: Vec::new(),
            chunked: true,
            stream: Some(stream),
        }
    }

    /// Adds a header field, builder-style.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Switches the body to chunked transfer-encoding, builder-style.
    pub fn into_chunked(mut self) -> Response {
        self.chunked = true;
        self
    }

    /// Writes the full response. `keep_alive` controls the `Connection`
    /// header (chunked bodies require HTTP/1.1, which every accepted
    /// request already negotiated or downgraded from).
    pub fn write_to(&self, w: &mut (impl Write + Send), keep_alive: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nServer: heteropipe-serve\r\n",
            self.status,
            reason(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(
            w,
            "Connection: {}\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        if let Some(stream) = &self.stream {
            write!(w, "Transfer-Encoding: chunked\r\n\r\n")?;
            let mut sink = ChunkSink { w };
            (stream.0)(&mut sink)?;
            write!(w, "0\r\n\r\n")?;
        } else if self.chunked {
            write!(w, "Transfer-Encoding: chunked\r\n\r\n")?;
            for chunk in self.body.chunks(CHUNK) {
                write!(w, "{:x}\r\n", chunk.len())?;
                w.write_all(chunk)?;
                write!(w, "\r\n")?;
            }
            write!(w, "0\r\n\r\n")?;
        } else {
            write!(w, "Content-Length: {}\r\n\r\n", self.body.len())?;
            w.write_all(&self.body)?;
        }
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let req =
            parse("GET /v1/benchmarks?all=1 HTTP/1.1\r\nHost: localhost\r\nX-Trace: 7\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/benchmarks");
        assert_eq!(req.query, "all=1");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("x-trace"), Some("7"));
        assert!(req.body.is_empty());
        assert!(req.wants_keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_content_length_body() {
        let req = parse("POST /v1/run HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world").unwrap();
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn parses_chunked_body() {
        let req = parse(
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
             5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn chunked_with_extension_and_trailer() {
        let req = parse(
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
             3;ext=1\r\nabc\r\n0\r\nTrailer: t\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"abc");
    }

    #[test]
    fn keep_alive_negotiation() {
        let close = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.wants_keep_alive());
        let old = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.wants_keep_alive(), "HTTP/1.0 defaults to close");
        let old_ka = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(old_ka.wants_keep_alive());
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET noslash HTTP/1.1\r\n\r\n",
            "GET / HTTP/2.0\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(ReadError::Malformed(_))),
                "should be malformed: {raw:?}"
            );
        }
    }

    #[test]
    fn reports_clean_close_and_truncation() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
        assert!(matches!(parse("GET / HT"), Err(ReadError::Malformed(_))));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(ReadError::Io(_) | ReadError::Malformed(_))
        ));
    }

    #[test]
    fn enforces_limits() {
        let long_line = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "a".repeat(limits::MAX_LINE + 10)
        );
        assert!(matches!(parse(&long_line), Err(ReadError::TooLarge)));
        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            limits::MAX_BODY + 1
        );
        assert!(matches!(parse(&big_body), Err(ReadError::TooLarge)));
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "X-H: v\r\n".repeat(limits::MAX_HEADERS + 1)
        );
        assert!(matches!(parse(&many_headers), Err(ReadError::TooLarge)));
    }

    #[test]
    fn writes_content_length_response() {
        let resp = Response::text(200, "hi");
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn writes_chunked_response() {
        let body = "x".repeat(CHUNK + 100);
        let resp = Response::text(200, body.clone()).into_chunked();
        let mut out = Vec::new();
        resp.write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.contains(&format!("{CHUNK:x}\r\n")));
        assert!(text.ends_with("0\r\n\r\n"));
        // Both chunks carry the full body between them.
        assert!(text.matches("xxx").count() > 0);
    }

    #[test]
    fn streaming_response_frames_each_send_as_a_chunk() {
        let stream = BodyStream::new(|sink| {
            sink.send(b"first\n")?;
            sink.send(b"")?; // must not terminate the stream
            sink.send(b"second\n")
        });
        let resp = Response::streaming(200, "application/x-ndjson", stream);
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("Content-Type: application/x-ndjson\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.contains("6\r\nfirst\n\r\n"), "{text}");
        assert!(text.contains("7\r\nsecond\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
