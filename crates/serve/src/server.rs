//! The connection engine: a bounded worker pool behind an accept queue,
//! per-request timeouts, connection limits with 503 backpressure, server
//! counters, and graceful shutdown.
//!
//! Life of a connection: the accept thread admits it if the in-flight
//! count (queued + being served) is under `max_inflight` — otherwise it
//! answers `503 Service Unavailable` (with `Retry-After`) immediately and
//! closes — then queues it for a worker. Workers serve requests over
//! keep-alive until the peer closes, a timeout fires, or shutdown begins.
//! Shutdown sets a flag, wakes the (blocking) accept call with a loopback
//! connection, and lets workers drain every admitted connection's current
//! request before exiting, so no accepted request loses its response.
//!
//! Resilience (see `docs/robustness.md`): a shared [`CircuitBreaker`]
//! sheds non-observability requests while the backend is unhealthy
//! (`/healthz*` and `/metrics` stay served so probes and scrapes keep
//! working through an outage), and deterministic fault seams
//! ([`ServerConfig::faults`]) cover the accept, read, and write paths for
//! chaos testing.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use heteropipe_faults::{FaultKind, Injector, Site};
use heteropipe_obs::log as obs_log;
use heteropipe_obs::{new_request_id, valid_request_id};
use heteropipe_sim::Histogram;

use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::error::envelope;
use crate::http::{read_request, ReadError, Request, Response};

/// Routes exempt from circuit-breaker shedding: liveness/readiness probes
/// and metric scrapes must keep answering while the breaker is open.
pub fn breaker_exempt(path: &str) -> bool {
    path == "/metrics" || path == "/healthz" || path.starts_with("/healthz/")
}

/// Something that turns requests into responses. Handlers run on worker
/// threads concurrently; panics are caught and answered with a 500.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for one request.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads serving requests.
    pub threads: usize,
    /// Most connections admitted at once (queued + in service); beyond
    /// this, new connections get an immediate 503.
    pub max_inflight: usize,
    /// Per-connection read timeout (request parsing and keep-alive idle).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Circuit-breaker tuning for the request path.
    pub breaker: BreakerConfig,
    /// Fault injector threaded through the accept/read/write seams (the
    /// disabled injector — one branch per seam — unless a chaos run
    /// configures a plan).
    pub faults: Arc<Injector>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            max_inflight: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            breaker: BreakerConfig::default(),
            faults: Arc::new(Injector::disabled()),
        }
    }
}

/// Request counters and latency recordings, shared between the connection
/// engine and the `/metrics` handler.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests fully parsed and dispatched to the handler.
    pub requests: AtomicU64,
    /// Requests currently inside the handler.
    pub in_flight: AtomicU64,
    /// Connections refused with a 503 by the admission check.
    pub rejected: AtomicU64,
    /// Requests shed with a 503 by the circuit breaker.
    pub shed: AtomicU64,
    /// Responses sent with a 2xx status.
    pub status_2xx: AtomicU64,
    /// Responses sent with a 4xx status.
    pub status_4xx: AtomicU64,
    /// Responses sent with a 5xx status.
    pub status_5xx: AtomicU64,
    /// Whether graceful shutdown has begun (readiness turns unready).
    pub shutting_down: AtomicBool,
    /// Handler latency in microseconds.
    pub latency_us: Mutex<Histogram>,
}

impl ServerStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, status: u16, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.latency_us
            .lock()
            .unwrap()
            .record(elapsed.as_micros() as u64);
    }
}

struct Shared {
    cfg: ServerConfig,
    handler: Arc<dyn Handler>,
    stats: Arc<ServerStats>,
    breaker: Arc<CircuitBreaker>,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    admitted: AtomicUsize,
}

/// A bound-but-not-yet-running server. [`Server::start`] spawns the accept
/// loop and workers and returns the [`ServerHandle`] that controls them.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `cfg.addr` and prepares the server around `handler`.
    pub fn bind(cfg: ServerConfig, handler: Arc<dyn Handler>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let breaker = Arc::new(CircuitBreaker::new(cfg.breaker));
        let shared = Arc::new(Shared {
            cfg,
            handler,
            stats: Arc::new(ServerStats::new()),
            breaker,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            admitted: AtomicUsize::new(0),
        });
        Ok(Server {
            listener,
            addr,
            shared,
        })
    }

    /// The actually-bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// This server's counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.shared.stats)
    }

    /// This server's circuit breaker (for readiness probes and metrics).
    pub fn breaker(&self) -> Arc<CircuitBreaker> {
        Arc::clone(&self.shared.breaker)
    }

    /// Spawns the accept thread and `threads` workers.
    pub fn start(self) -> ServerHandle {
        let addr = self.addr;
        let mut threads = Vec::new();
        let workers = self.shared.cfg.threads.max(1);
        for i in 0..workers {
            let shared = Arc::clone(&self.shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker"),
            );
        }
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept loop"),
        );
        ServerHandle {
            addr,
            shared: self.shared,
            threads: Mutex::new(threads),
        }
    }
}

/// Controls a running server: inspect, shut down, join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.shared.stats)
    }

    /// The server's circuit breaker.
    pub fn breaker(&self) -> Arc<CircuitBreaker> {
        Arc::clone(&self.shared.breaker)
    }

    /// Begins graceful shutdown: stops admitting connections, wakes the
    /// accept call, and lets workers drain admitted requests. Idempotent;
    /// returns immediately — pair with [`join`](Self::join).
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared
            .stats
            .shutting_down
            .store(true, Ordering::SeqCst);
        // Wake the blocking accept() so the accept loop observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        self.shared.available.notify_all();
    }

    /// Waits for the accept loop and every worker to exit (all admitted
    /// requests answered). Call after [`shutdown`](Self::shutdown).
    pub fn join(&self) {
        let threads: Vec<_> = self.threads.lock().unwrap().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }

    /// Convenience: shutdown then join.
    pub fn shutdown_and_join(&self) {
        self.shutdown();
        self.join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // likely the shutdown wakeup connection; drop it
        }
        // Chaos seam: an injected accept fault abandons the connection as
        // a crashed accept thread would — this is the one deliberate
        // connection drop, for testing client-side retry.
        if shared.cfg.faults.roll(Site::ServeAccept).is_some() {
            drop(stream);
            continue;
        }
        // Admission control: reject with 503 + Retry-After rather than
        // queueing unboundedly or silently dropping the connection.
        let admitted = shared.admitted.load(Ordering::SeqCst);
        if admitted >= shared.cfg.max_inflight {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
            let mut stream = stream;
            if pre_parse_error(503, "capacity", "server at capacity", Some(1))
                .write_to(&mut stream, false)
                .is_ok()
            {
                lingering_close(stream);
            }
            continue;
        }
        shared.admitted.fetch_add(1, Ordering::SeqCst);
        shared.queue.lock().unwrap().push_back(stream);
        shared.available.notify_one();
    }
    // No more admissions; wake every worker so idle ones can exit.
    shared.available.notify_all();
}

/// The error envelope for a response sent before (or instead of) parsing
/// a request: no inbound correlation id exists yet, so a fresh one is
/// generated and stamped on both the body and the `X-Request-Id` header
/// (the connection loop only stamps handler responses).
fn pre_parse_error(status: u16, code: &str, message: &str, retry_after_s: Option<u64>) -> Response {
    let request_id = new_request_id();
    envelope(status, code, message, retry_after_s, &request_id)
        .with_header("X-Request-Id", &request_id)
}

/// Closes a connection the server answered *without reading the request*.
/// Dropping a socket that still has unread bytes in its receive buffer
/// makes the kernel send RST, which can destroy the in-flight response
/// before the peer reads it. Instead: stop sending, then drain whatever
/// the peer wrote until EOF or a short timeout, so the 503 survives the
/// close. The timeout bounds how long a slow peer can pin the accept
/// thread during a rejection storm.
fn lingering_close(stream: TcpStream) {
    use std::io::Read;
    use std::net::Shutdown;
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut stream = stream;
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // queue drained and no more admissions
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        serve_connection(stream, shared);
        shared.admitted.fetch_sub(1, Ordering::SeqCst);
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Chaos seam: a read fault stalls (hang) or tears (anything else)
        // the connection before the request is parsed.
        if let Some(fault) = shared.cfg.faults.roll(Site::ServeRead) {
            match fault.kind {
                FaultKind::Hang => {
                    std::thread::sleep(Duration::from_millis(fault.hang_ms));
                }
                _ => return,
            }
        }
        let mut req = match read_request(&mut reader) {
            Ok(req) => req,
            Err(ReadError::Closed) | Err(ReadError::Timeout { mid_request: false }) => return,
            Err(ReadError::Timeout { mid_request: true }) => {
                let _ = pre_parse_error(408, "timeout", "request timed out", None)
                    .write_to(&mut writer, false);
                return;
            }
            Err(ReadError::TooLarge) => {
                let _ = pre_parse_error(413, "payload_too_large", "request too large", None)
                    .write_to(&mut writer, false);
                return;
            }
            Err(ReadError::Malformed(why)) => {
                let _ = pre_parse_error(400, "bad_request", why, None).write_to(&mut writer, false);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };

        // Correlation id: honor a well-formed client-supplied one so
        // multi-hop callers can stitch their traces together; anything
        // else (absent, oversized, bad characters) gets a fresh id.
        req.request_id = match req.header("x-request-id") {
            Some(v) if valid_request_id(v) => v.to_owned(),
            _ => new_request_id(),
        };

        // Circuit breaker: shed doomed work while the backend is unhealthy.
        // Observability routes are exempt so probes and scrapes keep
        // answering through an outage; the breaker only counts outcomes of
        // requests it admitted.
        let guarded = !breaker_exempt(&req.path);
        let shed = guarded && shared.breaker.admit() == Admission::Shed;

        shared.stats.in_flight.fetch_add(1, Ordering::SeqCst);
        let start = Instant::now();
        let resp = if shed {
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            envelope(
                503,
                "breaker_open",
                "circuit breaker open",
                Some(shared.breaker.retry_after_secs()),
                &req.request_id,
            )
        } else {
            let handler = Arc::clone(&shared.handler);
            catch_unwind(AssertUnwindSafe(|| handler.handle(&req))).unwrap_or_else(|_| {
                envelope(500, "internal", "handler panicked", None, &req.request_id)
            })
        };
        let resp = resp.with_header("X-Request-Id", &req.request_id);
        if guarded && !shed {
            if resp.status >= 500 {
                shared.breaker.record_failure();
            } else {
                shared.breaker.record_success();
            }
        }
        shared.stats.in_flight.fetch_sub(1, Ordering::SeqCst);
        let elapsed = start.elapsed();
        shared.stats.record(resp.status, elapsed);
        let mut fields = vec![
            ("request_id", req.request_id.as_str().into()),
            ("method", req.method.as_str().into()),
            ("path", req.path.as_str().into()),
            ("status", u64::from(resp.status).into()),
            ("latency_us", (elapsed.as_micros() as u64).into()),
        ];
        // Distributed-trace context from a coordinator upstream: logged
        // verbatim so a worker log line correlates with its span on the
        // stitched cluster timeline (docs/observability.md).
        if let Some(tc) = req.header("x-trace-context") {
            fields.push(("trace_context", tc.into()));
        }
        obs_log::info("serve", "request", &fields);

        // Chaos seam: a write fault stalls (hang) or tears (anything else)
        // the connection before the response goes out.
        if let Some(fault) = shared.cfg.faults.roll(Site::ServeWrite) {
            match fault.kind {
                FaultKind::Hang => {
                    std::thread::sleep(Duration::from_millis(fault.hang_ms));
                }
                _ => return,
            }
        }
        // Stop keeping alive once shutdown begins so workers can drain.
        let keep_alive = req.wants_keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
        if resp.write_to(&mut writer, keep_alive).is_err() {
            return;
        }
        let _ = writer.flush();
        if !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::json::Json;

    fn echo_server(threads: usize, max_inflight: usize, delay: Duration) -> ServerHandle {
        let handler = move |req: &Request| {
            if delay > Duration::ZERO {
                std::thread::sleep(delay);
            }
            Response::json(
                200,
                &Json::Obj(vec![
                    ("path".into(), Json::str(req.path.clone())),
                    ("bytes".into(), Json::U64(req.body.len() as u64)),
                ]),
            )
        };
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads,
            max_inflight,
            ..ServerConfig::default()
        };
        Server::bind(cfg, Arc::new(handler)).unwrap().start()
    }

    #[test]
    fn serves_keep_alive_requests_on_one_connection() {
        let handle = echo_server(2, 8, Duration::ZERO);
        let mut client = Client::new(handle.addr().to_string());
        for i in 0..3 {
            let resp = client.get(&format!("/ping/{i}")).unwrap();
            assert_eq!(resp.status, 200);
            let v = resp.json().unwrap();
            assert_eq!(
                v.get("path").and_then(Json::as_str),
                Some(&*format!("/ping/{i}"))
            );
        }
        assert_eq!(
            handle.stats().requests.load(Ordering::Relaxed),
            3,
            "three requests over one keep-alive connection"
        );
        handle.shutdown_and_join();
    }

    #[test]
    fn concurrent_connections_all_answered() {
        let handle = echo_server(4, 64, Duration::from_millis(5));
        let addr = handle.addr().to_string();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::new(addr);
                    let resp = client
                        .post_json("/echo", &Json::Obj(vec![("i".into(), Json::U64(i))]))
                        .unwrap();
                    assert_eq!(resp.status, 200);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(handle.stats().requests.load(Ordering::Relaxed), 8);
        handle.shutdown_and_join();
    }

    #[test]
    fn overload_gets_503_backpressure() {
        // One worker, one admission slot, slow handler: extra concurrent
        // connections must be rejected while the first is in service.
        let handle = echo_server(1, 1, Duration::from_millis(300));
        let addr = handle.addr().to_string();
        let first = {
            let addr = addr.clone();
            std::thread::spawn(move || Client::new(addr).get("/slow").unwrap().status)
        };
        std::thread::sleep(Duration::from_millis(80)); // let it be admitted
        let mut rejected = 0;
        for _ in 0..3 {
            let status = Client::new(addr.clone()).get("/fast").unwrap().status;
            if status == 503 {
                rejected += 1;
            }
        }
        assert_eq!(first.join().unwrap(), 200, "admitted request still served");
        assert!(rejected > 0, "at least one connection rejected with 503");
        assert!(handle.stats().rejected.load(Ordering::Relaxed) > 0);
        handle.shutdown_and_join();
    }

    #[test]
    fn graceful_shutdown_drains_in_flight() {
        let handle = echo_server(2, 8, Duration::from_millis(200));
        let addr = handle.addr().to_string();
        let inflight = std::thread::spawn(move || Client::new(addr).get("/drain").unwrap());
        std::thread::sleep(Duration::from_millis(60)); // request is in the handler
        handle.shutdown_and_join();
        let resp = inflight.join().unwrap();
        assert_eq!(resp.status, 200, "in-flight request answered, not dropped");
        // The listener is gone: new connections fail or are never served.
        assert!(TcpStream::connect_timeout(&handle.addr(), Duration::from_millis(200)).is_err());
    }

    #[test]
    fn malformed_request_gets_400() {
        let handle = echo_server(1, 4, Duration::ZERO);
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        use std::io::Read;
        stream.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
        handle.shutdown_and_join();
    }

    #[test]
    fn handler_panic_becomes_500() {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            ..ServerConfig::default()
        };
        let handler = |req: &Request| -> Response {
            if req.path == "/boom" {
                panic!("kaboom");
            }
            Response::text(200, "ok")
        };
        let handle = Server::bind(cfg, Arc::new(handler)).unwrap().start();
        let mut client = Client::new(handle.addr().to_string());
        assert_eq!(client.get("/boom").unwrap().status, 500);
        // The worker survives the panic and keeps serving.
        assert_eq!(client.get("/fine").unwrap().status, 200);
        assert_eq!(handle.stats().status_5xx.load(Ordering::Relaxed), 1);
        handle.shutdown_and_join();
    }

    #[test]
    fn capacity_503_carries_retry_after() {
        let handle = echo_server(1, 1, Duration::from_millis(300));
        let addr = handle.addr().to_string();
        let first = {
            let addr = addr.clone();
            std::thread::spawn(move || Client::new(addr).get("/slow").unwrap().status)
        };
        std::thread::sleep(Duration::from_millis(80));
        let mut saw_header = false;
        for _ in 0..3 {
            let resp = Client::new(addr.clone()).get("/fast").unwrap();
            if resp.status == 503 {
                assert_eq!(resp.header("retry-after"), Some("1"));
                saw_header = true;
            }
        }
        assert_eq!(first.join().unwrap(), 200);
        assert!(saw_header, "at least one 503 observed with Retry-After");
        handle.shutdown_and_join();
    }

    #[test]
    fn breaker_sheds_after_failures_and_recovers() {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(150),
                half_open_probes: 1,
            },
            ..ServerConfig::default()
        };
        let handler = |req: &Request| -> Response {
            if req.path == "/fail" {
                return envelope(500, "internal", "backend broken", None, &req.request_id);
            }
            Response::text(200, "ok")
        };
        let server = Server::bind(cfg, Arc::new(handler)).unwrap();
        let breaker = server.breaker();
        let handle = server.start();
        let mut client = Client::new(handle.addr().to_string());

        assert_eq!(client.get("/fail").unwrap().status, 500);
        assert_eq!(client.get("/fail").unwrap().status, 500);
        // Tripped: work is shed without reaching the handler...
        let resp = client.get("/ok").unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        // ...but observability routes stay exempt (this handler answers
        // 200 for any non-/fail path, standing in for the real probes).
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        assert_eq!(client.get("/healthz/ready").unwrap().status, 200);
        assert_eq!(client.get("/metrics").unwrap().status, 200);
        assert!(breaker.currently_open());
        assert_eq!(breaker.opened_total(), 1);
        assert!(handle.stats().shed.load(Ordering::Relaxed) >= 1);

        // After the cooldown one probe succeeds and the breaker closes.
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(client.get("/ok").unwrap().status, 200);
        assert_eq!(client.get("/ok").unwrap().status, 200);
        assert_eq!(breaker.state_name(), "closed");
        handle.shutdown_and_join();
    }

    #[test]
    fn injected_read_fault_tears_one_connection_only() {
        use heteropipe_faults::{FaultPlan, Injector};
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            faults: Arc::new(Injector::new(
                FaultPlan::parse("serve.read:err=drop:max=1").unwrap(),
            )),
            ..ServerConfig::default()
        };
        let handler = |_req: &Request| Response::text(200, "ok");
        let handle = Server::bind(cfg, Arc::new(handler)).unwrap().start();

        // The first connection is torn down by the injected fault before a
        // response is written; a retry on a fresh connection succeeds.
        let first = Client::new(handle.addr().to_string())
            .with_timeout(Duration::from_secs(2))
            .get("/x");
        assert!(first.is_err(), "dropped connection surfaces as an error");
        let second = Client::new(handle.addr().to_string()).get("/x").unwrap();
        assert_eq!(second.status, 200, "fault budget spent, service healthy");
        handle.shutdown_and_join();
    }

    #[test]
    fn shutdown_flips_the_readiness_flag() {
        let handle = echo_server(1, 4, Duration::ZERO);
        assert!(!handle.stats().shutting_down.load(Ordering::SeqCst));
        handle.shutdown_and_join();
        assert!(handle.stats().shutting_down.load(Ordering::SeqCst));
    }

    #[test]
    fn chunked_response_round_trips_through_client() {
        let big = "heteropipe ".repeat(2000);
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            ..ServerConfig::default()
        };
        let body = big.clone();
        let handler = move |_req: &Request| Response::text(200, body.clone()).into_chunked();
        let handle = Server::bind(cfg, Arc::new(handler)).unwrap().start();
        let resp = Client::new(handle.addr().to_string()).get("/big").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, big.as_bytes());
        handle.shutdown_and_join();
    }
}
