//! End-to-end tests: a real server on an ephemeral port, driven through
//! the crate's own client, with the shared engine's cache observable
//! through `/metrics`.

use std::sync::Arc;

use heteropipe_engine::Engine;
use heteropipe_faults::{FaultPlan, Injector, RetryPolicy};
use heteropipe_serve::server::{Server, ServerConfig};
use heteropipe_serve::{api, Api, BreakerConfig, Client, Json, ServerHandle, TenantGate};

fn start(engine: Engine) -> ServerHandle {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        max_inflight: 32,
        ..ServerConfig::default()
    };
    api::serve(cfg, Arc::new(engine)).expect("bind ephemeral port")
}

/// An engine whose job executions panic per `plan`, retried under `retry`.
fn faulty_engine(plan: &str, retry: RetryPolicy) -> Engine {
    Engine::new()
        .memory_cache_only()
        .with_faults(Arc::new(Injector::new(FaultPlan::parse(plan).unwrap())))
        .with_retry(retry)
}

fn run_body(benchmark: &str) -> Json {
    Json::Obj(vec![
        ("benchmark".into(), Json::str(benchmark)),
        ("system".into(), Json::str("discrete")),
        ("organization".into(), Json::str("serial")),
        ("scale".into(), Json::F64(0.08)),
    ])
}

#[test]
fn healthz_and_unknown_routes() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    let resp = client.get("/healthz").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.json().unwrap().get("status").and_then(Json::as_str),
        Some("ok")
    );

    assert_eq!(client.get("/nope").unwrap().status, 404);
    // Wrong method on a known route: 405 with an Allow header.
    let resp = client.post_json("/healthz", &Json::Null).unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
    let resp = client.get("/v1/run").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));

    handle.shutdown_and_join();
}

#[test]
fn benchmark_catalog_counts_match_the_paper() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    let resp = client.get("/v1/benchmarks").unwrap();
    assert_eq!(resp.status, 200);
    let v = resp.json().unwrap();
    assert_eq!(v.get("total").and_then(Json::as_u64), Some(58));
    assert_eq!(v.get("examined").and_then(Json::as_u64), Some(46));
    let list = v.get("benchmarks").and_then(Json::as_array).unwrap();
    assert_eq!(list.len(), 58);
    let kmeans = list
        .iter()
        .find(|b| b.get("name").and_then(Json::as_str) == Some("rodinia/kmeans"))
        .expect("kmeans catalogued");
    assert_eq!(kmeans.get("examined").and_then(Json::as_bool), Some(true));
    assert_eq!(kmeans.get("runnable").and_then(Json::as_bool), Some(true));

    handle.shutdown_and_join();
}

#[test]
fn run_endpoint_validates_requests() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    let resp = client
        .post_json("/v1/run", &run_body("rodinia/nonesuch"))
        .unwrap();
    assert_eq!(resp.status, 404, "unknown benchmark");

    let resp = client.post_raw("/v1/run", b"{not json".to_vec()).unwrap();
    assert_eq!(resp.status, 400, "malformed body");

    // chunked_parallel on the discrete system is a config error the
    // server must catch, not a 500 from the simulator's panic.
    let mismatched = Json::Obj(vec![
        ("benchmark".into(), Json::str("rodinia/kmeans")),
        ("system".into(), Json::str("discrete")),
        (
            "organization".into(),
            Json::Obj(vec![("chunked_parallel".into(), Json::U64(8))]),
        ),
        ("scale".into(), Json::F64(0.08)),
    ]);
    let resp = client.post_json("/v1/run", &mismatched).unwrap();
    assert_eq!(resp.status, 400);

    let resp = client
        .post_json(
            "/v1/run",
            &Json::Obj(vec![
                ("benchmark".into(), Json::str("rodinia/kmeans")),
                ("scale".into(), Json::F64(-2.0)),
            ]),
        )
        .unwrap();
    assert_eq!(resp.status, 400, "negative scale");

    handle.shutdown_and_join();
}

#[test]
fn concurrent_runs_share_one_engine_and_warm_repeat_is_byte_identical() {
    let handle = start(Engine::new().memory_cache_only());
    let addr = handle.addr().to_string();

    // Eight clients race the same job through the shared engine.
    let bodies: Vec<Vec<u8>> = {
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let resp = Client::new(addr)
                        .post_json("/v1/run", &run_body("rodinia/kmeans"))
                        .unwrap();
                    assert_eq!(resp.status, 200);
                    resp.body
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    };
    for body in &bodies[1..] {
        assert_eq!(
            body, &bodies[0],
            "all racers see the same deterministic report"
        );
    }

    // A warm repeat must be answered from cache, byte-identical.
    let mut client = Client::new(addr);
    let warm = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.body, bodies[0],
        "cache hit serializes to the same bytes"
    );

    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let engine = metrics.get("engine").unwrap();
    let hits = engine.get("memory_hits").and_then(Json::as_u64).unwrap();
    let executed = engine.get("jobs_executed").and_then(Json::as_u64).unwrap();
    assert!(hits >= 1, "warm repeat must hit the memory tier");
    assert!(
        executed < 9,
        "racers plus the warm repeat must not all simulate ({executed} executed)"
    );
    let report = warm.json().unwrap();
    assert!(report.get("roi_ps").and_then(Json::as_u64).unwrap() > 0);

    let server = metrics.get("server").unwrap();
    assert!(server.get("requests").and_then(Json::as_u64).unwrap() >= 9);
    let latency = server.get("latency_us").unwrap();
    assert!(latency.get("p99").and_then(Json::as_u64).unwrap() >= 1);

    handle.shutdown_and_join();
}

#[test]
fn request_ids_and_run_traces_round_trip() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    // Cold run: the server generates a correlation id and returns the
    // run's content address.
    let resp = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(resp.status, 200);
    let rid = resp
        .header("x-request-id")
        .expect("id on every response")
        .to_string();
    assert!(rid.starts_with("req-"), "generated id: {rid}");
    let key = resp
        .header("x-run-key")
        .expect("run key header")
        .to_string();
    assert_eq!(key.len(), 32, "run-key hex: {key}");

    // The trace endpoint returns a Chrome-trace JSON array carrying that
    // request id and the simulated component timeline.
    let trace = client.get(&format!("/v1/run/{key}/trace")).unwrap();
    assert_eq!(trace.status, 200);
    assert_eq!(trace.header("content-type"), Some("application/json"));
    let text = String::from_utf8(trace.body.clone()).unwrap();
    assert!(Json::parse(&text).is_some(), "trace must be valid JSON");
    assert!(text.trim_start().starts_with('['), "Chrome-trace array");
    assert!(text.contains(&format!("\"request_id\":\"{rid}\"")));
    assert!(text.contains("\"ph\":\"X\""));
    assert!(text.contains("\"outcome\":\"executed\""));
    assert!(
        text.contains("\"name\":\"gpu\""),
        "simulated component rows present"
    );

    // A warm hit with a client-supplied id: the id is honored end to end
    // and the retained trace keeps the simulated timeline.
    let warm = client
        .post_json_with_headers(
            "/v1/run",
            &run_body("rodinia/kmeans"),
            &[("X-Request-Id", "caller-7.warm")],
        )
        .unwrap();
    assert_eq!(warm.header("x-request-id"), Some("caller-7.warm"));
    assert_eq!(warm.header("x-run-key"), Some(key.as_str()));
    let text =
        String::from_utf8(client.get(&format!("/v1/run/{key}/trace")).unwrap().body).unwrap();
    assert!(text.contains("\"request_id\":\"caller-7.warm\""));
    assert!(text.contains("\"outcome\":\"memory_hit\""));
    assert!(
        text.contains("\"name\":\"gpu\""),
        "warm trace inherits the simulated timeline"
    );

    // A malformed inbound id is replaced, not echoed.
    let resp = client
        .get_with_headers("/healthz", &[("X-Request-Id", "bad id with spaces")])
        .unwrap();
    let echoed = resp.header("x-request-id").unwrap();
    assert!(echoed.starts_with("req-"), "replaced, got {echoed}");

    // Unknown keys 404, bad keys 400, wrong method 405.
    let missing = format!("/v1/run/{}/trace", "0".repeat(32));
    assert_eq!(client.get(&missing).unwrap().status, 404);
    assert_eq!(client.get("/v1/run/nothex/trace").unwrap().status, 400);
    let resp = client
        .post_json(&format!("/v1/run/{key}/trace"), &Json::Null)
        .unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));

    handle.shutdown_and_join();
}

#[test]
fn metrics_expose_prometheus_text_format() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());
    client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();

    let resp = client.get("/metrics?format=prometheus").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    let text = String::from_utf8(resp.body.clone()).unwrap();
    let samples = heteropipe_obs::expfmt::parse(&text)
        .unwrap_or_else(|e| panic!("exposition must validate: {e}\n{text}"));
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(value("heteropipe_engine_jobs_executed_total"), 1.0);
    assert!(value("heteropipe_server_requests_total") >= 1.0);
    assert!(
        value("heteropipe_server_request_latency_microseconds_count") >= 1.0,
        "server latency histogram populated"
    );
    assert!(samples.iter().any(|s| {
        s.name == "heteropipe_engine_cache_hits_total" && s.label("tier") == Some("memory")
    }));

    // Content negotiation: an Accept header selects the format too, and
    // the JSON document stays the default.
    let resp = client
        .get_with_headers("/metrics", &[("Accept", "text/plain")])
        .unwrap();
    assert!(String::from_utf8(resp.body).unwrap().starts_with("# HELP"));
    let resp = client.get("/metrics").unwrap();
    let v = resp.json().expect("default stays JSON");
    assert!(v.get("engine").is_some());

    handle.shutdown_and_join();
}

#[test]
fn injected_panic_is_retried_and_counted_in_metrics() {
    // One panic budget, generous retries: the run succeeds on a later
    // attempt and the recovery shows up in both metric formats.
    let retry = RetryPolicy {
        attempts: 5,
        base_ms: 0,
        cap_ms: 0,
    };
    let handle = start(faulty_engine("job.exec:err=panic:max=1", retry));
    let mut client = Client::new(handle.addr().to_string());

    let resp = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(resp.status, 200, "panic absorbed by retry");

    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let resilience = metrics.get("engine").unwrap().get("resilience").unwrap();
    assert_eq!(
        resilience.get("exec_retries").and_then(Json::as_u64),
        Some(1)
    );

    let text = client.get("/metrics?format=prometheus").unwrap();
    let samples = heteropipe_obs::expfmt::parse(&String::from_utf8(text.body).unwrap()).unwrap();
    let retries = samples
        .iter()
        .find(|s| s.name == "heteropipe_engine_exec_retries_total")
        .expect("retry counter exported");
    assert_eq!(retries.value, 1.0);
    let injected = samples
        .iter()
        .find(|s| s.name == "heteropipe_faults_injected_total")
        .expect("fault counter exported");
    assert_eq!(injected.label("site"), Some("job.exec"));
    assert_eq!(injected.label("kind"), Some("panic"));
    assert_eq!(injected.value, 1.0);

    handle.shutdown_and_join();
}

#[test]
fn quarantined_job_answers_503_with_retry_after() {
    // Every attempt panics and there are no retries: the first request
    // fails for real (500), poisoning the job; repeats fail fast (503)
    // instead of burning attempts on a job known to die.
    let handle = start(faulty_engine("job.exec:err=panic", RetryPolicy::NONE));
    let mut client = Client::new(handle.addr().to_string());

    let first = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(first.status, 500);
    let key = first.header("x-run-key").unwrap().to_string();

    let second = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(second.status, 503, "quarantined job fails fast");
    assert_eq!(second.header("retry-after"), Some("30"));
    assert_eq!(second.header("x-run-key"), Some(key.as_str()));
    assert!(String::from_utf8(second.body.clone())
        .unwrap()
        .contains("quarantined"));

    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let resilience = metrics.get("engine").unwrap().get("resilience").unwrap();
    assert_eq!(
        resilience.get("jobs_quarantined").and_then(Json::as_u64),
        Some(1)
    );

    handle.shutdown_and_join();
}

#[test]
fn open_breaker_sheds_api_routes_but_readiness_reports_it() {
    // A hair-trigger breaker over an engine that always fails: the first
    // real failure opens it, API routes shed, and the liveness/readiness
    // split tells the orchestrator to stop routing without restarting.
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown: std::time::Duration::from_secs(5),
            half_open_probes: 1,
        },
        ..ServerConfig::default()
    };
    let engine = faulty_engine("job.exec:err=panic", RetryPolicy::NONE);
    let handle = api::serve(cfg, Arc::new(engine)).unwrap();
    let mut client = Client::new(handle.addr().to_string());

    assert_eq!(client.get("/healthz/live").unwrap().status, 200);
    let ready = client.get("/healthz/ready").unwrap();
    assert_eq!(ready.status, 200);
    assert_eq!(
        ready.json().unwrap().get("status").and_then(Json::as_str),
        Some("ready")
    );

    let resp = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(resp.status, 500, "real failure trips the breaker");

    // API routes shed with Retry-After (the cooldown) while open...
    let shed = client.get("/v1/benchmarks").unwrap();
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("5"));
    assert!(String::from_utf8(shed.body.clone())
        .unwrap()
        .contains("circuit breaker open"));

    // ...but probes and scrapes keep answering.
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    assert_eq!(client.get("/healthz/live").unwrap().status, 200);
    let ready = client.get("/healthz/ready").unwrap();
    assert_eq!(ready.status, 503, "unready while the breaker is open");
    assert_eq!(ready.header("retry-after"), Some("5"));
    let v = ready.json().unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("unready"));
    assert_eq!(v.get("breaker").and_then(Json::as_str), Some("open"));

    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let breaker = metrics.get("server").unwrap().get("breaker").unwrap();
    assert_eq!(breaker.get("state").and_then(Json::as_str), Some("open"));
    assert_eq!(breaker.get("opened").and_then(Json::as_u64), Some(1));
    assert!(breaker.get("shed").and_then(Json::as_u64).unwrap() >= 1);

    let text = client.get("/metrics?format=prometheus").unwrap();
    let samples = heteropipe_obs::expfmt::parse(&String::from_utf8(text.body).unwrap()).unwrap();
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(value("heteropipe_server_breaker_open"), 1.0);
    assert_eq!(value("heteropipe_server_breaker_opened_total"), 1.0);
    assert!(value("heteropipe_server_breaker_shed_total") >= 1.0);

    handle.shutdown_and_join();
}

/// A 20-entry mixed sweep body: 4 unique job specs (2 benchmarks x 2
/// systems) each repeated 5 times.
fn mixed_sweep_body() -> Json {
    let mut jobs = Vec::new();
    for _ in 0..5 {
        for (bench, system) in [
            ("rodinia/kmeans", "discrete"),
            ("rodinia/srad", "discrete"),
            ("rodinia/kmeans", "heterogeneous"),
            ("rodinia/srad", "heterogeneous"),
        ] {
            jobs.push(Json::Obj(vec![
                ("benchmark".into(), Json::str(bench)),
                ("system".into(), Json::str(system)),
                ("scale".into(), Json::F64(0.08)),
            ]));
        }
    }
    Json::Obj(vec![("jobs".into(), Json::Arr(jobs))])
}

/// Splits an NDJSON sweep body into (records by index, summary line),
/// asserting the stream shape along the way.
fn split_sweep_stream(body: &[u8], expect_jobs: usize) -> (Vec<String>, Json) {
    let text = String::from_utf8(body.to_vec()).expect("NDJSON is UTF-8");
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), expect_jobs + 1, "one record per job + summary");
    let summary = Json::parse(lines[expect_jobs]).expect("summary parses");
    assert!(summary.get("sweep").is_some(), "last line is the summary");
    let mut by_index = vec![String::new(); expect_jobs];
    for line in &lines[..expect_jobs] {
        let v = Json::parse(line).expect("record parses");
        let i = v.get("index").and_then(Json::as_u64).expect("index") as usize;
        assert!(by_index[i].is_empty(), "each index appears exactly once");
        by_index[i] = (*line).to_string();
    }
    (by_index, summary.get("sweep").unwrap().clone())
}

#[test]
fn sweep_streams_ndjson_dedups_and_warm_repeat_is_byte_identical() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());
    let body = mixed_sweep_body();

    // Cold sweep: 20 entries, 4 unique, streamed over keep-alive.
    let cold = client.post_json("/v1/sweeps", &body).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("content-type"), Some("application/x-ndjson"));
    let sweep_key = cold.header("x-sweep-key").expect("sweep key").to_string();
    assert_eq!(sweep_key.len(), 32);
    let (cold_records, cold_summary) = split_sweep_stream(&cold.body, 20);
    assert_eq!(
        cold_summary.get("jobs_total").and_then(Json::as_u64),
        Some(20)
    );
    assert_eq!(
        cold_summary.get("jobs_unique").and_then(Json::as_u64),
        Some(4)
    );
    assert_eq!(
        cold_summary.get("duplicates").and_then(Json::as_u64),
        Some(16)
    );
    assert_eq!(cold_summary.get("failed").and_then(Json::as_u64), Some(0));
    let executed = cold_summary.get("executed").and_then(Json::as_u64).unwrap();
    let coalesced = cold_summary
        .get("coalesced")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(executed + coalesced, 4, "unique residue ran exactly once");
    let deduped = cold_records
        .iter()
        .filter(|l| {
            Json::parse(l)
                .unwrap()
                .get("deduped")
                .and_then(Json::as_bool)
                == Some(true)
        })
        .count();
    assert_eq!(deduped, 16, "every repeat is marked deduped");
    for line in &cold_records {
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(v.get("key").and_then(Json::as_str).unwrap().len(), 32);
        assert!(v.get("report").and_then(|r| r.get("roi_ps")).is_some());
    }

    // Warm repeat on the same keep-alive connection: byte-identical
    // records (the summary line carries timing and is excluded).
    let warm = client.post_json("/v1/sweeps", &body).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-sweep-key"), Some(sweep_key.as_str()));
    let (warm_records, warm_summary) = split_sweep_stream(&warm.body, 20);
    assert_eq!(warm_records, cold_records, "per-record bytes identical");
    assert_eq!(
        warm_summary.get("cache_hits").and_then(Json::as_u64),
        Some(4)
    );
    assert_eq!(warm_summary.get("executed").and_then(Json::as_u64), Some(0));

    // The connection still serves ordinary requests after two streams.
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    // The cached report behind any record is retrievable as a resource,
    // and the sweep left a trace under its own key.
    let rec = Json::parse(&cold_records[0]).unwrap();
    let key = rec.get("key").and_then(Json::as_str).unwrap();
    let report = client.get(&format!("/v1/runs/{key}")).unwrap();
    assert_eq!(report.status, 200);
    assert_eq!(report.header("x-run-key"), Some(key));
    assert_eq!(
        report.json().unwrap().dump(),
        rec.get("report").unwrap().dump(),
        "GET /v1/runs/{{key}} returns the same report the sweep streamed"
    );
    let trace = client.get(&format!("/v1/runs/{sweep_key}/trace")).unwrap();
    assert_eq!(trace.status, 200);
    let trace_text = String::from_utf8(trace.body).unwrap();
    assert!(trace_text.contains("sweep[20]"), "{trace_text}");

    // Dedup accounting lands in both metrics formats.
    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let sweeps = metrics.get("engine").unwrap().get("sweeps").unwrap();
    assert_eq!(sweeps.get("count").and_then(Json::as_u64), Some(2));
    assert_eq!(sweeps.get("jobs").and_then(Json::as_u64), Some(40));
    assert_eq!(sweeps.get("deduped").and_then(Json::as_u64), Some(32));
    let text = client.get("/metrics?format=prometheus").unwrap();
    let samples = heteropipe_obs::expfmt::parse(&String::from_utf8(text.body).unwrap()).unwrap();
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(value("heteropipe_engine_sweeps_total"), 2.0);
    assert_eq!(value("heteropipe_engine_sweep_jobs_total"), 40.0);
    assert_eq!(value("heteropipe_engine_sweep_deduped_total"), 32.0);

    handle.shutdown_and_join();
}

#[test]
fn sweep_isolates_poisoned_entries_and_reports_quarantine() {
    // One panic budget, no retries, one worker: the first kmeans
    // execution dies deterministically and poisons its key; srad and the
    // batch itself survive.
    let engine = faulty_engine("job.exec:err=panic:max=1", RetryPolicy::NONE).with_jobs(1);
    let handle = start(engine);
    let mut client = Client::new(handle.addr().to_string());

    let jobs = |benches: &[&str]| {
        Json::Obj(vec![(
            "jobs".into(),
            Json::Arr(
                benches
                    .iter()
                    .map(|b| {
                        Json::Obj(vec![
                            ("benchmark".into(), Json::str(*b)),
                            ("scale".into(), Json::F64(0.08)),
                        ])
                    })
                    .collect(),
            ),
        )])
    };

    let resp = client
        .post_json(
            "/v1/sweeps",
            &jobs(&["rodinia/kmeans", "rodinia/kmeans", "rodinia/srad"]),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "a poisoned entry never fails the batch");
    let (records, summary) = split_sweep_stream(&resp.body, 3);
    assert_eq!(summary.get("failed").and_then(Json::as_u64), Some(2));
    for (i, line) in records.iter().enumerate() {
        let v = Json::parse(line).unwrap();
        if i < 2 {
            assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
            let err = v.get("error").unwrap();
            assert_eq!(
                err.get("code").and_then(Json::as_str),
                Some("execution_failed")
            );
        } else {
            assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        }
    }

    // A later sweep touching the poisoned key fails fast per-entry with
    // the quarantine code, while healthy entries keep answering.
    let resp = client
        .post_json("/v1/sweeps", &jobs(&["rodinia/kmeans", "rodinia/srad"]))
        .unwrap();
    assert_eq!(resp.status, 200);
    let (records, summary) = split_sweep_stream(&resp.body, 2);
    assert_eq!(summary.get("failed").and_then(Json::as_u64), Some(1));
    let poisoned = Json::parse(&records[0]).unwrap();
    let err = poisoned.get("error").unwrap();
    assert_eq!(err.get("code").and_then(Json::as_str), Some("quarantined"));
    assert!(err
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("quarantined"));
    assert_eq!(
        Json::parse(&records[1])
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("ok")
    );

    handle.shutdown_and_join();
}

#[test]
fn deprecated_aliases_answer_identically_to_canonical_routes() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());
    let body = run_body("rodinia/kmeans");

    let canonical = client.post_json("/v1/runs", &body).unwrap();
    assert_eq!(canonical.status, 200);
    assert_eq!(canonical.header("deprecation"), None);
    let key = canonical.header("x-run-key").unwrap().to_string();

    let alias = client.post_json("/v1/run", &body).unwrap();
    assert_eq!(alias.status, canonical.status);
    assert_eq!(alias.body, canonical.body, "alias answers byte-identically");
    assert_eq!(alias.header("deprecation"), Some("true"));
    assert_eq!(
        alias.header("link"),
        Some("</v1/runs>; rel=\"successor-version\"")
    );

    let canonical = client.get(&format!("/v1/runs/{key}/trace")).unwrap();
    let alias = client.get(&format!("/v1/run/{key}/trace")).unwrap();
    assert_eq!(canonical.status, 200);
    assert_eq!(alias.status, 200);
    assert_eq!(alias.body, canonical.body);
    assert_eq!(canonical.header("deprecation"), None);
    assert_eq!(alias.header("deprecation"), Some("true"));
    assert_eq!(
        alias.header("link"),
        Some(format!("</v1/runs/{key}/trace>; rel=\"successor-version\"").as_str())
    );

    // The cached-report lookup is canonical-only: the alias points at it.
    let lookup = client.get(&format!("/v1/runs/{key}")).unwrap();
    assert_eq!(lookup.status, 200);
    let old = client.get(&format!("/v1/run/{key}")).unwrap();
    assert_eq!(old.status, 404);
    assert!(old
        .api_error()
        .unwrap()
        .message
        .contains(&format!("/v1/runs/{key}")));

    handle.shutdown_and_join();
}

#[test]
fn every_client_visible_error_is_the_json_envelope() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    let check = |resp: &heteropipe_serve::ClientResponse, status: u16, code: &str| {
        assert_eq!(resp.status, status);
        let err = resp.api_error().unwrap_or_else(|| {
            panic!(
                "{status} body is not the envelope: {}",
                String::from_utf8_lossy(&resp.body)
            )
        });
        assert_eq!(err.code, code);
        assert!(!err.message.is_empty());
        assert_eq!(
            Some(err.request_id.as_str()),
            resp.header("x-request-id"),
            "body and header agree on the correlation id"
        );
    };

    let resp = client.get("/nope").unwrap();
    check(&resp, 404, "not_found");
    let resp = client.get("/v1/runs").unwrap();
    check(&resp, 405, "method_not_allowed");
    assert_eq!(resp.header("allow"), Some("POST"));
    let resp = client.post_raw("/v1/runs", b"{not json".to_vec()).unwrap();
    check(&resp, 400, "bad_request");
    let resp = client
        .post_json(
            "/v1/runs",
            &Json::Obj(vec![("benchmark".into(), Json::str("no/such"))]),
        )
        .unwrap();
    check(&resp, 404, "not_found");

    // Malformed run keys are rejected early with a hint, including keys
    // smuggling extra path segments — not a silent fall-through to 404.
    let resp = client.get("/v1/runs/nothex/trace").unwrap();
    check(&resp, 400, "bad_request");
    assert!(resp.api_error().unwrap().message.contains("32 hex"));
    let resp = client.get("/v1/runs/a/b/trace").unwrap();
    check(&resp, 400, "bad_request");
    let resp = client.get(&format!("/v1/runs/{}", "g".repeat(32))).unwrap();
    check(&resp, 400, "bad_request");
    let missing = client.get(&format!("/v1/runs/{}", "0".repeat(32))).unwrap();
    check(&missing, 404, "not_found");

    // An oversized sweep is refused before any execution.
    let too_many: Vec<Json> = (0..513)
        .map(|_| Json::Obj(vec![("benchmark".into(), Json::str("rodinia/kmeans"))]))
        .collect();
    let resp = client
        .post_json(
            "/v1/sweeps",
            &Json::Obj(vec![("jobs".into(), Json::Arr(too_many))]),
        )
        .unwrap();
    check(&resp, 413, "payload_too_large");
    let resp = client
        .post_json(
            "/v1/sweeps",
            &Json::Obj(vec![("jobs".into(), Json::Arr(Vec::new()))]),
        )
        .unwrap();
    check(&resp, 400, "bad_request");

    // A catalogued-but-unrunnable benchmark answers 422 with its code.
    let catalog = client.get("/v1/benchmarks").unwrap().json().unwrap();
    let unrunnable = catalog
        .get("benchmarks")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .find(|b| b.get("runnable").and_then(Json::as_bool) == Some(false))
        .and_then(|b| b.get("name").and_then(Json::as_str))
        .map(str::to_owned);
    if let Some(name) = unrunnable {
        let resp = client
            .post_json(
                "/v1/runs",
                &Json::Obj(vec![("benchmark".into(), Json::str(name))]),
            )
            .unwrap();
        check(&resp, 422, "not_runnable");
    }

    handle.shutdown_and_join();
}

#[test]
fn experiment_endpoint_renders_tables() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    // Table 2 is static (the benchmark census): cheap and exact.
    let resp = client
        .post_json("/v1/experiments/table2", &Json::Obj(Vec::new()))
        .unwrap();
    assert_eq!(resp.status, 200);
    let v = resp.json().unwrap();
    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("table2"));
    let rendered = v.get("rendered").and_then(Json::as_str).unwrap();
    assert!(rendered.contains("Rodinia"), "census table lists suites");

    let resp = client
        .post_json("/v1/experiments/fig99", &Json::Obj(Vec::new()))
        .unwrap();
    assert_eq!(resp.status, 404, "unknown experiment name");

    handle.shutdown_and_join();
}

#[test]
fn experiments_resource_lists_and_describes_the_catalogue() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    // The index names every figure/table reproduction with enough
    // metadata to execute it, round-tripping through the in-tree codec.
    let resp = client.get("/v1/experiments").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    let v = resp.json().expect("index is valid JSON");
    assert_eq!(v.get("total").and_then(Json::as_u64), Some(9));
    let list = v.get("experiments").and_then(Json::as_array).unwrap();
    assert_eq!(list.len(), 9);
    for entry in list {
        let id = entry.get("id").and_then(Json::as_str).expect("id");
        assert!(!entry
            .get("title")
            .and_then(Json::as_str)
            .expect("title")
            .is_empty());
        assert!(!entry
            .get("section")
            .and_then(Json::as_str)
            .expect("paper section")
            .is_empty());
        let knobs = entry.get("knobs").and_then(Json::as_array).unwrap();
        assert_eq!(knobs.len(), 1, "{id} takes the scale knob");
        assert_eq!(knobs[0].as_str(), Some("scale"));
        assert_eq!(
            entry.get("execute").and_then(Json::as_str),
            Some(format!("POST /v1/experiments/{id}").as_str())
        );
    }
    let ids: Vec<&str> = list
        .iter()
        .filter_map(|e| e.get("id").and_then(Json::as_str))
        .collect();
    assert_eq!(
        ids,
        ["fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2"]
    );

    // One experiment's metadata matches its index row.
    let resp = client.get("/v1/experiments/fig5").unwrap();
    assert_eq!(resp.status, 200);
    let meta = resp.json().unwrap();
    assert_eq!(meta.get("id").and_then(Json::as_str), Some("fig5"));
    assert_eq!(meta.get("section").and_then(Json::as_str), Some("IV-B"));
    let indexed = list
        .iter()
        .find(|e| e.get("id").and_then(Json::as_str) == Some("fig5"))
        .unwrap();
    assert_eq!(meta.dump(), indexed.dump(), "index row equals the resource");

    // Unknown ids 404 with the catalogue hinted; the collection itself
    // is read-only, and execution stays on the per-id POST.
    let resp = client.get("/v1/experiments/nope").unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.api_error().unwrap().message.contains("fig3"));
    let resp = client.post_json("/v1/experiments", &Json::Null).unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
    let resp = client
        .post_json("/v1/experiments/table2", &Json::Obj(Vec::new()))
        .unwrap();
    assert_eq!(resp.status, 200, "POST execution is unchanged");
    assert!(resp.json().unwrap().get("rendered").is_some());

    handle.shutdown_and_join();
}

/// The process-wide count of one profiler phase, read over the wire.
fn phase_count(client: &mut Client, phase: &str) -> u64 {
    let v = client.get("/v1/debug/profile").unwrap().json().unwrap();
    v.get("phases")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .find(|p| p.get("name").and_then(Json::as_str) == Some(phase))
        .and_then(|p| p.get("count").and_then(Json::as_u64))
        .unwrap_or(0)
}

#[test]
fn warm_report_reads_are_zero_copy_and_conditional() {
    // A disk cache is the only tier whose reads can decode, so this test
    // owns every `engine.cache_decode` increment in the process (all
    // other tests run memory-only engines).
    let dir = std::env::temp_dir().join(format!(
        "heteropipe-serve-test-zerocopy-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Populate the disk cache, then restart so the next read must come
    // from the `.hpr` record, not the warm in-memory report map.
    let handle = start(Engine::new().with_cache_dir(&dir));
    let mut client = Client::new(handle.addr().to_string());
    let resp = client
        .post_json("/v1/runs", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(resp.status, 200);
    let key = resp.header("x-run-key").unwrap().to_string();
    handle.shutdown_and_join();

    let handle = start(Engine::new().with_cache_dir(&dir));
    let mut client = Client::new(handle.addr().to_string());
    let etag = format!("\"{key}\"");

    // Cold lookup decodes the record once and renders the report.
    let decodes_before = phase_count(&mut client, "engine.cache_decode");
    let cold = client.get(&format!("/v1/runs/{key}")).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("etag"), Some(etag.as_str()));
    assert_eq!(cold.header("x-run-key"), Some(key.as_str()));
    let decodes_cold = phase_count(&mut client, "engine.cache_decode");
    assert!(
        decodes_cold > decodes_before,
        "cold read decodes the record"
    );

    // Warm repeats serve the validated bytes without touching the
    // decoder, and the body is byte-identical to the decode path's.
    for _ in 0..3 {
        let warm = client.get(&format!("/v1/runs/{key}")).unwrap();
        assert_eq!(warm.status, 200);
        assert_eq!(warm.body, cold.body, "warm bytes match the decode path");
        assert_eq!(warm.header("etag"), Some(etag.as_str()));
    }
    assert_eq!(
        phase_count(&mut client, "engine.cache_decode"),
        decodes_cold,
        "warm repeats never re-decode"
    );

    // The run key doubles as a strong validator: a matching
    // `If-None-Match` short-circuits to an empty 304 that still names
    // the resource; weak and wildcard forms match, stale tags do not.
    for sent in [
        etag.clone(),
        format!("W/{etag}"),
        "*".to_string(),
        format!("\"{}\", {etag}", "0".repeat(32)),
    ] {
        let resp = client
            .get_with_headers(&format!("/v1/runs/{key}"), &[("If-None-Match", &sent)])
            .unwrap();
        assert_eq!(resp.status, 304, "validator {sent}");
        assert!(resp.body.is_empty());
        assert_eq!(resp.header("etag"), Some(etag.as_str()));
        assert_eq!(resp.header("x-run-key"), Some(key.as_str()));
    }
    let stale = format!("\"{}\"", "0".repeat(32));
    let resp = client
        .get_with_headers(&format!("/v1/runs/{key}"), &[("If-None-Match", &stale)])
        .unwrap();
    assert_eq!(resp.status, 200, "stale validator gets the full body");
    assert_eq!(resp.body, cold.body);

    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- durability, deadlines, and admission ------------------------------

fn temp_journal(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "heteropipe-serve-test-journal-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_durable(engine: Engine, journal_dir: &std::path::Path) -> ServerHandle {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        max_inflight: 32,
        ..ServerConfig::default()
    };
    let journal = heteropipe_engine::Journal::open(journal_dir).expect("open journal");
    api::serve_durable(cfg, Arc::new(engine), Arc::new(journal)).expect("bind durable server")
}

/// A server whose admission gate is hand-built instead of read from the
/// environment (the env var would race with parallel tests).
fn start_gated(engine: Engine, plan: &str) -> ServerHandle {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        max_inflight: 32,
        ..ServerConfig::default()
    };
    let api = Api::new(Arc::new(engine));
    api.attach_tenants(Arc::new(
        TenantGate::parse(plan).expect("tenant plan parses"),
    ));
    let server = Server::bind(cfg, api.clone()).expect("bind gated server");
    api.attach_stats(server.stats());
    api.attach_breaker(server.breaker());
    server.start()
}

fn sweep_of(benchmarks: &[&str]) -> Json {
    Json::Obj(vec![(
        "jobs".into(),
        Json::Arr(benchmarks.iter().map(|b| run_body(b)).collect()),
    )])
}

/// Per-job record lines of a sweep NDJSON body, sorted by `index` (the
/// sync stream is completion-ordered with a trailing timing summary;
/// `/records` is index-ordered without one).
fn sorted_records(body: &[u8]) -> Vec<String> {
    let text = std::str::from_utf8(body).expect("stream is UTF-8");
    let mut records: Vec<(u64, String)> = text
        .lines()
        .filter_map(|line| {
            let v = Json::parse(line)?;
            Some((v.get("index").and_then(Json::as_u64)?, line.to_string()))
        })
        .collect();
    records.sort_by_key(|&(i, _)| i);
    records.into_iter().map(|(_, l)| l).collect()
}

#[test]
fn async_sweep_lifecycle_reconstructs_the_sync_stream() {
    let journal_dir = temp_journal("lifecycle");
    let handle = start_durable(Engine::new().memory_cache_only(), &journal_dir);
    let mut client = Client::new(handle.addr().to_string());
    // Three entries with an in-batch duplicate: records are per entry,
    // so the duplicate owns its own index in both streams.
    let body = sweep_of(&["rodinia/kmeans", "rodinia/srad", "rodinia/kmeans"]);

    let sync = client.post_json("/v1/sweeps", &body).unwrap();
    assert_eq!(sync.status, 200);
    let reference = sorted_records(&sync.body);
    assert_eq!(reference.len(), 3);

    let accepted = client.post_json("/v1/sweeps?async=1", &body).unwrap();
    assert_eq!(accepted.status, 202, "async submit is accepted");
    let v = accepted.json().unwrap();
    let key = v.get("key").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("sweep"));
    assert_eq!(
        v.get("status_url").and_then(Json::as_str),
        Some(format!("/v1/sweeps/{key}").as_str())
    );
    assert_eq!(accepted.header("x-sweep-key"), Some(key.as_str()));

    // Poll to completion; cache hits make this settle in a few rounds.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let status = loop {
        let resp = client.get(&format!("/v1/sweeps/{key}")).unwrap();
        assert_eq!(resp.status, 200);
        let v = resp.json().unwrap();
        match v.get("state").and_then(Json::as_str) {
            Some("done") => break v,
            Some("failed") => panic!("async sweep failed: {v:?}"),
            _ => {
                assert!(std::time::Instant::now() < deadline, "sweep never settled");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
    };
    assert_eq!(status.get("jobs_total").and_then(Json::as_u64), Some(3));
    assert_eq!(status.get("records_done").and_then(Json::as_u64), Some(3));
    assert_eq!(status.get("records_failed").and_then(Json::as_u64), Some(0));

    // The journaled records reconstruct the synchronous stream exactly.
    let records = client.get(&format!("/v1/sweeps/{key}/records")).unwrap();
    assert_eq!(records.status, 200);
    assert_eq!(records.header("content-type"), Some("application/x-ndjson"));
    assert_eq!(sorted_records(&records.body), reference);

    // from_index resumes a partial read; a bad value is a 400.
    let tail = client
        .get(&format!("/v1/sweeps/{key}/records?from_index=2"))
        .unwrap();
    assert_eq!(tail.status, 200);
    assert_eq!(sorted_records(&tail.body), reference[2..].to_vec());
    let bad = client
        .get(&format!("/v1/sweeps/{key}/records?from_index=x"))
        .unwrap();
    assert_eq!(bad.status, 400);

    // Resubmitting a sealed sweep adopts the finished job instead of
    // re-executing: still a 202, already done.
    let again = client.post_json("/v1/sweeps?async=1", &body).unwrap();
    assert_eq!(again.status, 202);
    assert_eq!(
        again.json().unwrap().get("state").and_then(Json::as_str),
        Some("done")
    );

    // Unknown keys answer 404 on both resources.
    let nope = "00000000000000000000000000000000";
    assert_eq!(
        client.get(&format!("/v1/sweeps/{nope}")).unwrap().status,
        404
    );
    assert_eq!(
        client
            .get(&format!("/v1/sweeps/{nope}/records"))
            .unwrap()
            .status,
        404
    );

    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&journal_dir);
}

#[test]
fn async_submit_without_a_journal_is_refused() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());
    let resp = client
        .post_json("/v1/sweeps?async=1", &sweep_of(&["rodinia/kmeans"]))
        .unwrap();
    assert_eq!(resp.status, 503, "no journal, no durable accept");
    let v = resp.json().unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("async_unavailable")
    );
    handle.shutdown_and_join();
}

#[test]
fn tenant_gate_throttles_with_envelope_and_metrics() {
    let handle = start_gated(Engine::new().memory_cache_only(), "alice=1:2;*=1:1");
    let mut client = Client::new(handle.addr().to_string());
    let alice: &[(&str, &str)] = &[("X-Api-Key", "alice")];

    // Burst of 2, then the bucket is empty.
    for _ in 0..2 {
        assert_eq!(
            client
                .get_with_headers("/v1/benchmarks", alice)
                .unwrap()
                .status,
            200
        );
    }
    let throttled = client.get_with_headers("/v1/benchmarks", alice).unwrap();
    assert_eq!(throttled.status, 429);
    let retry_after: u64 = throttled
        .header("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .unwrap();
    assert!(retry_after >= 1);
    let v = throttled.json().unwrap();
    let err = v.get("error").unwrap();
    assert_eq!(
        err.get("code").and_then(Json::as_str),
        Some("tenant_throttled")
    );
    assert_eq!(
        err.get("retry_after_s").and_then(Json::as_u64),
        Some(retry_after)
    );

    // Unknown keys share the wildcard bucket; keyless and exempt
    // requests always admit.
    let mallory: &[(&str, &str)] = &[("X-Api-Key", "mallory")];
    assert_eq!(
        client
            .get_with_headers("/v1/benchmarks", mallory)
            .unwrap()
            .status,
        200
    );
    assert_eq!(
        client
            .get_with_headers("/v1/benchmarks", mallory)
            .unwrap()
            .status,
        429
    );
    assert_eq!(client.get("/v1/benchmarks").unwrap().status, 200);
    assert_eq!(
        client.get_with_headers("/healthz", alice).unwrap().status,
        200
    );

    // Both metric formats expose the per-tenant tallies.
    let m = client.get("/metrics").unwrap().json().unwrap();
    let tenants = m.get("tenants").and_then(Json::as_array).unwrap();
    let alice_row = tenants
        .iter()
        .find(|t| t.get("tenant").and_then(Json::as_str) == Some("alice"))
        .expect("alice bucket exported");
    assert_eq!(alice_row.get("requests").and_then(Json::as_u64), Some(2));
    assert_eq!(alice_row.get("throttled").and_then(Json::as_u64), Some(1));
    let prom = client.get("/metrics?format=prometheus").unwrap();
    let text = String::from_utf8(prom.body).unwrap();
    assert!(
        text.contains("heteropipe_tenant_throttled_total{tenant=\"alice\"} 1"),
        "prometheus view carries the throttle counter"
    );

    handle.shutdown_and_join();
}

#[test]
fn deadline_header_refusals_and_validation() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    // A spent budget is refused with the standard envelope before any
    // execution happens.
    let spent = client
        .get_with_headers("/v1/benchmarks", &[("X-Deadline-Ms", "0")])
        .unwrap();
    assert_eq!(spent.status, 504);
    let v = spent.json().unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    assert!(spent.header("retry-after").is_some());

    // A garbage header is the caller's bug, not a timeout.
    let bad = client
        .get_with_headers("/v1/benchmarks", &[("X-Deadline-Ms", "soon")])
        .unwrap();
    assert_eq!(bad.status, 400);

    // A generous budget sails through; the refusal shows up in both
    // metric formats.
    let ok = client
        .get_with_headers("/v1/benchmarks", &[("X-Deadline-Ms", "60000")])
        .unwrap();
    assert_eq!(ok.status, 200);
    let m = client.get("/metrics").unwrap().json().unwrap();
    assert_eq!(m.get("deadline_exceeded").and_then(Json::as_u64), Some(1));
    let prom = client.get("/metrics?format=prometheus").unwrap();
    let text = String::from_utf8(prom.body).unwrap();
    assert!(text.contains("heteropipe_deadline_exceeded_total 1"));

    handle.shutdown_and_join();
}

#[test]
fn async_submit_of_a_maximum_size_sweep_answers_before_execution() {
    let journal_dir = temp_journal("full-size");
    let handle = start_durable(Engine::new().memory_cache_only(), &journal_dir);
    let mut client =
        Client::new(handle.addr().to_string()).with_timeout(std::time::Duration::from_secs(60));

    // The sweep cap (512 entries) built from four unique jobs: in-batch
    // dedup keeps execution cheap while the journal still carries one
    // record per entry.
    let benches = [
        "rodinia/kmeans",
        "rodinia/srad",
        "rodinia/bfs",
        "rodinia/nw",
    ];
    let jobs: Vec<Json> = (0..512)
        .map(|i| run_body(benches[i % benches.len()]))
        .collect();
    let body = Json::Obj(vec![("jobs".into(), Json::Arr(jobs))]);

    let sync = client.post_json("/v1/sweeps", &body).unwrap();
    assert_eq!(sync.status, 200);
    let reference = sorted_records(&sync.body);
    assert_eq!(reference.len(), 512);

    // The 202 must come back as soon as the intent is durable — never
    // after execution. 250 ms is generous headroom over the <50 ms
    // target for a loaded CI machine.
    let submitted = std::time::Instant::now();
    let accepted = client.post_json("/v1/sweeps?async=1", &body).unwrap();
    let latency = submitted.elapsed();
    assert_eq!(accepted.status, 202);
    assert!(
        latency < std::time::Duration::from_millis(250),
        "512-job async submit must not wait for execution (took {latency:?})"
    );
    let key = accepted
        .json()
        .and_then(|v| v.get("key").and_then(Json::as_str).map(str::to_string))
        .unwrap();

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let v = client
            .get(&format!("/v1/sweeps/{key}"))
            .unwrap()
            .json()
            .unwrap();
        match v.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("failed") => panic!("async sweep failed: {v:?}"),
            _ => {
                assert!(std::time::Instant::now() < deadline, "sweep never settled");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }
    let records = client.get(&format!("/v1/sweeps/{key}/records")).unwrap();
    assert_eq!(records.status, 200);
    assert_eq!(sorted_records(&records.body), reference);

    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&journal_dir);
}
