//! End-to-end tests: a real server on an ephemeral port, driven through
//! the crate's own client, with the shared engine's cache observable
//! through `/metrics`.

use std::sync::Arc;

use heteropipe_engine::Engine;
use heteropipe_faults::{FaultPlan, Injector, RetryPolicy};
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, BreakerConfig, Client, Json, ServerHandle};

fn start(engine: Engine) -> ServerHandle {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        max_inflight: 32,
        ..ServerConfig::default()
    };
    api::serve(cfg, Arc::new(engine)).expect("bind ephemeral port")
}

/// An engine whose job executions panic per `plan`, retried under `retry`.
fn faulty_engine(plan: &str, retry: RetryPolicy) -> Engine {
    Engine::new()
        .memory_cache_only()
        .with_faults(Arc::new(Injector::new(FaultPlan::parse(plan).unwrap())))
        .with_retry(retry)
}

fn run_body(benchmark: &str) -> Json {
    Json::Obj(vec![
        ("benchmark".into(), Json::str(benchmark)),
        ("system".into(), Json::str("discrete")),
        ("organization".into(), Json::str("serial")),
        ("scale".into(), Json::F64(0.08)),
    ])
}

#[test]
fn healthz_and_unknown_routes() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    let resp = client.get("/healthz").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.json().unwrap().get("status").and_then(Json::as_str),
        Some("ok")
    );

    assert_eq!(client.get("/nope").unwrap().status, 404);
    // Wrong method on a known route: 405 with an Allow header.
    let resp = client.post_json("/healthz", &Json::Null).unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
    let resp = client.get("/v1/run").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));

    handle.shutdown_and_join();
}

#[test]
fn benchmark_catalog_counts_match_the_paper() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    let resp = client.get("/v1/benchmarks").unwrap();
    assert_eq!(resp.status, 200);
    let v = resp.json().unwrap();
    assert_eq!(v.get("total").and_then(Json::as_u64), Some(58));
    assert_eq!(v.get("examined").and_then(Json::as_u64), Some(46));
    let list = v.get("benchmarks").and_then(Json::as_array).unwrap();
    assert_eq!(list.len(), 58);
    let kmeans = list
        .iter()
        .find(|b| b.get("name").and_then(Json::as_str) == Some("rodinia/kmeans"))
        .expect("kmeans catalogued");
    assert_eq!(kmeans.get("examined").and_then(Json::as_bool), Some(true));
    assert_eq!(kmeans.get("runnable").and_then(Json::as_bool), Some(true));

    handle.shutdown_and_join();
}

#[test]
fn run_endpoint_validates_requests() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    let resp = client
        .post_json("/v1/run", &run_body("rodinia/nonesuch"))
        .unwrap();
    assert_eq!(resp.status, 404, "unknown benchmark");

    let resp = client.post_raw("/v1/run", b"{not json".to_vec()).unwrap();
    assert_eq!(resp.status, 400, "malformed body");

    // chunked_parallel on the discrete system is a config error the
    // server must catch, not a 500 from the simulator's panic.
    let mismatched = Json::Obj(vec![
        ("benchmark".into(), Json::str("rodinia/kmeans")),
        ("system".into(), Json::str("discrete")),
        (
            "organization".into(),
            Json::Obj(vec![("chunked_parallel".into(), Json::U64(8))]),
        ),
        ("scale".into(), Json::F64(0.08)),
    ]);
    let resp = client.post_json("/v1/run", &mismatched).unwrap();
    assert_eq!(resp.status, 400);

    let resp = client
        .post_json(
            "/v1/run",
            &Json::Obj(vec![
                ("benchmark".into(), Json::str("rodinia/kmeans")),
                ("scale".into(), Json::F64(-2.0)),
            ]),
        )
        .unwrap();
    assert_eq!(resp.status, 400, "negative scale");

    handle.shutdown_and_join();
}

#[test]
fn concurrent_runs_share_one_engine_and_warm_repeat_is_byte_identical() {
    let handle = start(Engine::new().memory_cache_only());
    let addr = handle.addr().to_string();

    // Eight clients race the same job through the shared engine.
    let bodies: Vec<Vec<u8>> = {
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let resp = Client::new(addr)
                        .post_json("/v1/run", &run_body("rodinia/kmeans"))
                        .unwrap();
                    assert_eq!(resp.status, 200);
                    resp.body
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    };
    for body in &bodies[1..] {
        assert_eq!(
            body, &bodies[0],
            "all racers see the same deterministic report"
        );
    }

    // A warm repeat must be answered from cache, byte-identical.
    let mut client = Client::new(addr);
    let warm = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.body, bodies[0],
        "cache hit serializes to the same bytes"
    );

    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let engine = metrics.get("engine").unwrap();
    let hits = engine.get("memory_hits").and_then(Json::as_u64).unwrap();
    let executed = engine.get("jobs_executed").and_then(Json::as_u64).unwrap();
    assert!(hits >= 1, "warm repeat must hit the memory tier");
    assert!(
        executed < 9,
        "racers plus the warm repeat must not all simulate ({executed} executed)"
    );
    let report = warm.json().unwrap();
    assert!(report.get("roi_ps").and_then(Json::as_u64).unwrap() > 0);

    let server = metrics.get("server").unwrap();
    assert!(server.get("requests").and_then(Json::as_u64).unwrap() >= 9);
    let latency = server.get("latency_us").unwrap();
    assert!(latency.get("p99").and_then(Json::as_u64).unwrap() >= 1);

    handle.shutdown_and_join();
}

#[test]
fn request_ids_and_run_traces_round_trip() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    // Cold run: the server generates a correlation id and returns the
    // run's content address.
    let resp = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(resp.status, 200);
    let rid = resp
        .header("x-request-id")
        .expect("id on every response")
        .to_string();
    assert!(rid.starts_with("req-"), "generated id: {rid}");
    let key = resp
        .header("x-run-key")
        .expect("run key header")
        .to_string();
    assert_eq!(key.len(), 32, "run-key hex: {key}");

    // The trace endpoint returns a Chrome-trace JSON array carrying that
    // request id and the simulated component timeline.
    let trace = client.get(&format!("/v1/run/{key}/trace")).unwrap();
    assert_eq!(trace.status, 200);
    assert_eq!(trace.header("content-type"), Some("application/json"));
    let text = String::from_utf8(trace.body.clone()).unwrap();
    assert!(Json::parse(&text).is_some(), "trace must be valid JSON");
    assert!(text.trim_start().starts_with('['), "Chrome-trace array");
    assert!(text.contains(&format!("\"request_id\":\"{rid}\"")));
    assert!(text.contains("\"ph\":\"X\""));
    assert!(text.contains("\"outcome\":\"executed\""));
    assert!(
        text.contains("\"name\":\"gpu\""),
        "simulated component rows present"
    );

    // A warm hit with a client-supplied id: the id is honored end to end
    // and the retained trace keeps the simulated timeline.
    let warm = client
        .post_json_with_headers(
            "/v1/run",
            &run_body("rodinia/kmeans"),
            &[("X-Request-Id", "caller-7.warm")],
        )
        .unwrap();
    assert_eq!(warm.header("x-request-id"), Some("caller-7.warm"));
    assert_eq!(warm.header("x-run-key"), Some(key.as_str()));
    let text =
        String::from_utf8(client.get(&format!("/v1/run/{key}/trace")).unwrap().body).unwrap();
    assert!(text.contains("\"request_id\":\"caller-7.warm\""));
    assert!(text.contains("\"outcome\":\"memory_hit\""));
    assert!(
        text.contains("\"name\":\"gpu\""),
        "warm trace inherits the simulated timeline"
    );

    // A malformed inbound id is replaced, not echoed.
    let resp = client
        .get_with_headers("/healthz", &[("X-Request-Id", "bad id with spaces")])
        .unwrap();
    let echoed = resp.header("x-request-id").unwrap();
    assert!(echoed.starts_with("req-"), "replaced, got {echoed}");

    // Unknown keys 404, bad keys 400, wrong method 405.
    let missing = format!("/v1/run/{}/trace", "0".repeat(32));
    assert_eq!(client.get(&missing).unwrap().status, 404);
    assert_eq!(client.get("/v1/run/nothex/trace").unwrap().status, 400);
    let resp = client
        .post_json(&format!("/v1/run/{key}/trace"), &Json::Null)
        .unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));

    handle.shutdown_and_join();
}

#[test]
fn metrics_expose_prometheus_text_format() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());
    client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();

    let resp = client.get("/metrics?format=prometheus").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    let text = String::from_utf8(resp.body.clone()).unwrap();
    let samples = heteropipe_obs::expfmt::parse(&text)
        .unwrap_or_else(|e| panic!("exposition must validate: {e}\n{text}"));
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(value("heteropipe_engine_jobs_executed_total"), 1.0);
    assert!(value("heteropipe_server_requests_total") >= 1.0);
    assert!(
        value("heteropipe_server_request_latency_microseconds_count") >= 1.0,
        "server latency histogram populated"
    );
    assert!(samples.iter().any(|s| {
        s.name == "heteropipe_engine_cache_hits_total" && s.label("tier") == Some("memory")
    }));

    // Content negotiation: an Accept header selects the format too, and
    // the JSON document stays the default.
    let resp = client
        .get_with_headers("/metrics", &[("Accept", "text/plain")])
        .unwrap();
    assert!(String::from_utf8(resp.body).unwrap().starts_with("# HELP"));
    let resp = client.get("/metrics").unwrap();
    let v = resp.json().expect("default stays JSON");
    assert!(v.get("engine").is_some());

    handle.shutdown_and_join();
}

#[test]
fn injected_panic_is_retried_and_counted_in_metrics() {
    // One panic budget, generous retries: the run succeeds on a later
    // attempt and the recovery shows up in both metric formats.
    let retry = RetryPolicy {
        attempts: 5,
        base_ms: 0,
        cap_ms: 0,
    };
    let handle = start(faulty_engine("job.exec:err=panic:max=1", retry));
    let mut client = Client::new(handle.addr().to_string());

    let resp = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(resp.status, 200, "panic absorbed by retry");

    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let resilience = metrics.get("engine").unwrap().get("resilience").unwrap();
    assert_eq!(
        resilience.get("exec_retries").and_then(Json::as_u64),
        Some(1)
    );

    let text = client.get("/metrics?format=prometheus").unwrap();
    let samples = heteropipe_obs::expfmt::parse(&String::from_utf8(text.body).unwrap()).unwrap();
    let retries = samples
        .iter()
        .find(|s| s.name == "heteropipe_engine_exec_retries_total")
        .expect("retry counter exported");
    assert_eq!(retries.value, 1.0);
    let injected = samples
        .iter()
        .find(|s| s.name == "heteropipe_faults_injected_total")
        .expect("fault counter exported");
    assert_eq!(injected.label("site"), Some("job.exec"));
    assert_eq!(injected.label("kind"), Some("panic"));
    assert_eq!(injected.value, 1.0);

    handle.shutdown_and_join();
}

#[test]
fn quarantined_job_answers_503_with_retry_after() {
    // Every attempt panics and there are no retries: the first request
    // fails for real (500), poisoning the job; repeats fail fast (503)
    // instead of burning attempts on a job known to die.
    let handle = start(faulty_engine("job.exec:err=panic", RetryPolicy::NONE));
    let mut client = Client::new(handle.addr().to_string());

    let first = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(first.status, 500);
    let key = first.header("x-run-key").unwrap().to_string();

    let second = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(second.status, 503, "quarantined job fails fast");
    assert_eq!(second.header("retry-after"), Some("30"));
    assert_eq!(second.header("x-run-key"), Some(key.as_str()));
    assert!(String::from_utf8(second.body.clone())
        .unwrap()
        .contains("quarantined"));

    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let resilience = metrics.get("engine").unwrap().get("resilience").unwrap();
    assert_eq!(
        resilience.get("jobs_quarantined").and_then(Json::as_u64),
        Some(1)
    );

    handle.shutdown_and_join();
}

#[test]
fn open_breaker_sheds_api_routes_but_readiness_reports_it() {
    // A hair-trigger breaker over an engine that always fails: the first
    // real failure opens it, API routes shed, and the liveness/readiness
    // split tells the orchestrator to stop routing without restarting.
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown: std::time::Duration::from_secs(5),
            half_open_probes: 1,
        },
        ..ServerConfig::default()
    };
    let engine = faulty_engine("job.exec:err=panic", RetryPolicy::NONE);
    let handle = api::serve(cfg, Arc::new(engine)).unwrap();
    let mut client = Client::new(handle.addr().to_string());

    assert_eq!(client.get("/healthz/live").unwrap().status, 200);
    let ready = client.get("/healthz/ready").unwrap();
    assert_eq!(ready.status, 200);
    assert_eq!(
        ready.json().unwrap().get("status").and_then(Json::as_str),
        Some("ready")
    );

    let resp = client
        .post_json("/v1/run", &run_body("rodinia/kmeans"))
        .unwrap();
    assert_eq!(resp.status, 500, "real failure trips the breaker");

    // API routes shed with Retry-After (the cooldown) while open...
    let shed = client.get("/v1/benchmarks").unwrap();
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("5"));
    assert!(String::from_utf8(shed.body.clone())
        .unwrap()
        .contains("circuit breaker open"));

    // ...but probes and scrapes keep answering.
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    assert_eq!(client.get("/healthz/live").unwrap().status, 200);
    let ready = client.get("/healthz/ready").unwrap();
    assert_eq!(ready.status, 503, "unready while the breaker is open");
    assert_eq!(ready.header("retry-after"), Some("5"));
    let v = ready.json().unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("unready"));
    assert_eq!(v.get("breaker").and_then(Json::as_str), Some("open"));

    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let breaker = metrics.get("server").unwrap().get("breaker").unwrap();
    assert_eq!(breaker.get("state").and_then(Json::as_str), Some("open"));
    assert_eq!(breaker.get("opened").and_then(Json::as_u64), Some(1));
    assert!(breaker.get("shed").and_then(Json::as_u64).unwrap() >= 1);

    let text = client.get("/metrics?format=prometheus").unwrap();
    let samples = heteropipe_obs::expfmt::parse(&String::from_utf8(text.body).unwrap()).unwrap();
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(value("heteropipe_server_breaker_open"), 1.0);
    assert_eq!(value("heteropipe_server_breaker_opened_total"), 1.0);
    assert!(value("heteropipe_server_breaker_shed_total") >= 1.0);

    handle.shutdown_and_join();
}

#[test]
fn experiment_endpoint_renders_tables() {
    let handle = start(Engine::new().memory_cache_only());
    let mut client = Client::new(handle.addr().to_string());

    // Table 2 is static (the benchmark census): cheap and exact.
    let resp = client
        .post_json("/v1/experiments/table2", &Json::Obj(Vec::new()))
        .unwrap();
    assert_eq!(resp.status, 200);
    let v = resp.json().unwrap();
    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("table2"));
    let rendered = v.get("rendered").and_then(Json::as_str).unwrap();
    assert!(rendered.contains("Rodinia"), "census table lists suites");

    let resp = client
        .post_json("/v1/experiments/fig99", &Json::Obj(Vec::new()))
        .unwrap();
    assert_eq!(resp.status, 404, "unknown experiment name");

    handle.shutdown_and_join();
}
