//! # heteropipe-obs
//!
//! The workspace's observability backbone: every layer (engine, serve, the
//! harness binaries, the simulator's trace exporter) reports through the
//! primitives in this crate, so a single run can be attributed end to end —
//! which HTTP request asked for it, how long it waited, whether the cache
//! answered, and what the simulated components did picosecond by
//! picosecond. Everything is `std`-only, matching the workspace's
//! zero-dependency budget.
//!
//! * [`registry`] — a thread-safe metric registry (counters, gauges,
//!   histograms backed by [`heteropipe_sim::Histogram`]) with Prometheus
//!   text-format exposition;
//! * [`expfmt`] — an in-tree validator for that exposition format, used by
//!   the CI smoke check to assert `/metrics` actually parses;
//! * [`log`] — a leveled JSON-lines structured logger, configured through
//!   the `HETEROPIPE_LOG` environment variable, with a capture sink for
//!   tests;
//! * [`chrome`] — a Chrome-trace (`chrome://tracing` / Perfetto) JSON
//!   event builder plus the full-control-range JSON string escaper shared
//!   by the logger and the trace exporters;
//! * [`span`] — request correlation ids, wall-clock phase timers for the
//!   engine's job lifecycle (queue wait → cache probe → execute →
//!   persist), and the bounded [`span::TraceStore`] that serves
//!   `GET /v1/run/{key}/trace`;
//! * [`profile`] — the always-on hot-path phase profiler: atomic-counter
//!   wall-time attribution for the sim event loop and engine execute
//!   path, exposed as `/metrics` histograms and the `GET
//!   /v1/debug/profile` snapshot.

#![warn(missing_docs)]

pub mod chrome;
pub mod expfmt;
pub mod log;
pub mod profile;
pub mod registry;
pub mod span;

pub use chrome::{json_escape, TraceBuilder};
pub use log::Level;
pub use profile::{PhaseId, PhaseSnapshot};
pub use registry::{Counter, Gauge, HistogramHandle, MetricRegistry};
pub use span::{new_request_id, valid_request_id, JobTrace, Phase, PhaseTimer, TraceStore};
