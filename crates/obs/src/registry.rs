//! A thread-safe metric registry with Prometheus text-format exposition.
//!
//! Three metric kinds, mirroring the Prometheus data model: monotonic
//! [`Counter`]s, arbitrary [`Gauge`]s, and [`HistogramHandle`]s backed by
//! the workspace's power-of-two [`heteropipe_sim::Histogram`] (whose
//! bucket boundaries become the exposition's `le` thresholds). Handles are
//! cheap `Arc` clones; recording never takes the registry lock, only the
//! individual metric's own synchronization.
//!
//! [`MetricRegistry::render_prometheus`] emits the classic text exposition
//! format (`# HELP` / `# TYPE` comments, one sample per line) that
//! Prometheus, VictoriaMetrics, and friends scrape; the in-tree
//! [`crate::expfmt`] validator round-trips it in CI.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use heteropipe_sim::Histogram;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the absolute value (for snapshot-style registries that are
    /// rebuilt from another subsystem's counters at scrape time).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Stored as `f64` bits.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram of `u64` samples with power-of-two buckets.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.0.lock().unwrap().record(v);
    }

    /// Accumulates a whole recorded histogram (used to publish per-thread
    /// or per-subsystem recordings at scrape time).
    pub fn merge(&self, other: &Histogram) {
        self.0.lock().unwrap().merge(other);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().unwrap().clone()
    }
}

#[derive(Debug, Clone)]
enum Value {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

#[derive(Debug)]
struct Metric {
    labels: Vec<(String, String)>,
    value: Value,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: &'static str,
    metrics: Vec<Metric>,
}

/// The registry: named metric families, each holding one metric per label
/// set, rendered in registration order.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    families: Mutex<Vec<Family>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Value,
    ) -> Value {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        for (k, _) in labels {
            assert!(valid_label(k), "invalid label name: {k:?}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        let mut families = self.families.lock().unwrap();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric {name} registered with conflicting kinds"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    metrics: Vec::new(),
                });
                families.last_mut().unwrap()
            }
        };
        if let Some(m) = family.metrics.iter().find(|m| m.labels == labels) {
            return m.value.clone();
        }
        let value = make();
        family.metrics.push(Metric {
            labels,
            value: value.clone(),
        });
        value
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter with the given label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, "counter", labels, || {
            Value::Counter(Counter::default())
        }) {
            Value::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge with the given label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, "gauge", labels, || {
            Value::Gauge(Gauge::default())
        }) {
            Value::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramHandle {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a histogram with the given label set (e.g.
    /// a per-worker forward-latency distribution on a cluster coordinator).
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> HistogramHandle {
        match self.register(name, help, "histogram", labels, || {
            Value::Histogram(HistogramHandle::default())
        }) {
            Value::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for f in self.families.lock().unwrap().iter() {
            out.push_str(&format!("# HELP {} {}\n", f.name, escape_help(&f.help)));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind));
            for m in &f.metrics {
                match &m.value {
                    Value::Counter(c) => {
                        out.push_str(&sample(&f.name, &m.labels, None, c.get() as f64));
                    }
                    Value::Gauge(g) => {
                        out.push_str(&sample(&f.name, &m.labels, None, g.get()));
                    }
                    Value::Histogram(h) => {
                        render_histogram(&mut out, &f.name, &m.labels, &h.snapshot());
                    }
                }
            }
        }
        out
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn sample(name: &str, labels: &[(String, String)], extra: Option<(&str, &str)>, v: f64) -> String {
    let mut line = name.to_owned();
    let has_labels = !labels.is_empty() || extra.is_some();
    if has_labels {
        line.push('{');
        let mut first = true;
        for (k, val) in labels {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&format!("{k}=\"{}\"", escape_label_value(val)));
        }
        if let Some((k, val)) = extra {
            if !first {
                line.push(',');
            }
            line.push_str(&format!("{k}=\"{}\"", escape_label_value(val)));
        }
        line.push('}');
    }
    line.push(' ');
    line.push_str(&format_value(v));
    line.push('\n');
    line
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for (upper, count) in h.iter() {
        cumulative += count;
        if upper == u64::MAX {
            continue; // folded into +Inf below
        }
        out.push_str(&sample(
            &bucket_name,
            labels,
            Some(("le", &format!("{upper}"))),
            cumulative as f64,
        ));
    }
    out.push_str(&sample(
        &bucket_name,
        labels,
        Some(("le", "+Inf")),
        h.count() as f64,
    ));
    out.push_str(&sample(
        &format!("{name}_sum"),
        labels,
        None,
        h.sum() as f64,
    ));
    out.push_str(&sample(
        &format!("{name}_count"),
        labels,
        None,
        h.count() as f64,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_labels() {
        let r = MetricRegistry::new();
        let c = r.counter("jobs_total", "Jobs seen.");
        c.incr();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Re-registering the same family + labels returns the same handle.
        r.counter("jobs_total", "Jobs seen.").add(1);
        assert_eq!(c.get(), 4);

        let hits = r.counter_with("hits_total", "Cache hits.", &[("tier", "memory")]);
        hits.set(7);
        let g = r.gauge("in_flight", "Requests in flight.");
        g.set(2.0);

        let text = r.render_prometheus();
        assert!(text.contains("# HELP jobs_total Jobs seen.\n"));
        assert!(text.contains("# TYPE jobs_total counter\n"));
        assert!(text.contains("jobs_total 4\n"));
        assert!(text.contains("hits_total{tier=\"memory\"} 7\n"));
        assert!(text.contains("# TYPE in_flight gauge\n"));
        assert!(text.contains("in_flight 2\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = MetricRegistry::new();
        let h = r.histogram("latency_us", "Latency in microseconds.");
        for v in [1u64, 2, 3, 100] {
            h.observe(v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE latency_us histogram\n"));
        // Buckets are cumulative: 0/1 bucket holds 1, (1,2] adds one more...
        assert!(text.contains("latency_us_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("latency_us_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("latency_us_sum 106\n"));
        assert!(text.contains("latency_us_count 4\n"));
    }

    #[test]
    fn labeled_histograms_render_per_label_set() {
        let r = MetricRegistry::new();
        r.histogram_with("fwd_us", "Forward latency.", &[("worker", "a")])
            .observe(3);
        r.histogram_with("fwd_us", "Forward latency.", &[("worker", "b")])
            .observe(7);
        let text = r.render_prometheus();
        assert!(text.contains("fwd_us_count{worker=\"a\"} 1\n"), "{text}");
        assert!(text.contains("fwd_us_count{worker=\"b\"} 1\n"), "{text}");
        assert!(
            text.contains("fwd_us_bucket{worker=\"a\",le=\"4\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn merge_publishes_external_recordings() {
        let r = MetricRegistry::new();
        let mut local = Histogram::new();
        local.record(5);
        local.record(50);
        let h = r.histogram("lat", "Latency.");
        h.merge(&local);
        assert_eq!(h.snapshot().count(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn rejects_bad_names() {
        MetricRegistry::new().counter("9bad name", "nope");
    }

    #[test]
    #[should_panic(expected = "conflicting kinds")]
    fn rejects_kind_conflicts() {
        let r = MetricRegistry::new();
        r.counter("x", "a counter");
        r.gauge("x", "now a gauge");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricRegistry::new();
        r.counter_with("c_total", "c", &[("path", "a\"b\\c")])
            .incr();
        let text = r.render_prometheus();
        assert!(text.contains("path=\"a\\\"b\\\\c\""), "{text}");
    }
}
