//! A thread-safe metric registry with Prometheus text-format exposition.
//!
//! Three metric kinds, mirroring the Prometheus data model: monotonic
//! [`Counter`]s, arbitrary [`Gauge`]s, and [`HistogramHandle`]s backed by
//! the workspace's power-of-two [`heteropipe_sim::Histogram`] (whose
//! bucket boundaries become the exposition's `le` thresholds). Handles are
//! cheap `Arc` clones; recording never takes the registry lock, only the
//! individual metric's own synchronization.
//!
//! [`MetricRegistry::render_prometheus`] emits the classic text exposition
//! format (`# HELP` / `# TYPE` comments, one sample per line) that
//! Prometheus, VictoriaMetrics, and friends scrape; the in-tree
//! [`crate::expfmt`] validator round-trips it in CI.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use heteropipe_sim::Histogram;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the absolute value (for snapshot-style registries that are
    /// rebuilt from another subsystem's counters at scrape time).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Stored as `f64` bits.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram of `u64` samples with power-of-two buckets.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.0.lock().unwrap().record(v);
    }

    /// Accumulates a whole recorded histogram (used to publish per-thread
    /// or per-subsystem recordings at scrape time).
    pub fn merge(&self, other: &Histogram) {
        self.0.lock().unwrap().merge(other);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().unwrap().clone()
    }
}

#[derive(Debug, Clone)]
enum Value {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

/// A metric's value at snapshot time.
// The histogram variant carries its full bucket array inline; snapshots
// are short-lived scrape-sized vectors, so the size skew is cheaper
// than boxing every percentile read.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's current value.
    Gauge(f64),
    /// A point-in-time copy of a histogram's samples.
    Histogram(Histogram),
}

/// One metric (one label set) at snapshot time.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Labels in registration order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// One family at snapshot time.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// The family name.
    pub name: String,
    /// The family's help text.
    pub help: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Every metric in the family, in registration order.
    pub metrics: Vec<MetricSnapshot>,
}

#[derive(Debug)]
struct Metric {
    labels: Vec<(String, String)>,
    value: Value,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: &'static str,
    metrics: Vec<Metric>,
}

/// The registry: named metric families, each holding one metric per label
/// set, rendered in registration order.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    families: Mutex<Vec<Family>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Value,
    ) -> Value {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        for (k, _) in labels {
            assert!(valid_label(k), "invalid label name: {k:?}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        let mut families = self.families.lock().unwrap();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric {name} registered with conflicting kinds"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    metrics: Vec::new(),
                });
                families.last_mut().unwrap()
            }
        };
        if let Some(m) = family.metrics.iter().find(|m| m.labels == labels) {
            return m.value.clone();
        }
        let value = make();
        family.metrics.push(Metric {
            labels,
            value: value.clone(),
        });
        value
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter with the given label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, "counter", labels, || {
            Value::Counter(Counter::default())
        }) {
            Value::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge with the given label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, "gauge", labels, || {
            Value::Gauge(Gauge::default())
        }) {
            Value::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramHandle {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a histogram with the given label set (e.g.
    /// a per-worker forward-latency distribution on a cluster coordinator).
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> HistogramHandle {
        match self.register(name, help, "histogram", labels, || {
            Value::Histogram(HistogramHandle::default())
        }) {
            Value::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for f in self.families.lock().unwrap().iter() {
            out.push_str(&format!("# HELP {} {}\n", f.name, escape_help(&f.help)));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind));
            for m in &f.metrics {
                match &m.value {
                    Value::Counter(c) => {
                        out.push_str(&sample(&f.name, &m.labels, None, c.get() as f64));
                    }
                    Value::Gauge(g) => {
                        out.push_str(&sample(&f.name, &m.labels, None, g.get()));
                    }
                    Value::Histogram(h) => {
                        render_histogram(&mut out, &f.name, &m.labels, &h.snapshot());
                    }
                }
            }
        }
        out
    }

    /// A point-in-time copy of every family, in registration order. This
    /// is the single source both renderings ([`render_prometheus`] walks
    /// the same structure live, [`render_json`] is derived from it) and
    /// the transfer format [`merge`] copies.
    ///
    /// [`render_prometheus`]: Self::render_prometheus
    /// [`render_json`]: Self::render_json
    /// [`merge`]: Self::merge
    pub fn snapshot(&self) -> Vec<FamilySnapshot> {
        self.families
            .lock()
            .unwrap()
            .iter()
            .map(|f| FamilySnapshot {
                name: f.name.clone(),
                help: f.help.clone(),
                kind: f.kind,
                metrics: f
                    .metrics
                    .iter()
                    .map(|m| MetricSnapshot {
                        labels: m.labels.clone(),
                        value: match &m.value {
                            Value::Counter(c) => MetricValue::Counter(c.get()),
                            Value::Gauge(g) => MetricValue::Gauge(g.get()),
                            Value::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect()
    }

    /// Folds a snapshot of `other` into this registry, appending
    /// `extra_labels` to every copied metric (the cluster coordinator
    /// merges each worker's scraped registry under a `worker` label this
    /// way). Counters add, gauges overwrite, histograms accumulate. An
    /// extra label already present on a metric is left as-is. Families
    /// whose kind conflicts with an existing family here are skipped
    /// rather than panicking (scraped data is not trusted); the return
    /// value is how many families were skipped.
    pub fn merge(&self, other: &MetricRegistry, extra_labels: &[(&str, &str)]) -> usize {
        let mut skipped = 0;
        for f in other.snapshot() {
            let conflict = {
                let mine = self.families.lock().unwrap();
                mine.iter().any(|x| x.name == f.name && x.kind != f.kind)
            };
            if conflict {
                skipped += 1;
                continue;
            }
            for m in &f.metrics {
                let mut labels: Vec<(&str, &str)> = m
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                for &(k, v) in extra_labels {
                    if !labels.iter().any(|&(lk, _)| lk == k) {
                        labels.push((k, v));
                    }
                }
                match &m.value {
                    MetricValue::Counter(v) => {
                        self.counter_with(&f.name, &f.help, &labels).add(*v);
                    }
                    MetricValue::Gauge(v) => {
                        self.gauge_with(&f.name, &f.help, &labels).set(*v);
                    }
                    MetricValue::Histogram(h) => {
                        self.histogram_with(&f.name, &f.help, &labels).merge(h);
                    }
                }
            }
        }
        skipped
    }

    /// Rebuilds a registry from a Prometheus text exposition (a worker's
    /// `/metrics?format=prometheus` scrape). Counter and gauge samples
    /// copy over directly; histogram families are reconstructed by
    /// de-cumulating the `le` buckets and replaying each bucket's delta at
    /// its upper bound — exact bucket-for-bucket when the source uses this
    /// crate's power-of-two boundaries, while `_sum` becomes the folded
    /// upper-bound sum (an overestimate of up to 2x). Untyped samples
    /// become gauges.
    pub fn from_exposition(text: &str) -> Result<MetricRegistry, String> {
        let exp = crate::expfmt::parse_full(text)?;
        let r = MetricRegistry::new();
        let help = |name: &str| exp.helps.get(name).cloned().unwrap_or_default();
        // A histogram sample's owning family, if any.
        let hist_family = |name: &str| -> Option<String> {
            ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|f| exp.types.get(*f).map(String::as_str) == Some("histogram"))
                    .map(str::to_owned)
            })
        };
        // Histogram label groups already reconstructed, keyed by family +
        // labels-minus-le.
        let mut done: Vec<(String, Vec<(String, String)>)> = Vec::new();
        for s in &exp.samples {
            let labels: Vec<(&str, &str)> = s
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match hist_family(&s.name) {
                Some(family) => {
                    let key: Vec<(String, String)> = s
                        .labels
                        .iter()
                        .filter(|(k, _)| k != "le")
                        .cloned()
                        .collect();
                    if done.iter().any(|(f, k)| *f == family && *k == key) {
                        continue;
                    }
                    done.push((family.clone(), key.clone()));
                    let bucket_name = format!("{family}_bucket");
                    let mut h = Histogram::new();
                    let mut cumulative = 0.0f64;
                    for b in exp.samples.iter().filter(|b| {
                        b.name == bucket_name
                            && b.labels
                                .iter()
                                .filter(|(k, _)| k != "le")
                                .cloned()
                                .collect::<Vec<_>>()
                                == key
                    }) {
                        let upper = match b.label("le") {
                            Some("+Inf") => u64::MAX,
                            Some(le) => le
                                .parse::<f64>()
                                .map_err(|_| format!("histogram {family}: bad le {le:?}"))?
                                .ceil() as u64,
                            None => continue,
                        };
                        let delta = (b.value - cumulative).max(0.0) as u64;
                        cumulative = b.value;
                        h.record_n(upper, delta);
                    }
                    let key_refs: Vec<(&str, &str)> =
                        key.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                    r.histogram_with(&family, &help(&family), &key_refs)
                        .merge(&h);
                }
                None => match exp.types.get(&s.name).map(String::as_str) {
                    Some("histogram") => continue, // bare family-name sample; not ours
                    Some("counter") => {
                        r.counter_with(&s.name, &help(&s.name), &labels)
                            .add(s.value.max(0.0) as u64);
                    }
                    _ => r.gauge_with(&s.name, &help(&s.name), &labels).set(s.value),
                },
            }
        }
        Ok(r)
    }

    /// Renders every family as one JSON object — the same metric set as
    /// [`render_prometheus`](Self::render_prometheus) (the parity test in
    /// this module keeps the two from drifting), shaped as
    /// `{"families":[{"name","kind","help","metrics":[{"labels",...}]}]}`.
    /// Histogram metrics carry `count`/`sum`/`mean`/`p50`/`p99`/`max` and
    /// their non-empty buckets.
    pub fn render_json(&self) -> String {
        use crate::chrome::json_escape;
        let mut out = String::from("{\"families\":[");
        for (fi, f) in self.snapshot().iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"help\":\"{}\",\"metrics\":[",
                json_escape(&f.name),
                f.kind,
                json_escape(&f.help)
            ));
            for (mi, m) in f.metrics.iter().enumerate() {
                if mi > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (li, (k, v)) in m.labels.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
                }
                out.push('}');
                match &m.value {
                    MetricValue::Counter(v) => out.push_str(&format!(",\"value\":{v}")),
                    MetricValue::Gauge(v) => {
                        out.push_str(&format!(",\"value\":{}", format_value(*v)));
                    }
                    MetricValue::Histogram(h) => {
                        out.push_str(&format!(
                            ",\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\
                             \"max\":{},\"buckets\":[",
                            h.count(),
                            h.sum(),
                            h.mean(),
                            h.percentile(0.50),
                            h.percentile(0.99),
                            h.max()
                        ));
                        let mut first = true;
                        for (upper, count) in h.iter() {
                            if !first {
                                out.push(',');
                            }
                            first = false;
                            let le = if upper == u64::MAX {
                                "+Inf".to_owned()
                            } else {
                                upper.to_string()
                            };
                            out.push_str(&format!("{{\"le\":\"{le}\",\"count\":{count}}}"));
                        }
                        out.push(']');
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn sample(name: &str, labels: &[(String, String)], extra: Option<(&str, &str)>, v: f64) -> String {
    let mut line = name.to_owned();
    let has_labels = !labels.is_empty() || extra.is_some();
    if has_labels {
        line.push('{');
        let mut first = true;
        for (k, val) in labels {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&format!("{k}=\"{}\"", escape_label_value(val)));
        }
        if let Some((k, val)) = extra {
            if !first {
                line.push(',');
            }
            line.push_str(&format!("{k}=\"{}\"", escape_label_value(val)));
        }
        line.push('}');
    }
    line.push(' ');
    line.push_str(&format_value(v));
    line.push('\n');
    line
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for (upper, count) in h.iter() {
        cumulative += count;
        if upper == u64::MAX {
            continue; // folded into +Inf below
        }
        out.push_str(&sample(
            &bucket_name,
            labels,
            Some(("le", &format!("{upper}"))),
            cumulative as f64,
        ));
    }
    out.push_str(&sample(
        &bucket_name,
        labels,
        Some(("le", "+Inf")),
        h.count() as f64,
    ));
    out.push_str(&sample(
        &format!("{name}_sum"),
        labels,
        None,
        h.sum() as f64,
    ));
    out.push_str(&sample(
        &format!("{name}_count"),
        labels,
        None,
        h.count() as f64,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_labels() {
        let r = MetricRegistry::new();
        let c = r.counter("jobs_total", "Jobs seen.");
        c.incr();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Re-registering the same family + labels returns the same handle.
        r.counter("jobs_total", "Jobs seen.").add(1);
        assert_eq!(c.get(), 4);

        let hits = r.counter_with("hits_total", "Cache hits.", &[("tier", "memory")]);
        hits.set(7);
        let g = r.gauge("in_flight", "Requests in flight.");
        g.set(2.0);

        let text = r.render_prometheus();
        assert!(text.contains("# HELP jobs_total Jobs seen.\n"));
        assert!(text.contains("# TYPE jobs_total counter\n"));
        assert!(text.contains("jobs_total 4\n"));
        assert!(text.contains("hits_total{tier=\"memory\"} 7\n"));
        assert!(text.contains("# TYPE in_flight gauge\n"));
        assert!(text.contains("in_flight 2\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = MetricRegistry::new();
        let h = r.histogram("latency_us", "Latency in microseconds.");
        for v in [1u64, 2, 3, 100] {
            h.observe(v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE latency_us histogram\n"));
        // Buckets are cumulative: 0/1 bucket holds 1, (1,2] adds one more...
        assert!(text.contains("latency_us_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("latency_us_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("latency_us_sum 106\n"));
        assert!(text.contains("latency_us_count 4\n"));
    }

    #[test]
    fn labeled_histograms_render_per_label_set() {
        let r = MetricRegistry::new();
        r.histogram_with("fwd_us", "Forward latency.", &[("worker", "a")])
            .observe(3);
        r.histogram_with("fwd_us", "Forward latency.", &[("worker", "b")])
            .observe(7);
        let text = r.render_prometheus();
        assert!(text.contains("fwd_us_count{worker=\"a\"} 1\n"), "{text}");
        assert!(text.contains("fwd_us_count{worker=\"b\"} 1\n"), "{text}");
        assert!(
            text.contains("fwd_us_bucket{worker=\"a\",le=\"4\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn merge_publishes_external_recordings() {
        let r = MetricRegistry::new();
        let mut local = Histogram::new();
        local.record(5);
        local.record(50);
        let h = r.histogram("lat", "Latency.");
        h.merge(&local);
        assert_eq!(h.snapshot().count(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn rejects_bad_names() {
        MetricRegistry::new().counter("9bad name", "nope");
    }

    #[test]
    #[should_panic(expected = "conflicting kinds")]
    fn rejects_kind_conflicts() {
        let r = MetricRegistry::new();
        r.counter("x", "a counter");
        r.gauge("x", "now a gauge");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricRegistry::new();
        r.counter_with("c_total", "c", &[("path", "a\"b\\c")])
            .incr();
        let text = r.render_prometheus();
        assert!(text.contains("path=\"a\\\"b\\\\c\""), "{text}");
    }

    fn sample_registry() -> MetricRegistry {
        let r = MetricRegistry::new();
        r.counter("jobs_total", "Jobs seen.").add(3);
        r.counter_with("hits_total", "Hits.", &[("tier", "memory")])
            .add(5);
        r.counter_with("hits_total", "Hits.", &[("tier", "disk")])
            .add(7);
        r.gauge("in_flight", "In flight.").set(2.0);
        let h = r.histogram_with("lat_us", "Latency.", &[("worker", "a")]);
        for v in [1u64, 3, 900] {
            h.observe(v);
        }
        r
    }

    /// The JSON and Prometheus renderings must expose the same metric
    /// set — every (family, label set) in the snapshot (which
    /// `render_json` is derived from) appears in the parsed Prometheus
    /// exposition and vice versa, so the two formats can't silently
    /// drift.
    #[test]
    fn json_and_prometheus_expose_the_same_metric_set() {
        let r = sample_registry();
        let exp = crate::expfmt::parse_full(&r.render_prometheus()).unwrap();
        let snap = r.snapshot();

        // Snapshot → Prometheus: every family is typed, every metric has
        // a sample with exactly its label set.
        for f in &snap {
            assert_eq!(
                exp.types.get(&f.name).map(String::as_str),
                Some(f.kind),
                "family {} missing or mistyped in Prometheus",
                f.name
            );
            for m in &f.metrics {
                let want = if f.kind == "histogram" {
                    format!("{}_count", f.name)
                } else {
                    f.name.clone()
                };
                assert!(
                    exp.samples
                        .iter()
                        .any(|s| s.name == want && s.labels == m.labels),
                    "metric {want} {:?} absent from Prometheus",
                    m.labels
                );
            }
        }

        // Prometheus → snapshot: every sample maps back to a snapshot
        // metric (histogram suffixes fold to their family, minus `le`).
        for s in &exp.samples {
            let (family, labels): (&str, Vec<(String, String)>) = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| {
                    s.name
                        .strip_suffix(suf)
                        .filter(|f| exp.types.get(*f).map(String::as_str) == Some("histogram"))
                })
                .map(|f| {
                    (
                        f,
                        s.labels
                            .iter()
                            .filter(|(k, _)| k != "le")
                            .cloned()
                            .collect(),
                    )
                })
                .unwrap_or((s.name.as_str(), s.labels.clone()));
            assert!(
                snap.iter()
                    .any(|f| f.name == family && f.metrics.iter().any(|m| m.labels == labels)),
                "Prometheus sample {} {:?} absent from snapshot",
                s.name,
                s.labels
            );
        }

        // And the JSON rendering carries every snapshot entry.
        let json = r.render_json();
        for f in &snap {
            assert!(json.contains(&format!("\"name\":\"{}\"", f.name)), "{json}");
            for m in &f.metrics {
                for (k, v) in &m.labels {
                    assert!(json.contains(&format!("\"{k}\":\"{v}\"")), "{json}");
                }
            }
        }
    }

    #[test]
    fn merge_appends_worker_label_and_accumulates() {
        let fed = MetricRegistry::new();
        fed.counter("own_total", "Coordinator's own.").add(1);
        let skipped = fed.merge(&sample_registry(), &[("worker", "127.0.0.1:9001")]);
        assert_eq!(skipped, 0);
        let text = fed.render_prometheus();
        assert!(text.contains("own_total 1\n"), "{text}");
        assert!(
            text.contains("jobs_total{worker=\"127.0.0.1:9001\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("hits_total{tier=\"disk\",worker=\"127.0.0.1:9001\"} 7\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_count{worker=\"a\"} 3\n"),
            "an existing worker label is preserved, not overwritten: {text}"
        );

        // Merging the same snapshot again accumulates counters.
        fed.merge(&sample_registry(), &[("worker", "127.0.0.1:9001")]);
        assert!(fed
            .render_prometheus()
            .contains("jobs_total{worker=\"127.0.0.1:9001\"} 6\n"));

        // A kind conflict skips the family instead of panicking.
        let bad = MetricRegistry::new();
        bad.gauge("own_total", "Now a gauge.").set(9.0);
        assert_eq!(fed.merge(&bad, &[]), 1);
    }

    #[test]
    fn from_exposition_round_trips_a_scrape() {
        let r = sample_registry();
        let text = r.render_prometheus();
        let rebuilt = MetricRegistry::from_exposition(&text).unwrap();
        // Counters and gauges copy exactly; histogram buckets land in the
        // same power-of-two buckets, so a re-render is bucket-identical.
        let rebuilt_text = rebuilt.render_prometheus();
        assert!(rebuilt_text.contains("jobs_total 3\n"), "{rebuilt_text}");
        assert!(
            rebuilt_text.contains("hits_total{tier=\"memory\"} 5\n"),
            "{rebuilt_text}"
        );
        assert!(rebuilt_text.contains("in_flight 2\n"), "{rebuilt_text}");
        for line in text.lines().filter(|l| l.starts_with("lat_us_bucket")) {
            assert!(rebuilt_text.contains(line), "{line} missing in rebuild");
        }
        assert!(
            rebuilt_text.contains("lat_us_count{worker=\"a\"} 3\n"),
            "{rebuilt_text}"
        );
        // The rebuilt exposition still validates.
        crate::expfmt::parse(&rebuilt_text).unwrap();
        assert!(MetricRegistry::from_exposition("garbage {{{").is_err());
    }
}
