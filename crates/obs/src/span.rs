//! Request correlation ids, job-lifecycle phase timing, and the bounded
//! trace store behind `GET /v1/run/{key}/trace`.
//!
//! The engine wraps every job in a [`PhaseTimer`] that records the
//! wall-clock lifecycle — queue wait → cache probe → execute → persist —
//! as [`Phase`]s. Together with the simulated component timeline (the
//! `TaskSpan` events rendered by `heteropipe::trace::span_events`) they
//! form a [`JobTrace`], which renders to a single Chrome-trace JSON array:
//! pid 0 carries the engine's wall-clock phases, pid 1 the simulated
//! component timeline in simulated microseconds.
//!
//! [`TraceStore`] keeps the most recent traces keyed by run-key hex, FIFO
//! evicting past its capacity. A warm cache hit produces a trace with no
//! execute-time simulated events; inserting it *inherits* the previously
//! rendered simulated timeline for the same key, so the trace endpoint
//! stays complete across hits while the request id and phase timings
//! reflect the latest request.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::chrome::{render_complete, TraceBuilder};

static REQ_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Generates a process-unique request correlation id, `req-` followed by
/// 20 hex characters mixing wall-clock nanoseconds, the process id, and a
/// process-wide counter.
pub fn new_request_id() -> String {
    let n = REQ_COUNTER.fetch_add(1, Ordering::Relaxed);
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mix = t.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
        ^ (u64::from(std::process::id()) << 32)
        ^ n.wrapping_mul(0xff51_afd7_ed55_8ccd);
    format!("req-{mix:016x}{:04x}", n & 0xffff)
}

/// Whether `s` is acceptable as an inbound `X-Request-Id`: 1–64
/// characters, ASCII alphanumerics plus `-`, `_`, and `.` only. Anything
/// else is replaced with a freshly generated id rather than echoed into
/// logs and headers.
pub fn valid_request_id(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// One timed wall-clock phase of a job's lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase name (`queue`, `cache_probe`, `execute`, `persist`).
    pub name: String,
    /// Start offset from job submission, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Records [`Phase`]s against a single origin instant, optionally offset
/// by time already spent queued before the timer existed.
#[derive(Debug)]
pub struct PhaseTimer {
    origin: Instant,
    offset_ns: u64,
    phases: Vec<Phase>,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        PhaseTimer::new()
    }
}

impl PhaseTimer {
    /// A timer whose origin is now.
    pub fn new() -> Self {
        PhaseTimer {
            origin: Instant::now(),
            offset_ns: 0,
            phases: Vec::new(),
        }
    }

    /// A timer for a job that already waited `queue_ns` in the scheduler's
    /// queue: records a `queue` phase covering `[0, queue_ns)` and offsets
    /// every subsequent phase past it.
    pub fn with_queue(queue_ns: u64) -> Self {
        let mut t = PhaseTimer::new();
        t.offset_ns = queue_ns;
        if queue_ns > 0 {
            t.phases.push(Phase {
                name: "queue".to_owned(),
                start_ns: 0,
                dur_ns: queue_ns,
            });
        }
        t
    }

    fn now_ns(&self) -> u64 {
        self.offset_ns + self.origin.elapsed().as_nanos() as u64
    }

    /// Runs `f`, recording it as phase `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start_ns = self.now_ns();
        let out = f();
        let end_ns = self.now_ns();
        self.phases.push(Phase {
            name: name.to_owned(),
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
        });
        out
    }

    /// The phases recorded so far, in recording order.
    pub fn finish(self) -> Vec<Phase> {
        self.phases
    }
}

/// Everything known about one executed (or cache-served) job, renderable
/// as a Chrome-trace JSON array.
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// Run-key hex — the trace store key and `/v1/run/{key}/trace` path
    /// segment.
    pub key_hex: String,
    /// Benchmark name, for event categories.
    pub benchmark: String,
    /// Correlation id of the request that produced this trace, if any.
    pub request_id: Option<String>,
    /// How the job concluded: `executed`, `memory_hit`, `disk_hit`, or
    /// `failed`.
    pub outcome: String,
    /// Wall-clock lifecycle phases (pid 0 of the rendered trace).
    pub phases: Vec<Phase>,
    /// Pre-rendered Chrome events for the simulated component timeline
    /// (pid 1), produced by `heteropipe::trace::span_events` at execution
    /// time. Empty for cache hits until inheritance fills it in.
    pub sim_events: Vec<String>,
}

impl JobTrace {
    /// Renders the full Chrome-trace JSON array: metadata rows, the
    /// engine's wall-clock phases (pid 0, microsecond timestamps), then
    /// the simulated component events (pid 1).
    pub fn render(&self) -> String {
        let mut b = TraceBuilder::new();
        // A trace with no wall-clock phases (the coordinator's stitched
        // cluster traces carry everything pre-rendered in `sim_events`,
        // with their own lane metadata) skips the engine lane labels so
        // pid 0 isn't claimed by an empty process.
        if !self.phases.is_empty() {
            b.process_name(0, "heteropipe-engine");
            b.thread_name(0, 0, "job lifecycle");
        }
        let req = self.request_id.as_deref().unwrap_or("-");
        for p in &self.phases {
            b.push_raw(render_complete(
                0,
                0,
                &p.name,
                &self.benchmark,
                p.start_ns as f64 / 1_000.0,
                // Chrome drops zero-duration complete events; clamp like
                // the simulator's exporter does.
                (p.dur_ns as f64 / 1_000.0).max(0.001),
                &[
                    ("request_id", req),
                    ("run_key", &self.key_hex),
                    ("outcome", &self.outcome),
                ],
            ));
        }
        for e in &self.sim_events {
            b.push_raw(e.clone());
        }
        b.build()
    }
}

#[derive(Default)]
struct StoreInner {
    order: VecDeque<String>,
    map: HashMap<String, JobTrace>,
}

/// A bounded, thread-safe store of the most recent [`JobTrace`]s, keyed
/// by run-key hex. Inserting past capacity evicts the oldest key.
pub struct TraceStore {
    cap: usize,
    inner: Mutex<StoreInner>,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("cap", &self.cap)
            .field("len", &self.len())
            .finish()
    }
}

impl TraceStore {
    /// A store holding at most `cap` traces (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        TraceStore {
            cap: cap.max(1),
            inner: Mutex::new(StoreInner::default()),
        }
    }

    /// Inserts `trace`, replacing any existing trace for the same key. A
    /// trace with no simulated events (a cache hit) inherits the existing
    /// entry's simulated timeline, so warm hits keep the component-level
    /// view while refreshing request id, phases, and outcome.
    pub fn insert(&self, mut trace: JobTrace) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(existing) = inner.map.get(&trace.key_hex) {
            if trace.sim_events.is_empty() && !existing.sim_events.is_empty() {
                trace.sim_events = existing.sim_events.clone();
            }
        } else {
            inner.order.push_back(trace.key_hex.clone());
            while inner.order.len() > self.cap {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
        inner.map.insert(trace.key_hex.clone(), trace);
    }

    /// The stored trace for `key_hex`, if present.
    pub fn get(&self, key_hex: &str) -> Option<JobTrace> {
        self.inner.lock().unwrap().map.get(key_hex).cloned()
    }

    /// Renders the stored trace for `key_hex` to Chrome-trace JSON.
    pub fn render(&self, key_hex: &str) -> Option<String> {
        self.get(key_hex).map(|t| t.render())
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_valid() {
        let a = new_request_id();
        let b = new_request_id();
        assert_ne!(a, b);
        assert!(a.starts_with("req-") && a.len() == 4 + 20, "{a}");
        assert!(valid_request_id(&a));
        assert!(valid_request_id("client-supplied_id.42"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id(&"x".repeat(65)));
        assert!(!valid_request_id("bad\"quote"));
    }

    #[test]
    fn phase_timer_offsets_queue_wait() {
        let mut t = PhaseTimer::with_queue(5_000);
        t.time("cache_probe", || {});
        let out = t.time("execute", || 42);
        assert_eq!(out, 42);
        let phases = t.finish();
        assert_eq!(phases[0].name, "queue");
        assert_eq!(phases[0].start_ns, 0);
        assert_eq!(phases[0].dur_ns, 5_000);
        assert_eq!(phases[1].name, "cache_probe");
        assert!(phases[1].start_ns >= 5_000, "phases start after queue");
        assert_eq!(phases[2].name, "execute");
        assert!(phases[2].start_ns >= phases[1].start_ns + phases[1].dur_ns);
        assert!(PhaseTimer::with_queue(0).finish().is_empty());
    }

    fn trace(key: &str, req: &str, sim: Vec<String>) -> JobTrace {
        JobTrace {
            key_hex: key.to_owned(),
            benchmark: "bfs".to_owned(),
            request_id: Some(req.to_owned()),
            outcome: if sim.is_empty() {
                "memory_hit"
            } else {
                "executed"
            }
            .to_owned(),
            phases: vec![Phase {
                name: "execute".to_owned(),
                start_ns: 1_500,
                dur_ns: 0,
            }],
            sim_events: sim,
        }
    }

    #[test]
    fn render_carries_request_id_and_both_pids() {
        let sim =
            vec!["{\"name\":\"k\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":0,\"dur\":3}".to_owned()];
        let json = trace("ab12", "req-x", sim).render();
        assert!(json.contains("\"request_id\":\"req-x\""));
        assert!(json.contains("\"run_key\":\"ab12\""));
        assert!(json.contains("\"pid\":1"), "sim events spliced in");
        assert!(json.contains("\"ts\":1.5"), "ns converted to us");
        assert!(json.contains("\"dur\":0.001"), "zero durations clamped");
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn store_inherits_sim_events_and_evicts_fifo() {
        let store = TraceStore::new(2);
        let sim =
            vec!["{\"name\":\"k\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":1}".to_owned()];
        store.insert(trace("k1", "req-cold", sim.clone()));
        // Warm hit: no sim events of its own, must inherit but refresh id.
        store.insert(trace("k1", "req-warm", Vec::new()));
        let t = store.get("k1").unwrap();
        assert_eq!(t.request_id.as_deref(), Some("req-warm"));
        assert_eq!(t.sim_events, sim);
        assert_eq!(t.outcome, "memory_hit");

        store.insert(trace("k2", "r2", Vec::new()));
        store.insert(trace("k3", "r3", Vec::new()));
        assert_eq!(store.len(), 2);
        assert!(store.get("k1").is_none(), "oldest evicted");
        assert!(store.render("k3").is_some());
        assert!(store.render("missing").is_none());
        assert!(!store.is_empty());
    }

    /// Bounded eviction holds under concurrent writers: with many threads
    /// hammering inserts (fresh keys and re-inserts), the store never
    /// exceeds its capacity and every surviving key renders.
    #[test]
    fn bounded_eviction_under_concurrent_writers() {
        const CAP: usize = 16;
        const THREADS: usize = 8;
        const PER_THREAD: usize = 200;
        let store = TraceStore::new(CAP);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let store = &store;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // A mix of unique keys and cross-thread re-inserts
                        // (every thread rewrites the shared `hot` key).
                        let key = if i % 5 == 0 {
                            "hot".to_owned()
                        } else {
                            format!("k{t}-{i}")
                        };
                        store.insert(trace(&key, &format!("req-{t}-{i}"), Vec::new()));
                        assert!(
                            store.len() <= CAP,
                            "store grew past capacity mid-insert: {}",
                            store.len()
                        );
                    }
                });
            }
        });
        assert_eq!(store.len(), CAP, "store ends exactly full");
        // Whatever survived is coherent: present in the map and renders.
        let survivors: Vec<String> = {
            let inner = store.inner.lock().unwrap();
            assert_eq!(inner.order.len(), inner.map.len(), "order tracks map");
            inner.order.iter().cloned().collect()
        };
        for key in survivors {
            assert!(store.render(&key).is_some(), "{key} in order but not map");
        }
    }
}
