//! Chrome-trace JSON event building, shared by every trace exporter.
//!
//! The Chrome tracing format (`chrome://tracing`, Perfetto) is a flat JSON
//! array of event objects. [`TraceBuilder`] accumulates pre-rendered event
//! objects and joins them into that array; the simulator's task-span
//! exporter (`heteropipe::trace`) and the engine's job-lifecycle traces
//! both render through it, so one run's wall-clock and simulated timelines
//! land in a single viewable file.
//!
//! [`json_escape`] is the one JSON string escaper in the workspace: it
//! covers the full control range (U+0000..U+001F), not just quotes and
//! backslashes, so stage names containing stray control characters still
//! produce valid JSON.

use std::fmt::Write as _;

/// Escapes `s` for embedding inside a JSON string literal: `"`, `\`, and
/// every control character in U+0000..U+001F (common ones as their
/// two-character shorthands, the rest as `\u00XX`).
///
/// # Examples
///
/// ```
/// use heteropipe_obs::json_escape;
/// assert_eq!(json_escape("a\"b"), "a\\\"b");
/// assert_eq!(json_escape("line\nbreak"), "line\\nbreak");
/// assert_eq!(json_escape("bell\u{7}"), "bell\\u0007");
/// ```
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Accumulates Chrome-trace events and renders the final JSON array.
///
/// Events are stored as individually rendered JSON objects so callers can
/// also pass pre-rendered events through ([`push_raw`](Self::push_raw)) —
/// that is how the engine splices a run's simulated component timeline
/// (rendered once, at execution time) into every subsequent trace of the
/// same cached run.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    events: Vec<String>,
}

impl TraceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Number of events accumulated so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a pre-rendered event object (must be a complete JSON object,
    /// no trailing comma).
    pub fn push_raw(&mut self, event: String) {
        self.events.push(event);
    }

    /// Adds a `thread_name` metadata event.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Adds a `process_name` metadata event.
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Adds a complete ("X") event. Timestamps and durations are in
    /// microseconds, per the trace format.
    pub fn complete(&mut self, pid: u32, tid: u32, name: &str, cat: &str, ts_us: f64, dur_us: f64) {
        self.events
            .push(render_complete(pid, tid, name, cat, ts_us, dur_us, &[]));
    }

    /// Adds a complete event carrying `args` key/value pairs.
    #[allow(clippy::too_many_arguments)] // one parameter per trace-event field
    pub fn complete_with_args(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, &str)],
    ) {
        self.events
            .push(render_complete(pid, tid, name, cat, ts_us, dur_us, args));
    }

    /// Consumes the builder, yielding the individually rendered event
    /// objects (for callers that store events and assemble arrays later,
    /// like the engine's trace store).
    pub fn into_events(self) -> Vec<String> {
        self.events
    }

    /// Renders the accumulated events as a Chrome-trace JSON array.
    pub fn build(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str("  ");
            out.push_str(e);
            out.push_str(if i + 1 == self.events.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("]\n");
        out
    }
}

/// Renders one complete event object (exposed for exporters that keep
/// their own event lists, like the engine's [`crate::span::TraceStore`]).
pub fn render_complete(
    pid: u32,
    tid: u32,
    name: &str,
    cat: &str,
    ts_us: f64,
    dur_us: f64,
    args: &[(&str, &str)],
) -> String {
    let mut out = format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
         \"ts\":{ts_us},\"dur\":{dur_us}",
        json_escape(name),
        json_escape(cat),
    );
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push('}');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_full_control_range() {
        for b in 0u32..0x20 {
            let c = char::from_u32(b).unwrap();
            let escaped = json_escape(&c.to_string());
            assert!(
                escaped.starts_with('\\'),
                "control {b:#x} must be escaped, got {escaped:?}"
            );
            assert!(
                escaped.chars().all(|c| (c as u32) >= 0x20),
                "no raw control bytes may survive"
            );
        }
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("q\"b\\s"), "q\\\"b\\\\s");
        assert_eq!(json_escape("\u{1}\u{1f}"), "\\u0001\\u001f");
    }

    #[test]
    fn builds_wellformed_array() {
        let mut b = TraceBuilder::new();
        b.process_name(1, "sim");
        b.thread_name(1, 0, "gpu");
        b.complete(1, 0, "kernel", "run", 0.0, 5.0);
        b.complete_with_args(
            0,
            0,
            "job",
            "executed",
            0.0,
            7.5,
            &[("request_id", "req-1")],
        );
        let json = b.build();
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(!json.contains(",\n]"), "no trailing comma");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"args\":{\"request_id\":\"req-1\"}"));
        assert!(json.contains("\"dur\":7.5"));
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
    }

    #[test]
    fn raw_events_pass_through() {
        let mut b = TraceBuilder::new();
        b.push_raw("{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":1}".into());
        let json = b.build();
        assert!(json.contains("\"name\":\"x\""));
    }
}
