//! An in-tree validator for the Prometheus text exposition format.
//!
//! CI's smoke check scrapes `GET /metrics?format=prometheus` and runs the
//! body through [`parse`]; a malformed exposition (bad metric name, broken
//! label syntax, non-numeric value, non-monotonic histogram buckets) fails
//! the build rather than the first real scraper pointed at the service.
//! The subset validated is the classic text format, version 0.0.4 — what
//! [`crate::registry::MetricRegistry::render_prometheus`] emits.

use std::collections::HashMap;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket` / `_sum` / `_count` suffix).
    pub name: String,
    /// Labels in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `name`, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

/// Parses a label block `name="value",...` (without the surrounding
/// braces). Returns `None` on any syntax error.
fn parse_labels(s: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let name = rest[..eq].trim();
        if !valid_label_name(name) {
            return None;
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return None;
        }
        // Scan the quoted value honouring backslash escapes.
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    _ => return None,
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end?;
        labels.push((name.to_owned(), value));
        rest = rest[1 + end + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
            if rest.is_empty() {
                return None; // trailing comma
            }
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(labels)
}

/// A fully parsed exposition: the samples plus the `# TYPE` and `# HELP`
/// metadata federation needs to rebuild a registry from a scrape.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Every sample line, in source order.
    pub samples: Vec<Sample>,
    /// Family name → declared type (`counter`, `gauge`, `histogram`, ...).
    pub types: HashMap<String, String>,
    /// Family name → help text (unescaped).
    pub helps: HashMap<String, String>,
}

/// Validates `text` as Prometheus text exposition format and returns the
/// parsed samples. The first malformed line aborts with a message naming
/// the 1-based line number and the problem.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    parse_full(text).map(|e| e.samples)
}

/// Like [`parse`], but also returns the `# TYPE` and `# HELP` metadata —
/// what [`crate::MetricRegistry::from_exposition`] rebuilds a scraped
/// registry from.
pub fn parse_full(text: &str) -> Result<Exposition, String> {
    let mut samples = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashMap<String, String> = HashMap::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {ln}: HELP names invalid metric {name:?}"));
                }
                let help = rest[name.len()..]
                    .trim_start()
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\");
                helps.insert(name.to_owned(), help);
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {ln}: TYPE names invalid metric {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {ln}: unknown metric type {kind:?}"));
                }
                types.insert(name.to_owned(), kind.to_owned());
            }
            // Other comments are free-form and ignored.
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let (name_and_labels, tail) = match line.find(['{', ' ']) {
            Some(i) if line.as_bytes()[i] == b'{' => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {ln}: unclosed label block"))?;
                (
                    (&line[..i], Some(&line[i + 1..close])),
                    line[close + 1..].trim(),
                )
            }
            Some(i) => ((&line[..i], None), line[i + 1..].trim()),
            None => return Err(format!("line {ln}: sample without value")),
        };
        let (name, label_block) = name_and_labels;
        if !valid_metric_name(name) {
            return Err(format!("line {ln}: invalid metric name {name:?}"));
        }
        let labels = match label_block {
            Some(block) => parse_labels(block)
                .ok_or_else(|| format!("line {ln}: malformed labels {block:?}"))?,
            None => Vec::new(),
        };
        let mut tail_parts = tail.split_whitespace();
        let value = tail_parts
            .next()
            .and_then(parse_value)
            .ok_or_else(|| format!("line {ln}: unparseable value in {tail:?}"))?;
        // Optional timestamp (integer milliseconds).
        if let Some(ts) = tail_parts.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {ln}: bad timestamp {ts:?}"));
            }
        }
        if tail_parts.next().is_some() {
            return Err(format!("line {ln}: trailing garbage"));
        }
        samples.push(Sample {
            name: name.to_owned(),
            labels,
            value,
        });
    }

    validate_histograms(&samples, &types)?;
    Ok(Exposition {
        samples,
        types,
        helps,
    })
}

/// For every family declared `histogram`, checks bucket counts are
/// cumulative (non-decreasing in `le` order as emitted) and that the
/// `+Inf` bucket equals `_count`.
fn validate_histograms(samples: &[Sample], types: &HashMap<String, String>) -> Result<(), String> {
    for (family, kind) in types {
        if kind != "histogram" {
            continue;
        }
        let bucket = format!("{family}_bucket");
        let count_name = format!("{family}_count");
        // Group by the label set minus `le`, preserving emission order.
        type LabelSet = Vec<(String, String)>;
        let mut groups: Vec<(LabelSet, Vec<&Sample>)> = Vec::new();
        for s in samples.iter().filter(|s| s.name == bucket) {
            let key: LabelSet = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(s),
                None => groups.push((key, vec![s])),
            }
        }
        for (key, buckets) in &groups {
            let mut last = f64::NEG_INFINITY;
            let mut inf = None;
            for b in buckets {
                if b.value < last {
                    return Err(format!("histogram {family}: bucket counts not cumulative"));
                }
                last = b.value;
                if b.label("le") == Some("+Inf") {
                    inf = Some(b.value);
                }
            }
            let inf = inf.ok_or_else(|| format!("histogram {family}: missing +Inf bucket"))?;
            if let Some(count) = samples
                .iter()
                .find(|s| {
                    s.name == count_name
                        && s.labels
                            .iter()
                            .filter(|(k, _)| k != "le")
                            .all(|l| key.contains(l))
                        && key.iter().all(|l| s.labels.contains(l))
                })
                .map(|s| s.value)
            {
                if (count - inf).abs() > f64::EPSILON {
                    return Err(format!(
                        "histogram {family}: +Inf bucket {inf} != count {count}"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_registry_output() {
        let r = crate::MetricRegistry::new();
        r.counter("jobs_total", "Jobs.").add(3);
        r.counter_with("hits_total", "Hits.", &[("tier", "disk")])
            .add(1);
        r.gauge("in_flight", "In flight.").set(0.5);
        let h = r.histogram("latency_us", "Latency.");
        for v in [1, 5, 9, 1000] {
            h.observe(v);
        }
        let text = r.render_prometheus();
        let samples = parse(&text).expect("registry output must validate");
        assert!(samples
            .iter()
            .any(|s| s.name == "jobs_total" && s.value == 3.0));
        let hit = samples.iter().find(|s| s.name == "hits_total").unwrap();
        assert_eq!(hit.label("tier"), Some("disk"));
        assert!(samples
            .iter()
            .any(|s| s.name == "latency_us_bucket" && s.label("le") == Some("+Inf")));
    }

    #[test]
    fn parse_full_returns_types_and_helps() {
        let text = "# HELP jobs_total Jobs seen.\n# TYPE jobs_total counter\njobs_total 3\n\
                    # HELP lat_us Latency, two\\nlines.\n# TYPE lat_us histogram\n\
                    lat_us_bucket{le=\"+Inf\"} 0\nlat_us_sum 0\nlat_us_count 0\n";
        let exp = parse_full(text).unwrap();
        assert_eq!(
            exp.types.get("jobs_total").map(String::as_str),
            Some("counter")
        );
        assert_eq!(
            exp.types.get("lat_us").map(String::as_str),
            Some("histogram")
        );
        assert_eq!(
            exp.helps.get("jobs_total").map(String::as_str),
            Some("Jobs seen.")
        );
        assert_eq!(
            exp.helps.get("lat_us").map(String::as_str),
            Some("Latency, two\nlines.")
        );
        assert_eq!(exp.samples.len(), 4);
    }

    #[test]
    fn accepts_escapes_timestamps_and_inf() {
        let text = "# TYPE t counter\nt{path=\"a\\\"b\\\\c\\nd\"} 1 1700000000000\nx +Inf\n";
        let samples = parse(text).unwrap();
        assert_eq!(samples[0].label("path"), Some("a\"b\\c\nd"));
        assert!(samples[1].value.is_infinite());
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "9metric 1\n",
            "m{=\"v\"} 1\n",
            "m{l=\"v\" 1\n",
            "m{l=\"v\",} 1\n",
            "m notanumber\n",
            "m 1 2 3\n",
            "# TYPE m sideways\n",
            "justaname\n",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_non_cumulative_histogram() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
                    h_sum 9\nh_count 5\n";
        assert!(parse(text).unwrap_err().contains("not cumulative"));
        let missing_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n";
        assert!(parse(missing_inf).unwrap_err().contains("+Inf"));
        let mismatch = "# TYPE h histogram\n\
                        h_bucket{le=\"+Inf\"} 4\nh_count 5\nh_sum 9\n";
        assert!(parse(mismatch).unwrap_err().contains("!= count"));
    }
}
