//! Always-on hot-path phase profiler.
//!
//! Attributes wall time to a small fixed set of named phases (event-queue
//! pop, cache probe, decode, execute, persist, splice, ...) with nothing
//! but atomic adds on the hot path: no allocation, no locks, no
//! formatting. Phase slots live in static arrays; registering a phase
//! (cold, once per call site via `OnceLock`) hands back a [`PhaseId`]
//! whose [`record`]/[`time`] cost is a handful of relaxed atomic
//! operations plus two `Instant::now()` reads.
//!
//! The profiler is on by default so production questions ("where did this
//! request's time go?") never need a redeploy; `HETEROPIPE_PROFILE=off`
//! (or `0`/`false`) disables it at startup, and [`set_enabled`] toggles
//! it at runtime (the `perf` bench uses this to measure the profiler's
//! own overhead). When disabled, [`time`] runs the closure without even
//! reading the clock.
//!
//! Snapshots ([`snapshot`], [`render_debug_json`]) serve `GET
//! /v1/debug/profile` and the `/metrics` histograms; per-phase timings
//! aggregate into the same power-of-two [`Histogram`] the rest of the
//! stack reports with.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use heteropipe_sim::Histogram;

use crate::chrome::json_escape;

/// Most phases one process can register; exceeding it is a programming
/// error (phases are named at call sites, not created per request).
pub const MAX_PHASES: usize = 32;

const BUCKETS: usize = 65;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; BUCKETS] = [ZERO; BUCKETS];

static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
static COUNT: [AtomicU64; MAX_PHASES] = [ZERO; MAX_PHASES];
static TOTAL_NS: [AtomicU64; MAX_PHASES] = [ZERO; MAX_PHASES];
static MAX_NS: [AtomicU64; MAX_PHASES] = [ZERO; MAX_PHASES];
static BUCKET_COUNTS: [[AtomicU64; BUCKETS]; MAX_PHASES] = [ZERO_ROW; MAX_PHASES];
static ENABLED: OnceLock<AtomicBool> = OnceLock::new();

fn flag() -> &'static AtomicBool {
    ENABLED.get_or_init(|| {
        let off = matches!(
            std::env::var("HETEROPIPE_PROFILE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        AtomicBool::new(!off)
    })
}

/// Whether phase recording is currently on (one relaxed atomic load).
pub fn enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Turns phase recording on or off at runtime. Counters are never
/// cleared: disabling stops accumulation, re-enabling resumes it.
pub fn set_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

/// A registered phase slot; cheap to copy and store in a `OnceLock` next
/// to the hot loop it instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseId(usize);

/// Registers (or looks up) the slot for `name`. Cold path: takes a lock
/// and scans the registered names — call once per site and keep the id.
///
/// # Panics
///
/// Panics when more than [`MAX_PHASES`] distinct names are registered.
pub fn phase(name: &'static str) -> PhaseId {
    let mut names = NAMES.lock().unwrap();
    if let Some(i) = names.iter().position(|n| *n == name) {
        return PhaseId(i);
    }
    assert!(names.len() < MAX_PHASES, "profiler phase table full");
    names.push(name);
    PhaseId(names.len() - 1)
}

/// Records one `ns`-long occurrence of the phase: four relaxed atomic
/// operations, nothing else. No-op while the profiler is disabled.
pub fn record(id: PhaseId, ns: u64) {
    if !enabled() {
        return;
    }
    let b = if ns <= 1 {
        0
    } else {
        64 - (ns - 1).leading_zeros() as usize
    };
    COUNT[id.0].fetch_add(1, Ordering::Relaxed);
    TOTAL_NS[id.0].fetch_add(ns, Ordering::Relaxed);
    MAX_NS[id.0].fetch_max(ns, Ordering::Relaxed);
    BUCKET_COUNTS[id.0][b].fetch_add(1, Ordering::Relaxed);
}

/// Times `f` and records its duration under `id`. When the profiler is
/// disabled the closure runs without reading the clock at all.
pub fn time<T>(id: PhaseId, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    record(id, start.elapsed().as_nanos() as u64);
    out
}

/// One phase's accumulated timings at snapshot time.
#[derive(Debug, Clone)]
pub struct PhaseSnapshot {
    /// The name the phase was registered under.
    pub name: &'static str,
    /// Occurrences recorded.
    pub count: u64,
    /// Exact total wall time attributed, in nanoseconds.
    pub total_ns: u64,
    /// Longest single occurrence, in nanoseconds.
    pub max_ns: u64,
    /// Power-of-two distribution of occurrence durations. Each sample is
    /// folded to its bucket's upper bound, so percentiles are exact at
    /// bucket resolution while the histogram's own sum overestimates —
    /// use [`total_ns`](Self::total_ns) for exact totals.
    pub histogram: Histogram,
}

impl PhaseSnapshot {
    /// Mean occurrence duration in nanoseconds (zero when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Snapshots every registered phase, in registration order. Reads are
/// relaxed and unsynchronized with writers: totals may trail counts by an
/// in-flight recording, which is fine for monitoring.
pub fn snapshot() -> Vec<PhaseSnapshot> {
    let names: Vec<&'static str> = NAMES.lock().unwrap().clone();
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut histogram = Histogram::new();
            for (b, bucket) in BUCKET_COUNTS[i].iter().enumerate() {
                let n = bucket.load(Ordering::Relaxed);
                let upper = if b >= 64 { u64::MAX } else { 1u64 << b };
                histogram.record_n(upper, n);
            }
            PhaseSnapshot {
                name,
                count: COUNT[i].load(Ordering::Relaxed),
                total_ns: TOTAL_NS[i].load(Ordering::Relaxed),
                max_ns: MAX_NS[i].load(Ordering::Relaxed),
                histogram,
            }
        })
        .collect()
}

/// Renders the `GET /v1/debug/profile` snapshot: phases sorted by total
/// attributed time, heaviest first.
pub fn render_debug_json() -> String {
    let mut phases = snapshot();
    phases.sort_by_key(|p| std::cmp::Reverse(p.total_ns));
    let mut out = String::with_capacity(256);
    out.push_str("{\"enabled\":");
    out.push_str(if enabled() { "true" } else { "false" });
    out.push_str(",\"phases\":[");
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{:.1},\
             \"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            json_escape(p.name),
            p.count,
            p.total_ns,
            p.mean_ns(),
            p.histogram.percentile(0.50),
            p.histogram.percentile(0.99),
            p.max_ns,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test exercises the whole module sequentially: the profiler is
    /// process-global state, so interleaved tests toggling `set_enabled`
    /// would race each other.
    #[test]
    fn profiler_end_to_end() {
        let a = phase("test_phase_a");
        let b = phase("test_phase_b");
        assert_eq!(phase("test_phase_a"), a, "same name, same slot");
        assert_ne!(a, b);

        set_enabled(true);
        record(a, 100);
        record(a, 3_000);
        let out = time(b, || 7u32);
        assert_eq!(out, 7);

        let snap = snapshot();
        let pa = snap.iter().find(|p| p.name == "test_phase_a").unwrap();
        assert_eq!(pa.count, 2);
        assert_eq!(pa.total_ns, 3_100);
        assert_eq!(pa.max_ns, 3_000);
        assert_eq!(pa.histogram.count(), 2);
        assert!(pa.histogram.percentile(0.99) >= 3_000);
        assert!((pa.mean_ns() - 1_550.0).abs() < 1e-9);
        let pb = snap.iter().find(|p| p.name == "test_phase_b").unwrap();
        assert_eq!(pb.count, 1);

        // Disabled: neither record nor time accumulates anything.
        set_enabled(false);
        assert!(!enabled());
        record(a, 1_000_000);
        assert_eq!(time(a, || 9u32), 9);
        let snap = snapshot();
        let pa = snap.iter().find(|p| p.name == "test_phase_a").unwrap();
        assert_eq!(pa.count, 2, "disabled profiler stays frozen");
        set_enabled(true);

        let json = render_debug_json();
        assert!(json.starts_with("{\"enabled\":true,\"phases\":["));
        assert!(json.contains("\"name\":\"test_phase_a\""));
        assert!(json.contains("\"total_ns\":3100"));
    }
}
