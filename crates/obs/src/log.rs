//! Leveled JSON-lines structured logging, zero dependencies.
//!
//! Every line is one JSON object on stderr:
//!
//! ```text
//! {"ts_ms":1723000000000,"level":"info","target":"serve","msg":"request","request_id":"req-...","status":"200"}
//! ```
//!
//! The level is configured through the `HETEROPIPE_LOG` environment
//! variable (`off`, `error`, `warn`, `info`, `debug`, `trace`); binaries
//! call [`init_from_env_or`] once with their preferred default. Log lines
//! never go to stdout — the harness binaries' stdout tables stay
//! byte-identical whether logging is on or off.
//!
//! Tests swap the stderr sink for an in-memory capture buffer with
//! [`capture`] and assert on the emitted lines.

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::chrome::json_escape;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Logging disabled entirely.
    Off = 0,
    /// Unrecoverable or dropped work.
    Error = 1,
    /// Degraded but continuing (e.g. cache persist failed).
    Warn = 2,
    /// Request/job lifecycle events.
    Info = 3,
    /// Per-phase detail.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `HETEROPIPE_LOG` value, case-insensitively. `0`..`5` are
    /// accepted as numeric aliases.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" | "1" => Some(Level::Error),
            "warn" | "warning" | "2" => Some(Level::Warn),
            "info" | "3" => Some(Level::Info),
            "debug" | "4" => Some(Level::Debug),
            "trace" | "5" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured field value. Strings are JSON-escaped on emit; numbers
/// pass through as JSON numbers so downstream tooling can aggregate them.
#[derive(Debug, Clone)]
pub enum Value {
    /// A string field.
    Str(String),
    /// An unsigned integer field.
    U64(u64),
    /// A float field.
    F64(f64),
    /// A boolean field.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

enum Sink {
    Stderr,
    Capture(Arc<Mutex<Vec<String>>>),
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);
static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();

fn sink() -> &'static Mutex<Sink> {
    SINK.get_or_init(|| Mutex::new(Sink::Stderr))
}

/// Sets the global level directly.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Initializes the level from `HETEROPIPE_LOG`, falling back to `default`
/// when the variable is unset or unparseable. Returns the level in effect.
pub fn init_from_env_or(default: Level) -> Level {
    let lvl = std::env::var("HETEROPIPE_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(default);
    set_level(lvl);
    lvl
}

/// Whether a record at `lvl` would currently be emitted.
pub fn enabled(lvl: Level) -> bool {
    lvl != Level::Off && lvl <= level()
}

/// Redirects log output into an in-memory buffer and returns a handle to
/// it; used by tests and the smoke binary to assert on emitted lines.
/// Capture stays in effect for the remainder of the process.
pub fn capture() -> Arc<Mutex<Vec<String>>> {
    let buf = Arc::new(Mutex::new(Vec::new()));
    *sink().lock().unwrap() = Sink::Capture(Arc::clone(&buf));
    buf
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Emits one structured record at `lvl` if the level allows it.
/// `target` names the subsystem (`engine`, `serve`, ...); `fields` are
/// appended as additional JSON members after `msg`.
pub fn log(lvl: Level, target: &str, msg: &str, fields: &[(&str, Value)]) {
    if !enabled(lvl) {
        return;
    }
    let mut line = format!(
        "{{\"ts_ms\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
        now_ms(),
        lvl.as_str(),
        json_escape(target),
        json_escape(msg),
    );
    for (k, v) in fields {
        line.push_str(",\"");
        line.push_str(&json_escape(k));
        line.push_str("\":");
        match v {
            Value::Str(s) => {
                line.push('"');
                line.push_str(&json_escape(s));
                line.push('"');
            }
            Value::U64(n) => line.push_str(&n.to_string()),
            Value::F64(f) if f.is_finite() => line.push_str(&format!("{f}")),
            Value::F64(_) => line.push_str("null"),
            Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push('}');
    match &*sink().lock().unwrap() {
        Sink::Stderr => {
            let stderr = std::io::stderr();
            let mut w = stderr.lock();
            let _ = writeln!(w, "{line}");
        }
        Sink::Capture(buf) => buf.lock().unwrap().push(line),
    }
}

/// Logs at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log(Level::Error, target, msg, fields);
}

/// Logs at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log(Level::Warn, target, msg, fields);
}

/// Logs at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log(Level::Info, target, msg, fields);
}

/// Logs at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log(Level::Debug, target, msg, fields);
}

/// Logs at [`Level::Trace`].
pub fn trace(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log(Level::Trace, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink and level are global process state, so these assertions run
    // inside one test to avoid interleaving with each other.
    #[test]
    fn levels_sinks_and_json_shape() {
        assert!(Level::parse("INFO") == Some(Level::Info));
        assert!(Level::parse("Warning") == Some(Level::Warn));
        assert!(Level::parse("5") == Some(Level::Trace));
        assert!(Level::parse("loud").is_none());
        assert!(Level::Error < Level::Trace);

        let buf = capture();
        set_level(Level::Info);
        assert!(enabled(Level::Error) && enabled(Level::Info));
        assert!(!enabled(Level::Debug) && !enabled(Level::Off));

        info(
            "serve",
            "request \"done\"",
            &[
                ("request_id", Value::from("req-1")),
                ("status", Value::from(200u64)),
                ("hit", Value::from(true)),
                ("ratio", Value::from(0.5)),
                ("nan", Value::F64(f64::NAN)),
            ],
        );
        debug("serve", "suppressed", &[]);
        let lines = buf.lock().unwrap().clone();
        assert_eq!(lines.len(), 1, "debug below level must be dropped");
        let line = &lines[0];
        assert!(line.starts_with("{\"ts_ms\":"), "line: {line}");
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"msg\":\"request \\\"done\\\"\""));
        assert!(line.contains("\"request_id\":\"req-1\""));
        assert!(line.contains("\"status\":200"));
        assert!(line.contains("\"hit\":true"));
        assert!(line.contains("\"ratio\":0.5"));
        assert!(line.contains("\"nan\":null"));
        assert!(line.ends_with('}'));

        set_level(Level::Off);
        error("serve", "even errors off", &[]);
        assert_eq!(buf.lock().unwrap().len(), 1);
        set_level(Level::Warn);
    }
}
