//! The workflow runner: level-parallel scheduling, per-stage memoization,
//! fault isolation, journaling, and observability.
//!
//! [`FlowRunner::run_observed`] executes a validated [`TaskGraph`] one
//! topological level at a time. Within a level, stages that must run fan
//! out over [`heteropipe::exec::par_map`]'s bounded work-queue, capped by
//! the engine's `--jobs` setting — the same pool discipline the engine's
//! sweep pipeline uses. Before a stage runs, its key is probed against
//! the in-process memo: a hit returns the shared value without executing
//! (the `cache_hit` flag on its event), which is how shared sweep
//! prefixes across figure graphs execute exactly once. Sweep stages are
//! additionally backed by the engine's two-tier result cache underneath,
//! so even a fresh runner re-renders from disk instead of re-simulating.
//!
//! Failure is per-stage: a closure that returns `Err` or panics fails its
//! own stage (engine-level retry/quarantine has already run inside it),
//! transitively skips its dependents, and leaves independent branches
//! untouched. Failed stages are never memoized.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use heteropipe::exec::par_map;
use heteropipe_engine::Engine;
use heteropipe_obs::log as obs_log;
use heteropipe_obs::{JobTrace, Phase};

use crate::graph::{FlowError, StageCtx, StageKind, StageValue, TaskGraph};

/// How many journaled workflow results are retained (oldest evicted).
const JOURNAL_CAP: usize = 64;

/// Profiler slot covering each workflow stage body (wall-clock
/// attribution only; results are unaffected).
fn flow_stage_phase() -> heteropipe_obs::profile::PhaseId {
    static P: std::sync::OnceLock<heteropipe_obs::profile::PhaseId> = std::sync::OnceLock::new();
    *P.get_or_init(|| heteropipe_obs::profile::phase("flow.stage"))
}

/// How one stage concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Produced its value (fresh or from the memo).
    Ok,
    /// The stage body returned an error or panicked.
    Failed,
    /// Never ran: an upstream stage failed or was itself skipped.
    Skipped,
}

impl StageStatus {
    /// The status's stable JSON token.
    pub fn label(self) -> &'static str {
        match self {
            StageStatus::Ok => "ok",
            StageStatus::Failed => "error",
            StageStatus::Skipped => "skipped",
        }
    }
}

/// One stage-completion event, pushed to the observer sink as each
/// scheduling level resolves (stage order within a level is insertion
/// order, so event order is deterministic).
#[derive(Debug, Clone)]
pub struct StageEvent {
    /// Stage name.
    pub stage: String,
    /// Stage kind.
    pub kind: StageKind,
    /// The stage key as 32 lowercase hex digits.
    pub key_hex: String,
    /// How the stage concluded.
    pub status: StageStatus,
    /// True when the value came from the stage memo without executing.
    pub cache_hit: bool,
    /// Stage wall time, nanoseconds (0 for memo hits and skips).
    pub wall_ns: u64,
    /// The failure or skip reason, when not `Ok`.
    pub error: Option<String>,
}

/// Aggregate accounting for one workflow run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkflowSummary {
    /// Stages in the graph.
    pub stages_total: u64,
    /// Stages that actually executed their body.
    pub executed: u64,
    /// Stages served from the memo.
    pub cache_hits: u64,
    /// Stages whose body failed.
    pub failed: u64,
    /// Stages skipped because an upstream stage did not complete.
    pub skipped: u64,
    /// Wall time for the whole workflow, nanoseconds.
    pub wall_ns: u64,
}

/// What a workflow run produces (and what the journal retains).
#[derive(Debug, Clone)]
pub struct WorkflowResult {
    /// The workflow key as 32 lowercase hex digits.
    pub key_hex: String,
    /// The graph's name.
    pub name: String,
    /// One event per stage, in deterministic schedule order.
    pub events: Vec<StageEvent>,
    /// Aggregate accounting.
    pub summary: WorkflowSummary,
    /// Rendered text of each declared output stage that completed, in
    /// declaration order.
    pub outputs: Vec<(String, Arc<String>)>,
}

/// Counters for the workflow engine, exported through `/metrics`.
#[derive(Debug, Default)]
struct FlowMetrics {
    workflows: AtomicU64,
    stages: AtomicU64,
    stage_cache_hits: AtomicU64,
    stage_failures: AtomicU64,
}

/// A point-in-time copy of the workflow counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowMetricsSnapshot {
    /// Workflows executed.
    pub workflows: u64,
    /// Stage slots processed across all workflows (hits and skips
    /// included).
    pub stages: u64,
    /// Stages served from the memo.
    pub stage_cache_hits: u64,
    /// Stages whose body failed.
    pub stage_failures: u64,
}

#[derive(Default)]
struct Journal {
    order: VecDeque<String>,
    map: HashMap<String, Arc<WorkflowResult>>,
}

/// Executes [`TaskGraph`]s against one engine, memoizing stage values by
/// stage key and journaling results by workflow key.
pub struct FlowRunner {
    engine: Arc<Engine>,
    memo: Mutex<HashMap<u128, StageValue>>,
    journal: Mutex<Journal>,
    metrics: FlowMetrics,
}

impl std::fmt::Debug for FlowRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowRunner")
            .field("memoized", &self.memo.lock().unwrap().len())
            .finish()
    }
}

impl FlowRunner {
    /// A runner executing through `engine`.
    pub fn new(engine: Arc<Engine>) -> FlowRunner {
        FlowRunner {
            engine,
            memo: Mutex::new(HashMap::new()),
            journal: Mutex::new(Journal::default()),
            metrics: FlowMetrics::default(),
        }
    }

    /// The engine this runner executes through.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// A snapshot of the workflow counters.
    pub fn metrics(&self) -> FlowMetricsSnapshot {
        FlowMetricsSnapshot {
            workflows: self.metrics.workflows.load(Ordering::Relaxed),
            stages: self.metrics.stages.load(Ordering::Relaxed),
            stage_cache_hits: self.metrics.stage_cache_hits.load(Ordering::Relaxed),
            stage_failures: self.metrics.stage_failures.load(Ordering::Relaxed),
        }
    }

    /// The journaled result for a workflow key (lowercase hex), if still
    /// retained.
    pub fn journaled(&self, key_hex: &str) -> Option<Arc<WorkflowResult>> {
        self.journal.lock().unwrap().map.get(key_hex).cloned()
    }

    /// Runs `graph` with no observer.
    pub fn run(&self, graph: &TaskGraph) -> Result<Arc<WorkflowResult>, FlowError> {
        self.run_observed(graph, None, &|_| {})
    }

    /// Runs `graph`, stamping `request_id` on the workflow trace and log
    /// records and invoking `sink` once per stage as each scheduling
    /// level resolves. Returns `Err` only for an invalid graph; stage
    /// failures are reported per-event and in the summary.
    pub fn run_observed(
        &self,
        graph: &TaskGraph,
        request_id: Option<&str>,
        sink: &(dyn Fn(&StageEvent) + Sync),
    ) -> Result<Arc<WorkflowResult>, FlowError> {
        self.run_observed_deadline(graph, request_id, sink, None)
    }

    /// [`FlowRunner::run_observed`] under a wall-clock deadline (the
    /// `X-Deadline-Ms` budget the serving layer parsed): stages whose
    /// level starts after `deadline` fail with a "deadline exceeded"
    /// event instead of executing, and their dependents skip as with any
    /// other stage failure. Memo hits are still served — they cost no
    /// budget worth protecting.
    pub fn run_observed_deadline(
        &self,
        graph: &TaskGraph,
        request_id: Option<&str>,
        sink: &(dyn Fn(&StageEvent) + Sync),
        deadline: Option<Instant>,
    ) -> Result<Arc<WorkflowResult>, FlowError> {
        let start = Instant::now();
        let plan = graph.plan()?;
        let keys = graph.stage_keys(&plan);
        let ordered: Vec<_> = plan.order.iter().map(|&i| keys[i]).collect();
        let wkey = heteropipe_engine::composite_key("workflow", &[graph.name.as_str()], &ordered);

        let n = graph.stages.len();
        let mut values: Vec<Option<StageValue>> = (0..n).map(|_| None).collect();
        let mut events: Vec<Option<StageEvent>> = (0..n).map(|_| None).collect();
        // (start offset, duration) per stage, for the workflow trace.
        let mut spans: Vec<(u64, u64)> = vec![(0, 0); n];

        for level in &plan.levels {
            let mut to_run: Vec<usize> = Vec::new();
            for &i in level {
                let stage = &graph.stages[i];
                // An upstream failure or skip propagates as a skip.
                let broken_dep = plan.dep_idx[i].iter().copied().find(|&d| {
                    events[d]
                        .as_ref()
                        .is_some_and(|e| e.status != StageStatus::Ok)
                });
                if let Some(d) = broken_dep {
                    let cause = &graph.stages[d].name;
                    let ev = StageEvent {
                        stage: stage.name.clone(),
                        kind: stage.kind,
                        key_hex: keys[i].hex(),
                        status: StageStatus::Skipped,
                        cache_hit: false,
                        wall_ns: 0,
                        error: Some(format!("upstream stage {cause:?} did not complete")),
                    };
                    spans[i] = (start.elapsed().as_nanos() as u64, 0);
                    sink(&ev);
                    events[i] = Some(ev);
                    continue;
                }
                // Memo probe: a hit shares the value without executing.
                let memoized = self.memo.lock().unwrap().get(&keys[i].0).cloned();
                if let Some(v) = memoized {
                    values[i] = Some(v);
                    let ev = StageEvent {
                        stage: stage.name.clone(),
                        kind: stage.kind,
                        key_hex: keys[i].hex(),
                        status: StageStatus::Ok,
                        cache_hit: true,
                        wall_ns: 0,
                        error: None,
                    };
                    spans[i] = (start.elapsed().as_nanos() as u64, 0);
                    sink(&ev);
                    events[i] = Some(ev);
                    continue;
                }
                to_run.push(i);
            }

            if to_run.is_empty() {
                continue;
            }
            // Deadline gate: once the budget is spent, remaining stages
            // fail (not skip — skipping implies an upstream cause) so
            // dependents cascade and the summary counts the abort.
            if deadline.is_some_and(|dl| Instant::now() >= dl) {
                for &i in &to_run {
                    let stage = &graph.stages[i];
                    let ev = StageEvent {
                        stage: stage.name.clone(),
                        kind: stage.kind,
                        key_hex: keys[i].hex(),
                        status: StageStatus::Failed,
                        cache_hit: false,
                        wall_ns: 0,
                        error: Some("deadline exceeded before stage execution".to_string()),
                    };
                    spans[i] = (start.elapsed().as_nanos() as u64, 0);
                    sink(&ev);
                    events[i] = Some(ev);
                }
                continue;
            }
            // Fan the level's runnable stages out over the engine's job
            // pool. Panics are captured per item by `par_map`, which is
            // the stage-level fault isolation: engine retry/quarantine
            // has already run inside the stage body.
            let results = par_map(&to_run, self.engine.jobs(), |&i| {
                let stage = &graph.stages[i];
                let deps: Vec<StageValue> = plan.dep_idx[i]
                    .iter()
                    .map(|&d| values[d].clone().expect("deps resolve in earlier levels"))
                    .collect();
                let ctx = StageCtx {
                    engine: &self.engine,
                    deps: &deps,
                };
                let off = start.elapsed().as_nanos() as u64;
                let t0 = Instant::now();
                let out = (stage.run)(&ctx);
                let wall = t0.elapsed().as_nanos() as u64;
                heteropipe_obs::profile::record(flow_stage_phase(), wall);
                (off, wall, out)
            });
            for (slot, result) in results.into_iter().enumerate() {
                let i = to_run[slot];
                let stage = &graph.stages[i];
                let (status, cache_hit, error) = match result {
                    Ok((off, wall, Ok(value))) => {
                        spans[i] = (off, wall);
                        self.memo.lock().unwrap().insert(keys[i].0, value.clone());
                        values[i] = Some(value);
                        (StageStatus::Ok, false, None)
                    }
                    Ok((off, wall, Err(msg))) => {
                        spans[i] = (off, wall);
                        (StageStatus::Failed, false, Some(msg))
                    }
                    Err(panic) => {
                        spans[i] = (start.elapsed().as_nanos() as u64, 0);
                        (StageStatus::Failed, false, Some(panic.message))
                    }
                };
                if status == StageStatus::Failed {
                    obs_log::warn(
                        "flow",
                        "stage failed",
                        &[
                            ("request_id", request_id.unwrap_or("-").into()),
                            ("workflow", graph.name.as_str().into()),
                            ("stage", stage.name.as_str().into()),
                            ("error", error.as_deref().unwrap_or("-").into()),
                        ],
                    );
                }
                let ev = StageEvent {
                    stage: stage.name.clone(),
                    kind: stage.kind,
                    key_hex: keys[i].hex(),
                    status,
                    cache_hit,
                    wall_ns: spans[i].1,
                    error,
                };
                sink(&ev);
                events[i] = Some(ev);
            }
        }

        let events: Vec<StageEvent> = plan
            .order
            .iter()
            .map(|&i| events[i].take().expect("every stage resolves"))
            .collect();
        let mut summary = WorkflowSummary {
            stages_total: n as u64,
            ..WorkflowSummary::default()
        };
        for e in &events {
            match (e.status, e.cache_hit) {
                (StageStatus::Ok, true) => summary.cache_hits += 1,
                (StageStatus::Ok, false) => summary.executed += 1,
                (StageStatus::Failed, _) => summary.failed += 1,
                (StageStatus::Skipped, _) => summary.skipped += 1,
            }
        }
        summary.wall_ns = start.elapsed().as_nanos() as u64;

        self.metrics.workflows.fetch_add(1, Ordering::Relaxed);
        self.metrics.stages.fetch_add(n as u64, Ordering::Relaxed);
        self.metrics
            .stage_cache_hits
            .fetch_add(summary.cache_hits, Ordering::Relaxed);
        self.metrics
            .stage_failures
            .fetch_add(summary.failed, Ordering::Relaxed);

        // The workflow's trace: one phase per stage with real start
        // offsets, so concurrent stages overlap in the Chrome view.
        let phases: Vec<Phase> = plan
            .order
            .iter()
            .map(|&i| Phase {
                name: graph.stages[i].name.clone(),
                start_ns: spans[i].0,
                dur_ns: spans[i].1,
            })
            .collect();
        self.engine.traces().insert(JobTrace {
            key_hex: wkey.hex(),
            benchmark: format!("workflow[{}]", graph.name),
            request_id: request_id.map(str::to_owned),
            outcome: "workflow".to_owned(),
            phases,
            sim_events: Vec::new(),
        });
        obs_log::info(
            "flow",
            "workflow executed",
            &[
                ("request_id", request_id.unwrap_or("-").into()),
                ("workflow_key", wkey.hex().into()),
                ("workflow", graph.name.as_str().into()),
                ("stages", summary.stages_total.into()),
                ("executed", summary.executed.into()),
                ("cache_hits", summary.cache_hits.into()),
                ("failed", summary.failed.into()),
                ("skipped", summary.skipped.into()),
                ("wall_ms", (summary.wall_ns / 1_000_000).into()),
            ],
        );

        let outputs = graph
            .outputs
            .iter()
            .filter_map(|name| {
                let i = graph.stages.iter().position(|s| &s.name == name)?;
                match values[i].as_ref()? {
                    StageValue::Text(t) => Some((name.clone(), Arc::clone(t))),
                    StageValue::Pairs(_) => None,
                }
            })
            .collect();

        let result = Arc::new(WorkflowResult {
            key_hex: wkey.hex(),
            name: graph.name.clone(),
            events,
            summary,
            outputs,
        });
        let mut journal = self.journal.lock().unwrap();
        if !journal.map.contains_key(&result.key_hex) {
            journal.order.push_back(result.key_hex.clone());
            while journal.order.len() > JOURNAL_CAP {
                if let Some(old) = journal.order.pop_front() {
                    journal.map.remove(&old);
                }
            }
        }
        journal
            .map
            .insert(result.key_hex.clone(), Arc::clone(&result));
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Stage;

    fn runner() -> FlowRunner {
        FlowRunner::new(Arc::new(Engine::new().memory_cache_only()))
    }

    fn text_stage(name: &str, body: &str) -> Stage {
        let body = body.to_owned();
        Stage::new(name, StageKind::Render, move |_| {
            Ok(StageValue::from_text(body.clone()))
        })
        .input(format!("body={name}"))
    }

    #[test]
    fn linear_graph_runs_and_outputs_in_declaration_order() {
        let r = runner();
        let mut g = TaskGraph::new("linear");
        g.add(text_stage("a", "alpha"));
        g.add(
            Stage::new("b", StageKind::Analysis, |ctx| {
                Ok(StageValue::from_text(format!("saw {}", ctx.dep_text(0)?)))
            })
            .dep("a"),
        );
        g.output("b").output("a");
        let res = r.run(&g).unwrap();
        assert_eq!(res.summary.executed, 2);
        assert_eq!(res.summary.failed, 0);
        assert_eq!(
            res.outputs
                .iter()
                .map(|(n, t)| (n.as_str(), t.as_str()))
                .collect::<Vec<_>>(),
            vec![("b", "saw alpha"), ("a", "alpha")],
        );
        assert_eq!(res.events.len(), 2);
        assert!(res.events.iter().all(|e| e.status == StageStatus::Ok));
    }

    #[test]
    fn warm_rerun_is_pure_memo_hits() {
        let r = runner();
        let mut g = TaskGraph::new("memo");
        g.add(text_stage("a", "x"));
        g.add(text_stage("b", "y"));
        g.output("a").output("b");
        let cold = r.run(&g).unwrap();
        assert_eq!(cold.summary.executed, 2);
        assert_eq!(cold.summary.cache_hits, 0);

        let warm = r.run(&g).unwrap();
        assert_eq!(warm.summary.executed, 0, "warm re-run executes no stage");
        assert_eq!(warm.summary.cache_hits, 2);
        assert!(warm.events.iter().all(|e| e.cache_hit));
        assert_eq!(warm.outputs.len(), 2, "outputs still materialize");
        assert_eq!(warm.key_hex, cold.key_hex);

        let m = r.metrics();
        assert_eq!(m.workflows, 2);
        assert_eq!(m.stages, 4);
        assert_eq!(m.stage_cache_hits, 2);
    }

    #[test]
    fn shared_stages_across_graphs_execute_once() {
        let r = runner();
        let shared = || text_stage("shared", "s");
        let mut g1 = TaskGraph::new("g1");
        g1.add(shared());
        let mut g2 = TaskGraph::new("g2");
        g2.add(shared());
        assert_eq!(r.run(&g1).unwrap().summary.executed, 1);
        let second = r.run(&g2).unwrap();
        assert_eq!(second.summary.executed, 0, "same stage key, new graph");
        assert_eq!(second.summary.cache_hits, 1);
    }

    #[test]
    fn failing_stage_skips_dependents_but_not_independent_branches() {
        let r = runner();
        let mut g = TaskGraph::new("faulty");
        g.add(Stage::new("bad", StageKind::Analysis, |_| {
            Err("deliberate".to_owned())
        }));
        g.add(
            Stage::new("child", StageKind::Render, |ctx| {
                Ok(StageValue::from_text(ctx.dep_text(0)?.to_owned()))
            })
            .dep("bad"),
        );
        g.add(
            Stage::new("grandchild", StageKind::Render, |ctx| {
                Ok(StageValue::from_text(ctx.dep_text(0)?.to_owned()))
            })
            .dep("child"),
        );
        g.add(text_stage("independent", "fine"));
        g.output("independent");
        let res = r.run(&g).unwrap();
        let by_name = |n: &str| res.events.iter().find(|e| e.stage == n).unwrap();
        assert_eq!(by_name("bad").status, StageStatus::Failed);
        assert_eq!(by_name("bad").error.as_deref(), Some("deliberate"));
        assert_eq!(by_name("child").status, StageStatus::Skipped);
        assert_eq!(by_name("grandchild").status, StageStatus::Skipped);
        assert_eq!(by_name("independent").status, StageStatus::Ok);
        assert_eq!(res.summary.failed, 1);
        assert_eq!(res.summary.skipped, 2);
        assert_eq!(res.outputs.len(), 1, "independent output survives");
        assert_eq!(r.metrics().stage_failures, 1);
    }

    #[test]
    fn panicking_stage_is_contained_and_not_memoized() {
        let r = runner();
        let mut g = TaskGraph::new("panicky");
        g.add(Stage::new("boom", StageKind::Analysis, |_| {
            panic!("kaboom")
        }));
        let res = r.run(&g).unwrap();
        assert_eq!(res.events[0].status, StageStatus::Failed);
        assert!(
            res.events[0].error.as_deref().unwrap().contains("kaboom"),
            "panic message surfaces: {:?}",
            res.events[0].error
        );
        // Failures are not memoized: a re-run tries again.
        let again = r.run(&g).unwrap();
        assert_eq!(again.summary.cache_hits, 0);
        assert_eq!(again.summary.failed, 1);
    }

    #[test]
    fn journal_retains_results_by_workflow_key() {
        let r = runner();
        let mut g = TaskGraph::new("journaled");
        g.add(text_stage("a", "x"));
        g.output("a");
        let res = r.run(&g).unwrap();
        let back = r.journaled(&res.key_hex).expect("journaled");
        assert_eq!(back.name, "journaled");
        assert_eq!(back.summary, res.summary);
        assert!(r.journaled(&"0".repeat(32)).is_none());
    }

    #[test]
    fn workflow_trace_lands_in_the_engine_trace_store() {
        let r = runner();
        let mut g = TaskGraph::new("traced");
        g.add(text_stage("a", "x"));
        let res = r.run_observed(&g, Some("req-test"), &|_| {}).unwrap();
        let trace = r.engine().traces().get(&res.key_hex).expect("trace");
        assert_eq!(trace.benchmark, "workflow[traced]");
        assert_eq!(trace.request_id.as_deref(), Some("req-test"));
        assert_eq!(trace.phases.len(), 1);
        assert_eq!(trace.phases[0].name, "a");
    }

    #[test]
    fn invalid_graph_is_an_error_not_a_run() {
        let r = runner();
        let g = TaskGraph::new("empty");
        assert_eq!(r.run(&g).unwrap_err(), FlowError::Empty);
        assert_eq!(r.metrics().workflows, 0);
    }
}
