//! Built-in task graphs: one per paper figure/table/study, plus the
//! `repro_all` union graph.
//!
//! Every harness binary (`fig3`…`fig9`, `table1`, `table2`, the
//! validations, `extensions`, `ablations`, `sensitivity`, `repro_all`)
//! is a thin wrapper submitting one of these graphs, and `POST
//! /v1/workflows` resolves named workflows here too. The graphs share
//! stages where the binaries shared work: Figs. 4–9 all hang off one
//! `characterize` sweep stage, so running `fig5` then `fig6` then `fig9`
//! through one [`crate::FlowRunner`] characterizes exactly once, and
//! `repro_all` is the union of everything with the same stage keys as
//! the standalone graphs (the `--csv` variants excepted, which key
//! separately by their `csv=` input token).
//!
//! Rendered output is byte-identical to the pre-graph binaries: stage
//! text carries exactly what each binary passed to `print!`/`println!`,
//! and [`PrintStyle`] records which of the two the binary used.

use heteropipe::experiments::{
    ablations, beyond, characterize_all_with, extensions, fig3, fig456, fig78, fig9, sensitivity,
    tables, validate, BenchPair,
};
use heteropipe::Executor;
use heteropipe_workloads::Scale;

use crate::graph::{Stage, StageKind, StageValue, TaskGraph};

/// How a harness binary prints the graph's outputs: `print!` (figure
/// binaries, whose render text is self-terminated) or `println!` (the
/// section-per-line binaries: `extensions`, `ablations`, `repro_all`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrintStyle {
    /// `print!("{}", text)` per output.
    Print,
    /// `println!("{}", text)` per output.
    Println,
}

/// A built-in graph plus the print style its binary uses.
#[derive(Debug)]
pub struct FigureGraph {
    /// The graph.
    pub graph: TaskGraph,
    /// How a binary should print the outputs.
    pub style: PrintStyle,
    /// Whether the binary historically printed the engine metrics footer
    /// (the table binaries run no simulations and never did).
    pub footer: bool,
}

/// Every built-in graph name, in `repro_all` section order.
pub fn names() -> &'static [&'static str] {
    &[
        "table1",
        "table2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "validate_overlap",
        "validate_migrate",
        "beyond46",
        "extensions",
        "ablations",
        "sensitivity",
        "repro_all",
    ]
}

/// The canonical token binding a stage key to the run scale.
fn scale_token(scale: Scale) -> String {
    format!("scale={:016x}", scale.factor().to_bits())
}

/// The shared characterization sweep feeding Figs. 4–9.
fn characterize_stage(scale: Scale) -> Stage {
    Stage::new("characterize", StageKind::Sweep, move |ctx| {
        Ok(StageValue::from_pairs(characterize_all_with(
            ctx.exec(),
            scale,
        )))
    })
    .input("builtin=characterize")
    .input(scale_token(scale))
}

/// A figure stage deriving its text purely from the characterization
/// pairs. Scale reaches the key through the upstream stage key; only the
/// csv switch is a direct input.
fn pairs_stage(
    name: &'static str,
    csv: bool,
    render: impl Fn(&[BenchPair], bool) -> String + Send + Sync + 'static,
) -> Stage {
    Stage::new(name, StageKind::Render, move |ctx| {
        Ok(StageValue::from_text(render(ctx.dep_pairs(0)?, csv)))
    })
    .dep("characterize")
    .input(format!("builtin={name}"))
    .input(format!("csv={csv}"))
}

/// The Fig. 4–9 stages by id.
fn figure_stage(id: &str, csv: bool) -> Option<Stage> {
    Some(match id {
        "fig4" => pairs_stage("fig4", csv, |pairs, csv| {
            let rows = fig456::fig4(pairs);
            if csv {
                fig456::csv_fig4(&rows)
            } else {
                fig456::render_fig4(&rows)
            }
        }),
        "fig5" => pairs_stage("fig5", csv, |pairs, csv| {
            let rows = fig456::fig5(pairs);
            if csv {
                fig456::csv_fig5(&rows)
            } else {
                fig456::render_fig5(&rows)
            }
        }),
        "fig6" => pairs_stage("fig6", csv, |pairs, csv| {
            let rows = fig456::fig6(pairs);
            if csv {
                fig456::csv_fig6(&rows)
            } else {
                fig456::render_fig6_with_effects(&rows, pairs)
            }
        }),
        "fig7" => pairs_stage("fig7", csv, |pairs, csv| {
            let rows = fig78::fig7(pairs);
            if csv {
                fig78::csv_estimates(&rows)
            } else {
                fig78::render_fig7(&rows)
            }
        }),
        "fig8" => pairs_stage("fig8", csv, |pairs, csv| {
            let rows = fig78::fig8(pairs);
            if csv {
                fig78::csv_estimates(&rows)
            } else {
                fig78::render_fig8(&rows)
            }
        }),
        "fig9" => pairs_stage("fig9", csv, |pairs, csv| {
            let rows = fig9::fig9(pairs);
            if csv {
                fig9::csv(&rows)
            } else {
                fig9::render(&rows)
            }
        }),
        _ => return None,
    })
}

/// An analysis stage that drives the engine itself (characterization
/// does not feed it), keyed by name and scale.
fn analysis_stage(
    name: &'static str,
    scale: Scale,
    run: impl Fn(&dyn Executor, Scale) -> String + Send + Sync + 'static,
) -> Stage {
    Stage::new(name, StageKind::Analysis, move |ctx| {
        Ok(StageValue::from_text(run(ctx.exec(), scale)))
    })
    .input(format!("builtin={name}"))
    .input(scale_token(scale))
}

/// A pure-text stage with no simulation behind it.
fn render_stage(name: &'static str, text: impl Fn() -> String + Send + Sync + 'static) -> Stage {
    Stage::new(name, StageKind::Render, move |_| {
        Ok(StageValue::from_text(text()))
    })
    .input(format!("builtin={name}"))
}

fn fig3_stage(scale: Scale) -> Stage {
    analysis_stage("fig3", scale, |exec, scale| {
        fig3::render(&fig3::compute_with(exec, scale))
    })
}

fn validate_overlap_stage(scale: Scale) -> Stage {
    analysis_stage("validate_overlap", scale, |exec, scale| {
        validate::render_overlap(&validate::validate_overlap_with(exec, scale))
    })
}

fn validate_migrate_stage(scale: Scale) -> Stage {
    analysis_stage("validate_migrate", scale, |exec, scale| {
        validate::render_migrate(&validate::validate_migrate_with(exec, scale))
    })
}

fn beyond46_stage(scale: Scale) -> Stage {
    analysis_stage("beyond46", scale, |exec, scale| {
        beyond::render(&beyond::beyond46_with(exec, scale))
    })
}

fn sensitivity_stage(scale: Scale) -> Stage {
    analysis_stage("sensitivity", scale, |exec, scale| {
        sensitivity::render(&sensitivity::sensitivity_study_with(exec, scale))
    })
}

fn extension_stages(scale: Scale) -> Vec<Stage> {
    vec![
        analysis_stage("ext_fusion", scale, |exec, scale| {
            extensions::render_fusion(&extensions::fusion_study_with(exec, scale))
        }),
        analysis_stage("ext_migrate", scale, |exec, scale| {
            extensions::render_migrate_study(&extensions::migrate_study_with(exec, scale))
        }),
        analysis_stage("ext_chunks", scale, |exec, scale| {
            extensions::render_chunks(&extensions::chunk_suggestion_study_with(exec, scale))
        }),
    ]
}

/// The DESIGN.md §5 ablation sweeps. The standalone binary and
/// `repro_all` print different section headers, so the header flavor is
/// part of the stage key (`header=` token) and the two variants memoize
/// separately; the simulations underneath share the engine result cache
/// either way.
fn ablation_stages(scale: Scale, repro_header: bool) -> Vec<Stage> {
    type SweepFn = fn(&dyn Executor, Scale) -> ablations::Sweep;
    const SWEEPS: &[(&str, SweepFn)] = &[
        ("abl_chunk", ablations::chunk_sweep_with),
        ("abl_mlp", ablations::mlp_sweep_with),
        ("abl_l2", ablations::l2_sweep_with),
        ("abl_fault", ablations::fault_sweep_with),
        ("abl_pcie", ablations::pcie_sweep_with),
        ("abl_gpu_scaling", ablations::gpu_scaling_sweep_with),
        ("abl_spill_window", ablations::spill_window_sweep_with),
        ("abl_alignment", ablations::alignment_sweep_with),
    ];
    let tag = if repro_header { "ablation: " } else { "" };
    SWEEPS
        .iter()
        .map(|&(name, sweep)| {
            Stage::new(name, StageKind::Analysis, move |ctx| {
                let s = sweep(ctx.exec(), scale);
                Ok(StageValue::from_text(format!(
                    "== {tag}{} vs {} ==\n{}",
                    s.metric,
                    s.parameter,
                    s.render()
                )))
            })
            .input(format!("builtin={name}"))
            .input(scale_token(scale))
            .input(format!(
                "header={}",
                if repro_header { "repro" } else { "plain" }
            ))
        })
        .collect()
}

fn header_stage(scale: Scale) -> Stage {
    Stage::new("header", StageKind::Render, move |_| {
        Ok(StageValue::from_text(format!(
            "heteropipe full reproduction (scale {scale:?})\n"
        )))
    })
    .input("builtin=header")
    .input(scale_token(scale))
}

/// Builds the built-in graph named `name` at `scale`, or `None` for an
/// unknown name. `csv` selects the CSV render for the figure graphs that
/// support it and is ignored elsewhere (as the binaries ignore it);
/// `repro_all` always builds its figures in table form so they share
/// stage keys with the standalone non-csv graphs.
pub fn graph(name: &str, scale: Scale, csv: bool) -> Option<FigureGraph> {
    let mut g = TaskGraph::new(name);
    let mut footer = true;
    let style = match name {
        "table1" => {
            g.add(render_stage("table1", tables::render_table1));
            g.output("table1");
            footer = false;
            PrintStyle::Print
        }
        "table2" => {
            g.add(render_stage("table2", tables::render_table2));
            g.output("table2");
            footer = false;
            PrintStyle::Print
        }
        "fig3" => {
            g.add(fig3_stage(scale));
            g.output("fig3");
            PrintStyle::Print
        }
        "fig4" | "fig5" | "fig6" | "fig7" | "fig8" | "fig9" => {
            g.add(characterize_stage(scale));
            g.add(figure_stage(name, csv)?);
            g.output(name);
            PrintStyle::Print
        }
        "validate_overlap" => {
            g.add(validate_overlap_stage(scale));
            g.output("validate_overlap");
            PrintStyle::Print
        }
        "validate_migrate" => {
            g.add(validate_migrate_stage(scale));
            g.output("validate_migrate");
            PrintStyle::Print
        }
        "beyond46" => {
            g.add(beyond46_stage(scale));
            g.output("beyond46");
            PrintStyle::Print
        }
        "extensions" => {
            for s in extension_stages(scale) {
                let n = s.name().to_owned();
                g.add(s);
                g.output(n);
            }
            PrintStyle::Println
        }
        "ablations" => {
            for s in ablation_stages(scale, false) {
                let n = s.name().to_owned();
                g.add(s);
                g.output(n);
            }
            PrintStyle::Println
        }
        "sensitivity" => {
            g.add(sensitivity_stage(scale));
            g.output("sensitivity");
            PrintStyle::Print
        }
        "repro_all" => {
            g.add(header_stage(scale));
            g.add(render_stage("table1", tables::render_table1));
            g.add(render_stage("table2", tables::render_table2));
            g.add(fig3_stage(scale));
            g.add(characterize_stage(scale));
            for id in ["fig4", "fig5", "fig6", "fig7", "fig8", "fig9"] {
                g.add(figure_stage(id, false)?);
            }
            g.add(validate_overlap_stage(scale));
            g.add(validate_migrate_stage(scale));
            g.add(beyond46_stage(scale));
            for s in extension_stages(scale) {
                g.add(s);
            }
            for s in ablation_stages(scale, true) {
                g.add(s);
            }
            g.add(sensitivity_stage(scale));
            for out in [
                "header",
                "table1",
                "table2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "validate_overlap",
                "validate_migrate",
                "beyond46",
                "ext_fusion",
                "ext_migrate",
                "ext_chunks",
                "abl_chunk",
                "abl_mlp",
                "abl_l2",
                "abl_fault",
                "abl_pcie",
                "abl_gpu_scaling",
                "abl_spill_window",
                "abl_alignment",
                "sensitivity",
            ] {
                g.output(out);
            }
            PrintStyle::Println
        }
        _ => return None,
    };
    Some(FigureGraph {
        graph: g,
        style,
        footer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_graph_validates() {
        for name in names() {
            let fg = graph(name, Scale::TEST, false).expect(name);
            fg.graph
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(fg.graph.name(), *name);
        }
        assert!(graph("fig999", Scale::TEST, false).is_none());
    }

    fn key_of(g: &TaskGraph, stage: &str) -> heteropipe_engine::RunKey {
        let plan = g.plan().unwrap();
        let keys = g.stage_keys(&plan);
        let i = (0..g.len())
            .find(|&i| g.stages[i].name() == stage)
            .unwrap_or_else(|| panic!("no stage {stage:?} in {:?}", g.name()));
        keys[i]
    }

    #[test]
    fn figure_stages_share_keys_with_repro_all() {
        let repro = graph("repro_all", Scale::TEST, false).unwrap().graph;
        for fig in ["fig4", "fig5", "fig6", "fig9"] {
            let standalone = graph(fig, Scale::TEST, false).unwrap().graph;
            assert_eq!(
                key_of(&standalone, "characterize"),
                key_of(&repro, "characterize"),
                "{fig}: shared sweep prefix must share its stage key"
            );
            assert_eq!(
                key_of(&standalone, fig),
                key_of(&repro, fig),
                "{fig}: figure stage key must match repro_all"
            );
        }
        // The csv variant keys differently...
        let csv = graph("fig5", Scale::TEST, true).unwrap().graph;
        assert_ne!(
            key_of(&csv, "fig5"),
            key_of(&repro, "fig5"),
            "csv render is a different stage"
        );
        // ...but its sweep prefix is still shared.
        assert_eq!(key_of(&csv, "characterize"), key_of(&repro, "characterize"));
    }

    #[test]
    fn scale_is_part_of_the_stage_key() {
        let a = graph("fig3", Scale::TEST, false).unwrap().graph;
        let b = graph("fig3", Scale::PAPER, false).unwrap().graph;
        assert_ne!(a.workflow_key().unwrap(), b.workflow_key().unwrap());
    }
}
