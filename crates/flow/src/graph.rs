//! Task graphs: named stages with explicit dependency edges, validated
//! and scheduled as deterministic topological levels.
//!
//! A [`TaskGraph`] is a DAG of [`Stage`]s. Each stage names the stages it
//! consumes (`deps`), carries canonical input tokens (`inputs`) that —
//! together with its kind and its upstream stage keys — content-address
//! the value it produces, and owns a closure that computes a
//! [`StageValue`] from the resolved dependencies. Validation ([`plan`])
//! rejects duplicate names, unknown edges, and cycles with errors naming
//! the offending stages; the resulting plan groups stages into *levels*
//! (every stage's dependencies live in strictly earlier levels), which is
//! the unit of concurrency the runner fans out over `par_map`.
//!
//! [`plan`]: TaskGraph::plan

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use heteropipe::experiments::BenchPair;
use heteropipe::Executor;
use heteropipe_engine::{composite_key, Engine, RunKey};

/// What kind of work a stage does; the first token of its stage key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Runs simulations through the engine and produces characterization
    /// pairs (backed by the engine's two-tier result cache underneath).
    Sweep,
    /// Derives figures/studies from upstream data or its own engine runs.
    Analysis,
    /// Produces text with no simulation behind it (tables, headers).
    Render,
}

impl StageKind {
    /// The kind's canonical key/JSON token.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Sweep => "sweep",
            StageKind::Analysis => "analysis",
            StageKind::Render => "render",
        }
    }
}

/// A stage's product, cheap to clone (memoized values are shared via
/// `Arc`, never re-rendered).
#[derive(Debug, Clone)]
pub enum StageValue {
    /// Characterization pairs from a sweep stage.
    Pairs(Arc<Vec<BenchPair>>),
    /// Rendered text from an analysis or render stage.
    Text(Arc<String>),
}

impl StageValue {
    /// Wraps characterization pairs.
    pub fn from_pairs(pairs: Vec<BenchPair>) -> StageValue {
        StageValue::Pairs(Arc::new(pairs))
    }

    /// Wraps rendered text.
    pub fn from_text(text: impl Into<String>) -> StageValue {
        StageValue::Text(Arc::new(text.into()))
    }

    /// The pairs, if this is a `Pairs` value.
    pub fn as_pairs(&self) -> Option<&[BenchPair]> {
        match self {
            StageValue::Pairs(p) => Some(p),
            StageValue::Text(_) => None,
        }
    }

    /// The text, if this is a `Text` value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            StageValue::Text(t) => Some(t),
            StageValue::Pairs(_) => None,
        }
    }
}

/// What a running stage sees: the engine to execute through and its
/// resolved dependency values, in `deps` declaration order.
pub struct StageCtx<'a> {
    pub(crate) engine: &'a Engine,
    pub(crate) deps: &'a [StageValue],
}

impl<'a> StageCtx<'a> {
    /// The engine, as the executor the experiment drivers take.
    pub fn exec(&self) -> &'a dyn Executor {
        self.engine
    }

    /// The engine itself (for sweep stages that need batch execution).
    pub fn engine(&self) -> &'a Engine {
        self.engine
    }

    /// The `i`-th dependency's value.
    pub fn dep(&self, i: usize) -> Result<&'a StageValue, String> {
        self.deps.get(i).ok_or_else(|| {
            format!(
                "stage has {} dependencies, wanted index {i}",
                self.deps.len()
            )
        })
    }

    /// The `i`-th dependency as characterization pairs.
    pub fn dep_pairs(&self, i: usize) -> Result<&'a [BenchPair], String> {
        self.dep(i)?
            .as_pairs()
            .ok_or_else(|| format!("dependency {i} is not a pairs value"))
    }

    /// The `i`-th dependency as rendered text.
    pub fn dep_text(&self, i: usize) -> Result<&'a str, String> {
        self.dep(i)?
            .as_text()
            .ok_or_else(|| format!("dependency {i} is not a text value"))
    }
}

/// A stage body: dependencies in, value out. Errors (and panics, which
/// the runner catches) fail the stage without poisoning the graph.
pub type StageFn = Box<dyn Fn(&StageCtx<'_>) -> Result<StageValue, String> + Send + Sync>;

/// One named node of a [`TaskGraph`].
pub struct Stage {
    pub(crate) name: String,
    pub(crate) kind: StageKind,
    pub(crate) deps: Vec<String>,
    pub(crate) inputs: Vec<String>,
    pub(crate) run: StageFn,
}

impl fmt::Debug for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stage")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("deps", &self.deps)
            .field("inputs", &self.inputs)
            .finish()
    }
}

impl Stage {
    /// A stage named `name` running `run`.
    pub fn new(
        name: impl Into<String>,
        kind: StageKind,
        run: impl Fn(&StageCtx<'_>) -> Result<StageValue, String> + Send + Sync + 'static,
    ) -> Stage {
        Stage {
            name: name.into(),
            kind,
            deps: Vec::new(),
            inputs: Vec::new(),
            run: Box::new(run),
        }
    }

    /// Adds a dependency edge on the stage named `dep`.
    pub fn dep(mut self, dep: impl Into<String>) -> Stage {
        self.deps.push(dep.into());
        self
    }

    /// Adds a canonical input token. Tokens plus the stage kind plus the
    /// upstream stage keys fully determine the stage key, so every value
    /// the closure's behavior depends on (besides dependencies) must
    /// appear here.
    pub fn input(mut self, token: impl Into<String>) -> Stage {
        self.inputs.push(token.into());
        self
    }

    /// The stage's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stage's kind.
    pub fn kind(&self) -> StageKind {
        self.kind
    }
}

/// Why a graph failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// The graph has no stages.
    Empty,
    /// Two stages share a name.
    DuplicateStage(String),
    /// A dependency edge names a stage that does not exist.
    UnknownDependency {
        /// The stage declaring the edge.
        stage: String,
        /// The missing dependency name.
        dep: String,
    },
    /// An output names a stage that does not exist.
    UnknownOutput(String),
    /// The graph has a dependency cycle through the named stages.
    Cycle(Vec<String>),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Empty => write!(f, "graph has no stages"),
            FlowError::DuplicateStage(name) => write!(f, "duplicate stage name: {name:?}"),
            FlowError::UnknownDependency { stage, dep } => {
                write!(f, "stage {stage:?} depends on unknown stage {dep:?}")
            }
            FlowError::UnknownOutput(name) => write!(f, "output names unknown stage {name:?}"),
            FlowError::Cycle(names) => {
                write!(f, "dependency cycle through stages: {}", names.join(", "))
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// A validated schedule: stages grouped into topological levels plus
/// per-stage resolved dependency indices.
#[derive(Debug)]
pub(crate) struct Plan {
    /// Stage indices grouped by topological depth; within a level,
    /// insertion order (so the whole order is deterministic).
    pub levels: Vec<Vec<usize>>,
    /// The flattened deterministic topological order.
    pub order: Vec<usize>,
    /// Resolved dependency indices per stage, in declaration order.
    pub dep_idx: Vec<Vec<usize>>,
}

/// A DAG of named stages with declared outputs.
#[derive(Debug)]
pub struct TaskGraph {
    pub(crate) name: String,
    pub(crate) stages: Vec<Stage>,
    pub(crate) outputs: Vec<String>,
}

impl TaskGraph {
    /// An empty graph named `name`.
    pub fn new(name: impl Into<String>) -> TaskGraph {
        TaskGraph {
            name: name.into(),
            stages: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds a stage. Duplicate names are reported by [`validate`], not
    /// here, so graph construction stays infallible.
    ///
    /// [`validate`]: TaskGraph::validate
    pub fn add(&mut self, stage: Stage) -> &mut TaskGraph {
        self.stages.push(stage);
        self
    }

    /// Declares the stage named `stage` as an output: its rendered text
    /// is returned (in declaration order) by the runner.
    pub fn output(&mut self, stage: impl Into<String>) -> &mut TaskGraph {
        self.outputs.push(stage.into());
        self
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the graph has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Checks the graph is well-formed: non-empty, unique stage names,
    /// every edge and output resolving, and no dependency cycles.
    pub fn validate(&self) -> Result<(), FlowError> {
        self.plan().map(|_| ())
    }

    /// Builds the level schedule, performing full validation.
    pub(crate) fn plan(&self) -> Result<Plan, FlowError> {
        let n = self.stages.len();
        if n == 0 {
            return Err(FlowError::Empty);
        }
        let mut index: HashMap<&str, usize> = HashMap::with_capacity(n);
        for (i, s) in self.stages.iter().enumerate() {
            if index.insert(s.name.as_str(), i).is_some() {
                return Err(FlowError::DuplicateStage(s.name.clone()));
            }
        }
        let mut dep_idx = Vec::with_capacity(n);
        for s in &self.stages {
            let mut ds = Vec::with_capacity(s.deps.len());
            for d in &s.deps {
                match index.get(d.as_str()) {
                    Some(&j) => ds.push(j),
                    None => {
                        return Err(FlowError::UnknownDependency {
                            stage: s.name.clone(),
                            dep: d.clone(),
                        })
                    }
                }
            }
            dep_idx.push(ds);
        }
        for o in &self.outputs {
            if !index.contains_key(o.as_str()) {
                return Err(FlowError::UnknownOutput(o.clone()));
            }
        }

        // Level = 1 + max(dependency levels), found by fixpoint iteration
        // scanning stages in insertion order — deterministic by
        // construction. A self-edge or cycle never levels its stages.
        let mut level = vec![usize::MAX; n];
        loop {
            let mut progressed = false;
            for i in 0..n {
                if level[i] != usize::MAX {
                    continue;
                }
                let mut depth = 0usize;
                let mut ready = true;
                for &d in &dep_idx[i] {
                    if d == i || level[d] == usize::MAX {
                        ready = false;
                        break;
                    }
                    depth = depth.max(level[d] + 1);
                }
                if ready {
                    level[i] = depth;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        if level.contains(&usize::MAX) {
            let cyclic = (0..n)
                .filter(|&i| level[i] == usize::MAX)
                .map(|i| self.stages[i].name.clone())
                .collect();
            return Err(FlowError::Cycle(cyclic));
        }

        let depth = level.iter().max().copied().unwrap_or(0) + 1;
        let mut levels = vec![Vec::new(); depth];
        for (i, &l) in level.iter().enumerate() {
            levels[l].push(i);
        }
        let order = levels.iter().flatten().copied().collect();
        Ok(Plan {
            levels,
            order,
            dep_idx,
        })
    }

    /// Content-addresses every stage: `composite_key("stage", kind +
    /// input tokens, upstream stage keys)`, computed in topological order
    /// so upstream keys are always resolved first. Indexed by stage.
    pub(crate) fn stage_keys(&self, plan: &Plan) -> Vec<RunKey> {
        let mut keys = vec![RunKey(0); self.stages.len()];
        for &i in &plan.order {
            let s = &self.stages[i];
            let mut inputs: Vec<&str> = Vec::with_capacity(s.inputs.len() + 1);
            inputs.push(s.kind.label());
            inputs.extend(s.inputs.iter().map(String::as_str));
            let members: Vec<RunKey> = plan.dep_idx[i].iter().map(|&d| keys[d]).collect();
            keys[i] = composite_key("stage", &inputs, &members);
        }
        keys
    }

    /// The whole graph's content address: the graph name plus every stage
    /// key in topological order. This is the journal key `GET
    /// /v1/workflows/{key}` resolves and the `X-Workflow-Key` header.
    pub fn workflow_key(&self) -> Result<RunKey, FlowError> {
        let plan = self.plan()?;
        let keys = self.stage_keys(&plan);
        let ordered: Vec<RunKey> = plan.order.iter().map(|&i| keys[i]).collect();
        Ok(composite_key("workflow", &[self.name.as_str()], &ordered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe_sim::check;

    fn stage(name: &str, deps: &[&str]) -> Stage {
        let mut s = Stage::new(name, StageKind::Render, |_| Ok(StageValue::from_text("")));
        for d in deps {
            s = s.dep(*d);
        }
        s
    }

    fn graph(stages: Vec<Stage>) -> TaskGraph {
        let mut g = TaskGraph::new("test");
        for s in stages {
            g.add(s);
        }
        g
    }

    #[test]
    fn empty_duplicate_and_unknown_are_rejected() {
        assert_eq!(TaskGraph::new("t").validate(), Err(FlowError::Empty));

        let g = graph(vec![stage("a", &[]), stage("a", &[])]);
        assert_eq!(g.validate(), Err(FlowError::DuplicateStage("a".into())));

        let g = graph(vec![stage("a", &["ghost"])]);
        assert_eq!(
            g.validate(),
            Err(FlowError::UnknownDependency {
                stage: "a".into(),
                dep: "ghost".into(),
            })
        );

        let mut g = graph(vec![stage("a", &[])]);
        g.output("ghost");
        assert_eq!(g.validate(), Err(FlowError::UnknownOutput("ghost".into())));
    }

    #[test]
    fn cycles_are_rejected_with_the_stages_named() {
        // a -> b -> c -> a, plus an innocent d.
        let g = graph(vec![
            stage("a", &["c"]),
            stage("b", &["a"]),
            stage("c", &["b"]),
            stage("d", &[]),
        ]);
        let err = g.validate().unwrap_err();
        assert_eq!(
            err,
            FlowError::Cycle(vec!["a".into(), "b".into(), "c".into()])
        );
        let msg = err.to_string();
        assert!(msg.contains("cycle"), "{msg}");
        assert!(msg.contains("a, b, c"), "{msg}");

        // Self-edges are one-stage cycles.
        let g = graph(vec![stage("solo", &["solo"])]);
        assert_eq!(g.validate(), Err(FlowError::Cycle(vec!["solo".into()])));
    }

    #[test]
    fn levels_respect_edges() {
        let g = graph(vec![
            stage("sweep", &[]),
            stage("fig_a", &["sweep"]),
            stage("fig_b", &["sweep"]),
            stage("summary", &["fig_a", "fig_b"]),
            stage("table", &[]),
        ]);
        let plan = g.plan().unwrap();
        assert_eq!(plan.levels, vec![vec![0, 4], vec![1, 2], vec![3]]);
        assert_eq!(plan.order, vec![0, 4, 1, 2, 3]);
    }

    /// Topological order is deterministic and edge-respecting for random
    /// DAGs (built acyclic by only allowing back-references).
    #[test]
    fn topo_order_is_deterministic_under_random_dags() {
        check::cases(64, 0xF10E, |gen| {
            let n = gen.usize(1, 12);
            let mut stages = Vec::with_capacity(n);
            let mut deps_of: Vec<Vec<usize>> = Vec::with_capacity(n);
            for i in 0..n {
                let mut deps = Vec::new();
                if i > 0 {
                    for d in 0..i {
                        if gen.bool() {
                            deps.push(d);
                        }
                    }
                }
                deps_of.push(deps.clone());
                let names: Vec<String> = deps.iter().map(|d| format!("s{d}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                stages.push(stage(&format!("s{i}"), &refs));
            }
            let g = graph(stages);
            let plan = g.plan().unwrap();
            let plan2 = g.plan().unwrap();
            assert_eq!(plan.order, plan2.order, "re-planning must not reorder");
            assert_eq!(plan.levels, plan2.levels);

            let pos: HashMap<usize, usize> = plan
                .order
                .iter()
                .enumerate()
                .map(|(p, &i)| (i, p))
                .collect();
            for (i, deps) in deps_of.iter().enumerate() {
                for &d in deps {
                    assert!(pos[&d] < pos[&i], "dep {d} must precede {i}");
                }
            }

            // Stage keys are deterministic too.
            let keys = g.stage_keys(&plan);
            assert_eq!(keys, g.stage_keys(&plan));
        });
    }

    #[test]
    fn random_cycles_are_always_rejected() {
        check::cases(32, 0xC1C7E, |gen| {
            // A forward chain with one deliberate back edge somewhere.
            let n = gen.usize(2, 10);
            let back_from = gen.usize(0, n - 1);
            let back_to = gen.usize(back_from + 1, n);
            let mut stages = Vec::new();
            for i in 0..n {
                let mut deps: Vec<String> = Vec::new();
                if i > 0 {
                    deps.push(format!("s{}", i - 1));
                }
                if i == back_from {
                    deps.push(format!("s{back_to}"));
                }
                let refs: Vec<&str> = deps.iter().map(String::as_str).collect();
                stages.push(stage(&format!("s{i}"), &refs));
            }
            let err = graph(stages).validate().unwrap_err();
            assert!(matches!(err, FlowError::Cycle(_)), "{err}");
        });
    }

    #[test]
    fn stage_keys_separate_kind_inputs_and_upstream() {
        let build = |kind: StageKind, token: &str, dep_token: &str| {
            let mut g = TaskGraph::new("t");
            g.add(
                Stage::new("up", StageKind::Sweep, |_| Ok(StageValue::from_text("")))
                    .input(dep_token.to_string()),
            );
            g.add(
                Stage::new("down", kind, |_| Ok(StageValue::from_text("")))
                    .dep("up")
                    .input(token.to_string()),
            );
            let plan = g.plan().unwrap();
            g.stage_keys(&plan)[1]
        };
        let base = build(StageKind::Analysis, "x=1", "s=1");
        assert_eq!(base, build(StageKind::Analysis, "x=1", "s=1"));
        assert_ne!(base, build(StageKind::Render, "x=1", "s=1"), "kind");
        assert_ne!(base, build(StageKind::Analysis, "x=2", "s=1"), "inputs");
        assert_ne!(
            base,
            build(StageKind::Analysis, "x=1", "s=2"),
            "upstream key must propagate"
        );
    }

    #[test]
    fn workflow_key_covers_name_and_stages() {
        let make = |name: &str, token: &str| {
            let mut g = TaskGraph::new(name);
            g.add(
                Stage::new("a", StageKind::Render, |_| Ok(StageValue::from_text("")))
                    .input(token.to_string()),
            );
            g.workflow_key().unwrap()
        };
        assert_eq!(make("w", "x"), make("w", "x"));
        assert_ne!(make("w", "x"), make("v", "x"));
        assert_ne!(make("w", "x"), make("w", "y"));
    }
}
