//! # heteropipe-flow
//!
//! The DAG workflow engine: whole paper figures run as dependency graphs
//! of named stages instead of straight-line harness code.
//!
//! * [`graph`] — [`TaskGraph`]s of [`Stage`]s (sweep / analysis / render
//!   kinds) with explicit dependency edges. Validation rejects duplicate
//!   names, unknown edges, and cycles with errors naming the offending
//!   stages; planning groups stages into deterministic topological
//!   levels. Every stage is content-addressed by a *stage key*
//!   ([`heteropipe_engine::composite_key`] over its kind, canonical input
//!   tokens, and upstream stage keys), and the whole graph by a
//!   *workflow key* over its name and stage keys;
//! * [`runner`] — [`FlowRunner`] executes a graph level by level over
//!   [`heteropipe::exec::par_map`]'s bounded pool (independent stages run
//!   concurrently, capped by the engine's job limit), memoizes stage
//!   values by stage key so shared sweep prefixes across figures execute
//!   exactly once, isolates failures per stage (dependents are skipped,
//!   independent branches proceed, engine retry/quarantine applies
//!   inside sweep stages), journals results by workflow key for `GET
//!   /v1/workflows/{key}`, and records a per-stage span timeline into
//!   the engine's trace store;
//! * [`figures`] — the built-in graphs: one per figure/table/study plus
//!   `repro_all`, sharing stage keys so the harness binaries, the HTTP
//!   API, and the full reproduction all hit the same memo entries.
//!
//! Like the rest of the workspace, the crate is `std`-only.

#![warn(missing_docs)]

pub mod figures;
pub mod graph;
pub mod runner;

pub use figures::{FigureGraph, PrintStyle};
pub use graph::{FlowError, Stage, StageCtx, StageKind, StageValue, TaskGraph};
pub use runner::{
    FlowMetricsSnapshot, FlowRunner, StageEvent, StageStatus, WorkflowResult, WorkflowSummary,
};
