//! End-to-end checks of the built-in figure graphs: byte-identity with
//! the direct experiment APIs, shared-sweep-prefix memoization across
//! figures, and fully-memoized warm re-runs of `repro_all`.

use std::sync::Arc;

use heteropipe::experiments::{characterize_all_with, fig456, fig9};
use heteropipe_engine::Engine;
use heteropipe_flow::{figures, FlowRunner};
use heteropipe_workloads::Scale;

fn runner() -> FlowRunner {
    FlowRunner::new(Arc::new(Engine::new().memory_cache_only()))
}

#[test]
fn fig5_graph_output_is_byte_identical_to_the_direct_api() {
    let r = runner();
    let fg = figures::graph("fig5", Scale::TEST, false).unwrap();
    let result = r.run(&fg.graph).unwrap();
    assert_eq!(result.summary.failed, 0);
    assert_eq!(result.outputs.len(), 1);

    let direct = Engine::new().memory_cache_only();
    let expected = fig456::render_fig5(&fig456::fig5(&characterize_all_with(&direct, Scale::TEST)));
    assert_eq!(
        result.outputs[0].1.as_str(),
        expected,
        "graph render must match what the pre-graph binary printed"
    );
}

#[test]
fn csv_variant_renders_the_csv_form() {
    let r = runner();
    let fg = figures::graph("fig9", Scale::TEST, true).unwrap();
    let result = r.run(&fg.graph).unwrap();
    let direct = Engine::new().memory_cache_only();
    let expected = fig9::csv(&fig9::fig9(&characterize_all_with(&direct, Scale::TEST)));
    assert_eq!(result.outputs[0].1.as_str(), expected);
}

#[test]
fn shared_sweep_prefix_across_figures_executes_once() {
    let r = runner();
    let run = |name: &str| {
        let fg = figures::graph(name, Scale::TEST, false).unwrap();
        let result = r.run(&fg.graph).unwrap();
        assert_eq!(result.summary.failed, 0, "{name}");
        result
    };
    let first = run("fig5");
    assert_eq!(first.summary.executed, 2, "characterize + fig5 run cold");
    let jobs_after_first = r.engine().metrics().jobs_executed;
    assert!(jobs_after_first > 0);

    // fig6 and fig9 share the characterize stage: the memo answers it, so
    // the engine simulates nothing further.
    for (name, hits_so_far) in [("fig6", 1), ("fig9", 2)] {
        let result = run(name);
        assert_eq!(result.summary.executed, 1, "{name}: only its own render");
        assert_eq!(
            result.summary.cache_hits, 1,
            "{name}: characterize memoized"
        );
        assert_eq!(
            r.engine().metrics().jobs_executed,
            jobs_after_first,
            "{name}: no new simulations"
        );
        assert_eq!(r.metrics().stage_cache_hits, hits_so_far);
    }
}

#[test]
fn warm_rerun_of_repro_all_executes_zero_stages() {
    let r = runner();
    let fg = figures::graph("repro_all", Scale::TEST, false).unwrap();

    let cold = r.run(&fg.graph).unwrap();
    assert_eq!(cold.summary.failed, 0);
    assert_eq!(cold.summary.skipped, 0);
    assert_eq!(cold.summary.executed, cold.summary.stages_total);
    assert_eq!(
        cold.outputs.len(),
        fg.graph.len() - 1,
        "all but characterize"
    );
    let jobs_cold = r.engine().metrics().jobs_executed;

    let warm = r.run(&fg.graph).unwrap();
    assert_eq!(warm.summary.executed, 0, "warm re-run executes no stage");
    assert_eq!(warm.summary.cache_hits, warm.summary.stages_total);
    assert_eq!(
        r.engine().metrics().jobs_executed,
        jobs_cold,
        "warm re-run simulates nothing"
    );
    // Outputs are the same shared values, byte for byte.
    assert_eq!(cold.outputs.len(), warm.outputs.len());
    for ((n1, t1), (n2, t2)) in cold.outputs.iter().zip(warm.outputs.iter()) {
        assert_eq!(n1, n2);
        assert_eq!(t1, t2);
    }
    assert_eq!(cold.key_hex, warm.key_hex);
}
