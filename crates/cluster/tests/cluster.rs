//! End-to-end cluster tests: a real coordinator and real workers on
//! ephemeral loopback ports, driven through the serve crate's client.
//!
//! The load-bearing property throughout is *deployment transparency*:
//! a sweep answered by the cluster — cold, warm from peer caches, or
//! interrupted by partitions and a worker death — must be byte-identical
//! (record lines; summaries are accounting, not results) to the same
//! sweep on a single node.

use std::path::PathBuf;
use std::sync::Arc;

use heteropipe_cluster::{serve_cluster, ClusterConfig};
use heteropipe_engine::Engine;
use heteropipe_faults::{FaultPlan, Injector};
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, Client, Json, ServerHandle};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "heteropipe-cluster-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_cfg() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        max_inflight: 32,
        ..ServerConfig::default()
    }
}

fn start_worker(cache_dir: &std::path::Path) -> ServerHandle {
    api::serve(
        server_cfg(),
        Arc::new(Engine::new().with_jobs(2).with_cache_dir(cache_dir)),
    )
    .expect("bind worker")
}

fn start_worker_with_faults(cache_dir: &std::path::Path, plan: &str) -> ServerHandle {
    let mut cfg = server_cfg();
    cfg.faults = Arc::new(Injector::new(FaultPlan::parse(plan).unwrap()));
    api::serve(
        cfg,
        Arc::new(Engine::new().with_jobs(2).with_cache_dir(cache_dir)),
    )
    .expect("bind worker")
}

fn start_coordinator(workers: Vec<String>, faults: Arc<Injector>) -> ServerHandle {
    serve_cluster(
        server_cfg(),
        ClusterConfig {
            workers,
            faults,
            ..ClusterConfig::default()
        },
    )
    .expect("bind coordinator")
}

fn job(benchmark: &str, scale: f64) -> Json {
    Json::Obj(vec![
        ("benchmark".into(), Json::str(benchmark)),
        ("system".into(), Json::str("discrete")),
        ("organization".into(), Json::str("serial")),
        ("scale".into(), Json::F64(scale)),
    ])
}

/// A sweep with distinct jobs (for shard spread) and one duplicate (for
/// dedup-consistency across the coordinator merge).
fn sweep_body() -> Json {
    let jobs = vec![
        job("rodinia/kmeans", 0.05),
        job("rodinia/hotspot", 0.05),
        job("rodinia/bfs", 0.05),
        job("rodinia/backprop", 0.05),
        job("rodinia/nw", 0.05),
        job("rodinia/kmeans", 0.05), // duplicate of jobs[0]
    ];
    Json::Obj(vec![("jobs".into(), Json::Arr(jobs))])
}

/// Record lines of an NDJSON sweep stream — everything but the trailing
/// summary object(s), which carry timing and are excluded from the
/// byte-identity contract. Sorted into submission (index) order: a
/// single node streams records in completion order, the coordinator in
/// index order; the contract is that the *records* are byte-identical.
fn record_lines(body: &[u8]) -> Vec<String> {
    let mut lines: Vec<String> = std::str::from_utf8(body)
        .expect("sweep stream is UTF-8")
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with("{\"sweep\":"))
        .map(str::to_owned)
        .collect();
    lines.sort_by_key(|l| {
        let rest = l.strip_prefix("{\"index\":").expect("record line");
        rest[..rest.find(',').unwrap()].parse::<usize>().unwrap()
    });
    lines
}

/// The trailing summary object of an NDJSON sweep stream.
fn summary(body: &[u8]) -> Json {
    let text = std::str::from_utf8(body).unwrap();
    let line = text
        .lines()
        .rev()
        .find(|l| l.starts_with("{\"sweep\":"))
        .expect("stream has a summary");
    Json::parse(line).expect("summary parses")
}

fn sweep_field(s: &Json, name: &str) -> u64 {
    s.get("sweep")
        .and_then(|v| v.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("summary missing {name}"))
}

/// Single-node ground truth for `body`: run it on a fresh, isolated
/// worker and return its record lines.
fn single_node_records(body: &Json, tag: &str) -> Vec<String> {
    let dir = temp_dir(tag);
    let handle = start_worker(&dir);
    let mut client = Client::new(handle.addr().to_string());
    let resp = client.post_json("/v1/sweeps", body).unwrap();
    assert_eq!(resp.status, 200);
    let records = record_lines(&resp.body);
    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
    records
}

#[test]
fn cold_sweep_shards_across_workers_and_matches_single_node() {
    let baseline = single_node_records(&sweep_body(), "cold-baseline");

    let (dir_a, dir_b) = (temp_dir("cold-a"), temp_dir("cold-b"));
    let (wa, wb) = (start_worker(&dir_a), start_worker(&dir_b));
    let coordinator = start_coordinator(
        vec![wa.addr().to_string(), wb.addr().to_string()],
        Arc::new(Injector::disabled()),
    );
    let mut client = Client::new(coordinator.addr().to_string());

    let resp = client.post_json("/v1/sweeps", &sweep_body()).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.header("x-sweep-key").is_some());
    assert_eq!(record_lines(&resp.body), baseline, "cold cluster sweep");
    let s = summary(&resp.body);
    assert_eq!(sweep_field(&s, "jobs_total"), 6);
    assert_eq!(sweep_field(&s, "jobs_unique"), 5);
    assert_eq!(sweep_field(&s, "duplicates"), 1);
    assert_eq!(sweep_field(&s, "executed"), 5, "cold: every unique runs");
    assert_eq!(sweep_field(&s, "peer_cache_hits"), 0);
    assert_eq!(sweep_field(&s, "failed"), 0);

    // The merge really fanned out: both workers answered calls.
    let resp = client.get("/metrics").unwrap();
    let m = resp.json().unwrap();
    let workers = m
        .get("cluster")
        .and_then(|c| c.get("workers"))
        .and_then(Json::as_array)
        .expect("worker stats");
    assert_eq!(workers.len(), 2);
    for w in workers {
        let forwarded = w.get("forwarded").and_then(Json::as_u64).unwrap();
        assert!(forwarded > 0, "worker {w:?} saw no traffic");
    }

    // Warm repeat: every unique key is now in a worker's disk cache, so
    // the peer tier answers everything and nothing executes anywhere.
    let resp = client.post_json("/v1/sweeps", &sweep_body()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(record_lines(&resp.body), baseline, "warm repeat");
    let s = summary(&resp.body);
    assert_eq!(sweep_field(&s, "peer_cache_hits"), 5);
    assert_eq!(sweep_field(&s, "executed"), 0, "warm: peer caches answer");

    coordinator.shutdown_and_join();
    wa.shutdown_and_join();
    wb.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn runs_probe_peer_caches_and_proxy_reports() {
    let (dir_a, dir_b) = (temp_dir("runs-a"), temp_dir("runs-b"));
    let (wa, wb) = (start_worker(&dir_a), start_worker(&dir_b));
    let coordinator = start_coordinator(
        vec![wa.addr().to_string(), wb.addr().to_string()],
        Arc::new(Injector::disabled()),
    );
    let mut client = Client::new(coordinator.addr().to_string());

    let body = job("rodinia/kmeans", 0.05);
    let cold = client.post_json("/v1/runs", &body).unwrap();
    assert_eq!(cold.status, 200);
    let key = cold.header("x-run-key").expect("run key").to_string();

    // Repeat: the owner's disk cache answers through the peer probe, and
    // the report bytes are identical to the executed ones.
    let warm = client.post_json("/v1/runs", &body).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, cold.body, "peer-cache hit replays the record");

    let resp = client.get("/metrics").unwrap();
    let m = resp.json().unwrap();
    let peer_hits: u64 = m
        .get("cluster")
        .and_then(|c| c.get("workers"))
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|w| w.get("peer_hits").and_then(Json::as_u64).unwrap())
        .sum();
    assert!(peer_hits >= 1, "warm run came from the peer tier");

    // The run resource proxies to the owning shard.
    let report = client.get(&format!("/v1/runs/{key}")).unwrap();
    assert_eq!(report.status, 200);
    assert_eq!(report.body, cold.body);
    let trace = client.get(&format!("/v1/runs/{key}/trace")).unwrap();
    assert_eq!(trace.status, 200, "trace lives where the run executed");

    // Prometheus exposition stays well-formed with live worker labels.
    let resp = client.get("/metrics?format=prometheus").unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).unwrap();
    heteropipe_obs::expfmt::parse(&text).expect("valid exposition format");
    assert!(text.contains("heteropipe_cluster_peer_cache_hits_total"));

    coordinator.shutdown_and_join();
    wa.shutdown_and_join();
    wb.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn partition_faults_rehash_to_identical_bytes() {
    let baseline = single_node_records(&sweep_body(), "chaos-baseline");

    // One bounded fault per scenario: with two workers, a fault on each
    // shard in the same round would mask both and correctly fail the
    // sweep with no_workers — the property under test is that a *single*
    // partition costs a rehash, never a wrong answer. A hang is also
    // thrown in: slow links delay, they don't fail.
    for plan in [
        "seed=7;cluster.probe:err=eio:max=1;cluster.probe:err=hang:ms=40:max=1",
        "seed=7;cluster.forward:err=drop:max=1",
    ] {
        let faults = Arc::new(Injector::new(FaultPlan::parse(plan).unwrap()));
        let (dir_a, dir_b) = (temp_dir("chaos-a"), temp_dir("chaos-b"));
        let (wa, wb) = (start_worker(&dir_a), start_worker(&dir_b));
        let coordinator =
            start_coordinator(vec![wa.addr().to_string(), wb.addr().to_string()], faults);
        let mut client = Client::new(coordinator.addr().to_string());

        let resp = client.post_json("/v1/sweeps", &sweep_body()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            record_lines(&resp.body),
            baseline,
            "records are placement-independent under {plan}"
        );
        let s = summary(&resp.body);
        assert_eq!(sweep_field(&s, "failed"), 0, "{plan}");
        assert!(
            sweep_field(&s, "rehashes") >= 1,
            "the injected partition forced at least one rehash ({plan})"
        );

        coordinator.shutdown_and_join();
        wa.shutdown_and_join();
        wb.shutdown_and_join();
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}

#[test]
fn worker_death_mid_sweep_self_heals_to_identical_bytes() {
    let baseline = single_node_records(&sweep_body(), "death-baseline");

    // Worker B drops the connection mid-response exactly once — the
    // coordinator sees a transport error partway through B's shard,
    // masks B, and re-executes that shard on A.
    let (dir_a, dir_b) = (temp_dir("death-a"), temp_dir("death-b"));
    let wa = start_worker(&dir_a);
    let wb = start_worker_with_faults(&dir_b, "serve.write:err=drop:max=1");
    let coordinator = start_coordinator(
        vec![wa.addr().to_string(), wb.addr().to_string()],
        Arc::new(Injector::disabled()),
    );
    let mut client = Client::new(coordinator.addr().to_string());

    let resp = client.post_json("/v1/sweeps", &sweep_body()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(record_lines(&resp.body), baseline, "mid-sweep drop");
    let s = summary(&resp.body);
    assert_eq!(sweep_field(&s, "failed"), 0);
    assert!(sweep_field(&s, "rehashes") >= 1);

    // Now B actually dies. A fresh sweep still answers identically:
    // probes/forwards to B fail, its keys rehash onto A.
    wb.shutdown_and_join();
    let resp = client.post_json("/v1/sweeps", &sweep_body()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(record_lines(&resp.body), baseline, "after worker death");
    assert_eq!(sweep_field(&summary(&resp.body), "failed"), 0);

    coordinator.shutdown_and_join();
    wa.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn inline_workflows_share_keys_with_single_node_and_journal() {
    let workflow = Json::Obj(vec![(
        "stages".into(),
        Json::Arr(vec![
            Json::Obj(vec![
                ("name".into(), Json::str("characterize")),
                ("jobs".into(), Json::Arr(vec![job("rodinia/kmeans", 0.05)])),
            ]),
            Json::Obj(vec![
                ("name".into(), Json::str("compare")),
                ("deps".into(), Json::Arr(vec![Json::str("characterize")])),
                ("jobs".into(), Json::Arr(vec![job("rodinia/hotspot", 0.05)])),
            ]),
        ]),
    )]);

    // Single-node workflow key for the same graph.
    let dir_s = temp_dir("wf-single");
    let ws = start_worker(&dir_s);
    let mut client = Client::new(ws.addr().to_string());
    let resp = client.post_json("/v1/workflows", &workflow).unwrap();
    assert_eq!(resp.status, 200);
    let single_key = resp.header("x-workflow-key").unwrap().to_string();
    ws.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir_s);

    let (dir_a, dir_b) = (temp_dir("wf-a"), temp_dir("wf-b"));
    let (wa, wb) = (start_worker(&dir_a), start_worker(&dir_b));
    let coordinator = start_coordinator(
        vec![wa.addr().to_string(), wb.addr().to_string()],
        Arc::new(Injector::disabled()),
    );
    let mut client = Client::new(coordinator.addr().to_string());

    let resp = client.post_json("/v1/workflows", &workflow).unwrap();
    assert_eq!(resp.status, 200);
    let cluster_key = resp.header("x-workflow-key").unwrap().to_string();
    assert_eq!(
        cluster_key, single_key,
        "inline stage keys agree across deployment shapes"
    );
    let events = resp.ndjson().expect("stage event stream");
    let summary = events.last().expect("workflow summary");
    let wf = summary.get("workflow").expect("summary object");
    assert_eq!(wf.get("failed").and_then(Json::as_u64), Some(0));
    assert_eq!(wf.get("stages_total").and_then(Json::as_u64), Some(2));

    // The coordinator journals inline workflows locally.
    let resp = client.get(&format!("/v1/workflows/{cluster_key}")).unwrap();
    assert_eq!(resp.status, 200);
    let journaled = resp.json().unwrap();
    assert_eq!(
        journaled
            .get("workflow")
            .and_then(|w| w.get("key"))
            .and_then(Json::as_str),
        Some(cluster_key.as_str())
    );

    coordinator.shutdown_and_join();
    wa.shutdown_and_join();
    wb.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// S3/acceptance: one `X-Request-Id` survives coordinator → worker →
/// response — the same id shows up in the worker's request log lines
/// (alongside the propagated `X-Trace-Context`) and on every span of the
/// stitched cross-node trace.
#[test]
fn request_id_propagates_into_worker_logs_and_stitched_trace() {
    let logs = heteropipe_obs::log::capture();
    heteropipe_obs::log::set_level(heteropipe_obs::log::Level::Info);
    let rid = "req-stitch-e2e-0001";

    let (dir_a, dir_b) = (temp_dir("rid-a"), temp_dir("rid-b"));
    let (wa, wb) = (start_worker(&dir_a), start_worker(&dir_b));
    let (addr_a, addr_b) = (wa.addr().to_string(), wb.addr().to_string());
    let coordinator = start_coordinator(
        vec![addr_a.clone(), addr_b.clone()],
        Arc::new(Injector::disabled()),
    );
    let mut client = Client::new(coordinator.addr().to_string());

    let resp = client
        .post_json_with_headers("/v1/sweeps", &sweep_body(), &[("X-Request-Id", rid)])
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("x-request-id"),
        Some(rid),
        "the caller's id echoes back on the response"
    );
    let sweep_key = resp.header("x-sweep-key").expect("sweep key").to_string();

    // The stitched cross-node trace: one valid Chrome array with the
    // coordinator lane plus both workers' lanes, every span stamped with
    // the originating request id.
    let trace = client
        .get_with_headers(
            &format!("/v1/sweeps/{sweep_key}/trace"),
            &[("X-Request-Id", rid)],
        )
        .unwrap();
    assert_eq!(trace.status, 200);
    let text = String::from_utf8(trace.body).unwrap();
    let parsed = Json::parse(&text).expect("stitched trace is valid JSON");
    let events = parsed.as_array().expect("trace is an array");
    assert!(text.contains("heteropipe-coordinator"));
    for addr in [&addr_a, &addr_b] {
        assert!(
            text.contains(&format!("worker {addr}")),
            "missing lane for worker {addr}"
        );
    }
    let mut span_pids = std::collections::HashSet::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        span_pids.insert(ev.get("pid").and_then(Json::as_u64).unwrap());
        assert_eq!(
            ev.get("args")
                .and_then(|a| a.get("request_id"))
                .and_then(Json::as_str),
            Some(rid),
            "span missing the request id: {ev:?}"
        );
    }
    assert!(span_pids.contains(&0), "coordinator spans present");
    assert!(
        span_pids.contains(&1) && span_pids.contains(&2),
        "both workers' spans are on their own lanes, got pids {span_pids:?}"
    );

    coordinator.shutdown_and_join();
    wa.shutdown_and_join();
    wb.shutdown_and_join();

    // The same id went through the workers' request logs, next to the
    // coordinator's trace context.
    let lines = logs.lock().unwrap();
    let worker_sweep_logs = lines
        .iter()
        .filter(|l| {
            l.contains("\"msg\":\"request\"")
                && l.contains(&format!("\"request_id\":\"{rid}\""))
                && l.contains("\"path\":\"/v1/sweeps\"")
                && l.contains("\"trace_context\":\"trace=req-stitch-e2e-0001;")
        })
        .count();
    assert!(
        worker_sweep_logs >= 1,
        "no worker request log carries the propagated id and trace context"
    );
    drop(lines);

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

// ---- durability: coordinator crash-resume ------------------------------

/// A worker whose every job execution stalls (timing only, never record
/// bytes), so a cluster sweep stays in flight long enough to kill the
/// coordinator mid-run.
fn start_slow_worker(cache_dir: &std::path::Path, ms: u64) -> ServerHandle {
    let plan = format!("seed=5;job.exec:err=hang:ms={ms}:p=1:max=1000");
    let engine = Engine::new()
        .with_jobs(1)
        .with_cache_dir(cache_dir)
        .with_faults(Arc::new(Injector::new(FaultPlan::parse(&plan).unwrap())));
    api::serve(server_cfg(), Arc::new(engine)).expect("bind slow worker")
}

/// Spawns the real `coordinator` binary with stderr teed to `log`, then
/// tails the log for the "listening" line to learn the ephemeral address.
// The child is returned to the caller, which kills and waits on it.
#[allow(clippy::zombie_processes)]
fn spawn_coordinator(
    workers: &[String],
    journal: &std::path::Path,
    log: &std::path::Path,
) -> (std::process::Child, String) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_coordinator"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &workers.join(","),
            "--journal-dir",
            journal.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::fs::File::create(log).expect("create coordinator log"))
        .env_remove("HETEROPIPE_FAULTS")
        .env_remove("HETEROPIPE_TENANTS")
        .spawn()
        .expect("spawn coordinator binary");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        if let Ok(text) = std::fs::read_to_string(log) {
            if let Some(line) = text.lines().find(|l| l.contains("\"msg\":\"listening\"")) {
                let addr = Json::parse(line)
                    .and_then(|v| v.get("addr").and_then(Json::as_str).map(str::to_string))
                    .expect("listening line carries addr");
                return (child, addr);
            }
        }
        if std::time::Instant::now() >= deadline {
            let _ = child.kill();
            panic!("coordinator did not report listening within 60s");
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// SIGKILL the coordinator mid-sweep and prove the journal resumes the
/// job to records byte-identical to a single node. The coordinator
/// journals the merged stream only after the cluster sweep completes, so
/// the kill (on wall clock, while the state is still `running`) leaves
/// an intent with zero records — resume re-runs the sweep, and the
/// workers' disk caches make the already-finished jobs cache hits.
#[test]
fn coordinator_sigkill_mid_sweep_resumes_to_byte_identical_records() {
    let body = sweep_body();
    let baseline = single_node_records(&body, "resume-baseline");

    let (dir_a, dir_b) = (temp_dir("resume-a"), temp_dir("resume-b"));
    // 300 ms per exec and serial workers: >= ceil(5/2) * 300 ms = 900 ms
    // of wall clock minimum, so a kill at ~400 ms lands mid-sweep.
    let (wa, wb) = (
        start_slow_worker(&dir_a, 300),
        start_slow_worker(&dir_b, 300),
    );
    let workers = vec![wa.addr().to_string(), wb.addr().to_string()];
    let journal_dir = temp_dir("resume-journal");
    let logs = temp_dir("resume-logs");
    std::fs::create_dir_all(&logs).expect("create log dir");

    // First life: accept the sweep, then pull the plug mid-run.
    let (mut child, addr) = spawn_coordinator(&workers, &journal_dir, &logs.join("first.log"));
    let mut client = Client::new(addr).with_timeout(std::time::Duration::from_secs(10));
    let accepted = client
        .post_json("/v1/sweeps?async=1", &body)
        .expect("async submit");
    assert_eq!(accepted.status, 202, "async submit is accepted");
    let key = accepted
        .json()
        .and_then(|v| v.get("key").and_then(Json::as_str).map(str::to_string))
        .expect("202 body carries the sweep key");

    std::thread::sleep(std::time::Duration::from_millis(400));
    let status = client
        .get(&format!("/v1/sweeps/{key}"))
        .expect("status poll");
    assert_eq!(status.status, 200);
    assert_eq!(
        status.json().unwrap().get("state").and_then(Json::as_str),
        Some("running"),
        "kill must land while the sweep is in flight"
    );
    child.kill().expect("SIGKILL the coordinator");
    let _ = child.wait();

    // Coarse journaling: the intent survived the crash, no records did.
    {
        let j = heteropipe_engine::Journal::open(&journal_dir).expect("reopen journal");
        let replay = j
            .replay(&key)
            .expect("replay readable")
            .expect("segment exists");
        assert!(!replay.done, "kill landed before the seal");
        assert!(
            replay.records.is_empty(),
            "the coordinator journals merged records only after the sweep"
        );
        assert_eq!(j.incomplete(), vec![key.clone()]);
    }

    // Second life over the same journal: the resume driver re-runs the
    // sweep unprompted; finished jobs are worker cache hits.
    let (mut child, addr) = spawn_coordinator(&workers, &journal_dir, &logs.join("second.log"));
    let mut client = Client::new(addr).with_timeout(std::time::Duration::from_secs(10));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let resp = client
            .get(&format!("/v1/sweeps/{key}"))
            .expect("status poll");
        assert_eq!(resp.status, 200, "resumed coordinator knows the sweep");
        let v = resp.json().unwrap();
        match v.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("failed") => panic!("resumed sweep failed: {v:?}"),
            _ => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "resumed sweep did not finish"
                );
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    }

    let records = client
        .get(&format!("/v1/sweeps/{key}/records"))
        .expect("records fetch");
    assert_eq!(records.status, 200);
    assert_eq!(
        record_lines(&records.body),
        baseline,
        "resumed cluster records are byte-identical to a single node"
    );

    // The second life counted the recovery, and deadline admission works
    // at the coordinator exactly as it does at a worker.
    let m = client
        .get("/metrics")
        .expect("metrics")
        .json()
        .expect("metrics parse");
    let recovered = m
        .get("journal")
        .and_then(|j| j.get("recovered"))
        .and_then(Json::as_u64)
        .expect("journal metrics present");
    assert!(recovered >= 1, "the resume counts as a recovery");
    let spent = client
        .get_with_headers("/v1/benchmarks", &[("X-Deadline-Ms", "0")])
        .expect("deadline probe");
    assert_eq!(spent.status, 504, "coordinator honors deadline admission");

    child.kill().expect("stop resumed coordinator");
    let _ = child.wait();
    wa.shutdown_and_join();
    wb.shutdown_and_join();
    for dir in [&dir_a, &dir_b, &journal_dir, &logs] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
