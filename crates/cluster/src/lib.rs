#![warn(missing_docs)]
//! Sharded coordinator/worker execution for heteropipe.
//!
//! A cluster is a static set of workers — each an ordinary
//! `heteropipe-serve` HTTP server over its own engine and disk cache —
//! fronted by one coordinator speaking the same `/v1` API. The
//! coordinator owns no engine: it places run keys on workers by
//! rendezvous hashing ([`ring`]), coalesces concurrent identical
//! requests ([`flight`]), fans sweeps out shard-wise and merges the
//! per-worker NDJSON streams back into one deterministic stream, and
//! treats every worker's disk cache as a cluster-wide **third cache
//! tier**: before executing anywhere it asks the owning shard whether
//! the record already exists ([`coordinator`]).
//!
//! The cache hierarchy a cluster client sees, cheapest first:
//!
//! 1. worker memory cache (engine tier 1)
//! 2. worker disk cache (engine tier 2)
//! 3. **peer disk caches via the coordinator's owner probe (tier 3)**
//! 4. execution
//!
//! Placement is deterministic and records carry no timing, so a sweep
//! merged across N workers — even one interrupted by a worker death and
//! rehashed mid-flight — is byte-identical to the same sweep on a single
//! node. `docs/cluster.md` covers the topology and failure semantics.

pub mod coordinator;
pub mod flight;
pub mod ring;
pub mod stitch;

pub use coordinator::{serve_cluster, serve_cluster_durable, ClusterConfig, Coordinator};
pub use flight::{FlightMap, FlightResult};
pub use ring::WorkerRing;
