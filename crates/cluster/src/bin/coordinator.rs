//! `coordinator`: front a static worker set with one sharded endpoint.
//!
//! Workers are ordinary `serve` processes (see `heteropipe-bench`'s
//! `serve --worker`), each with its own engine and disk cache. The
//! coordinator speaks the same `/v1` API, places keys by rendezvous
//! hashing, merges sweep streams deterministically, and uses the
//! workers' disk caches as a cluster-wide third cache tier.
//!
//! ```text
//! cargo run --release -p heteropipe-cluster --bin coordinator -- \
//!     --addr 127.0.0.1:7800 --workers 127.0.0.1:7801,127.0.0.1:7802
//! ```

use std::sync::Arc;
use std::time::Duration;

use heteropipe_cluster::{serve_cluster, serve_cluster_durable, ClusterConfig};
use heteropipe_obs::log::{self as obs_log, Level};
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::shutdown;

struct Args {
    addr: Option<String>,
    workers: Vec<String>,
    threads: Option<usize>,
    max_inflight: Option<usize>,
    timeout_ms: Option<u64>,
    journal_dir: Option<String>,
    journal_keep_s: u64,
}

/// Default `--journal-keep` retention: seven days, in seconds.
const DEFAULT_JOURNAL_KEEP_S: u64 = 7 * 24 * 60 * 60;

fn parse_args() -> Args {
    let mut out = Args {
        addr: None,
        workers: Vec::new(),
        threads: None,
        max_inflight: None,
        timeout_ms: None,
        journal_dir: None,
        journal_keep_s: DEFAULT_JOURNAL_KEEP_S,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => out.addr = Some(value("--addr")),
            "--workers" => {
                out.workers = value("--workers")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--threads" => out.threads = Some(value("--threads").parse().expect("--threads")),
            "--max-inflight" => {
                out.max_inflight = Some(value("--max-inflight").parse().expect("--max-inflight"));
            }
            "--timeout-ms" => {
                out.timeout_ms = Some(value("--timeout-ms").parse().expect("--timeout-ms"));
            }
            "--journal-dir" => out.journal_dir = Some(value("--journal-dir")),
            "--journal-keep" => {
                out.journal_keep_s = value("--journal-keep").parse().expect("--journal-keep");
            }
            other => panic!(
                "unknown flag {other} (expected --addr, --workers, --threads, --max-inflight, --timeout-ms, --journal-dir, --journal-keep)"
            ),
        }
    }
    out
}

fn main() {
    obs_log::init_from_env_or(Level::Info);
    let args = parse_args();
    if args.workers.is_empty() {
        panic!("--workers is required: a comma-separated list of worker host:port addresses");
    }
    let mut cfg = ServerConfig::default();
    if let Some(addr) = &args.addr {
        cfg.addr = addr.clone();
    }
    if let Some(threads) = args.threads {
        cfg.threads = threads;
    }
    if let Some(max_inflight) = args.max_inflight {
        cfg.max_inflight = max_inflight;
    }

    // One injector feeds both the server seams (serve.read/serve.write)
    // and the cluster seams (cluster.probe/cluster.forward).
    let faults = Arc::new(
        heteropipe_faults::Injector::from_env()
            .unwrap_or_else(|e| panic!("bad {}: {e}", heteropipe_faults::ENV_VAR)),
    );
    if faults.is_enabled() {
        obs_log::warn("coordinator", "fault injection enabled", &[]);
    }
    cfg.faults = Arc::clone(&faults);

    let mut cluster = ClusterConfig {
        workers: args.workers.clone(),
        faults,
        ..ClusterConfig::default()
    };
    if let Some(ms) = args.timeout_ms {
        cluster.timeout = Duration::from_millis(ms);
    }

    // `--journal-dir` makes the coordinator durable: async sweeps and
    // workflows are journaled ahead of execution and interrupted ones
    // resume on the next start. Sealed segments past the `--journal-keep`
    // retention are swept first.
    let handle = match &args.journal_dir {
        Some(dir) => {
            let journal = heteropipe_engine::Journal::open(dir)
                .unwrap_or_else(|e| panic!("could not open journal at {dir}: {e}"))
                .with_faults(Arc::clone(&cluster.faults));
            journal.gc(Duration::from_secs(args.journal_keep_s));
            serve_cluster_durable(cfg, cluster, Arc::new(journal))
        }
        None => serve_cluster(cfg, cluster),
    }
    .unwrap_or_else(|e| {
        panic!("could not bind coordinator: {e}");
    });
    obs_log::info(
        "coordinator",
        "listening",
        &[
            ("addr", handle.addr().to_string().into()),
            ("workers", args.workers.join(",").into()),
            ("durable", args.journal_dir.is_some().into()),
        ],
    );

    shutdown::install();
    while !shutdown::signaled() {
        std::thread::sleep(Duration::from_millis(100));
    }
    obs_log::info(
        "coordinator",
        "shutting down, draining in-flight requests",
        &[],
    );
    handle.shutdown_and_join();
}
