//! Cross-node trace stitching: one Chrome trace per cluster request.
//!
//! The coordinator records its own wall-clock spans (plan, per-key peer
//! probes, shard forwards, merge) while a sweep runs, plus enough
//! metadata to find each shard's worker-side trace later — the
//! worker-local sweep key the shard's `POST /v1/sweeps` journaled under,
//! and a clock-offset estimate for that worker. Nothing is fetched on
//! the hot path; `GET /v1/sweeps/{key}/trace` resolves the plan lazily,
//! pulling each worker's journaled trace and splicing every machine onto
//! a single timeline:
//!
//! - **pid 0** — the coordinator: `tid 0` carries the request lifecycle
//!   (plan/merge), `tid 1+slot` the probe/forward activity against that
//!   shard.
//! - **pid 1+slot** — one process lane per worker, holding the worker's
//!   own sweep phases shifted onto the coordinator's clock.
//!
//! Worker timestamps are relative to the worker's own sweep start; the
//! offset estimate places that start on the coordinator timeline as
//! `forward_ts + (forward_dur - worker_wall) / 2` — the classic
//! half-residual-RTT clock sample, derived from the `offset_us` leg of
//! the `X-Trace-Context` exchange. Every stitched span is re-stamped
//! with the stitching request's `X-Request-Id`, so a span grepped out of
//! a worker log and a span in the merged timeline correlate on the same
//! id even when the worker journaled the trace under an older request.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use heteropipe_obs::chrome::{render_complete, TraceBuilder};
use heteropipe_serve::json::Json;

/// One coordinator-side span on the stitched timeline.
pub struct CoordSpan {
    /// Span name (`plan`, `peer_probe`, `forward`, `merge`, ...).
    pub name: String,
    /// Coordinator thread lane: 0 = request lifecycle, 1+slot = shard.
    pub tid: u32,
    /// Start, microseconds from the coordinator's request start.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Extra args rendered onto the span (request id is added for free).
    pub args: Vec<(String, String)>,
}

/// Where one shard's worker-side spans live and how to place them.
pub struct StitchShard {
    /// Worker slot index (also selects the process lane, `1 + slot`).
    pub slot: usize,
    /// Worker address, for the lane label.
    pub addr: String,
    /// Worker-local sweep key whose journaled trace holds the shard's
    /// execution phases; `None` when every key was a peer-cache hit and
    /// nothing was posted.
    pub worker_sweep_key: Option<String>,
    /// Estimated coordinator-timeline microsecond at which the worker's
    /// trace clock started.
    pub offset_us: f64,
}

/// Everything needed to stitch one cluster request's trace on demand.
pub struct StitchPlan {
    /// The cluster sweep key the plan is stored under.
    pub sweep_key: String,
    /// Correlation id of the request that ran the sweep.
    pub request_id: String,
    /// Total jobs in the sweep, for the trace title.
    pub jobs: u64,
    /// Coordinator-side spans, already on the coordinator timeline.
    pub spans: Vec<CoordSpan>,
    /// One entry per shard call that succeeded.
    pub shards: Vec<StitchShard>,
}

/// Renders the stitched Chrome trace for `plan`. `fetch` resolves one
/// shard's worker-side trace JSON (the rendered Chrome array the worker
/// serves at `GET /v1/sweeps/{key}/trace`); returning `None` — worker
/// unreachable, trace evicted — degrades that lane to the coordinator's
/// view of it rather than failing the whole trace.
pub fn render(plan: &StitchPlan, fetch: impl Fn(&StitchShard) -> Option<String>) -> String {
    let mut b = TraceBuilder::new();
    b.process_name(0, "heteropipe-coordinator");
    b.thread_name(0, 0, &format!("cluster sweep [{} jobs]", plan.jobs));
    for shard in &plan.shards {
        b.thread_name(
            0,
            1 + shard.slot as u32,
            &format!("shard {} -> {}", shard.slot, shard.addr),
        );
    }
    for span in &plan.spans {
        let mut args: Vec<(&str, &str)> = vec![("request_id", &plan.request_id)];
        for (k, v) in &span.args {
            args.push((k, v));
        }
        b.push_raw(render_complete(
            0,
            span.tid,
            &span.name,
            "cluster",
            span.ts_us,
            span.dur_us.max(0.001),
            &args,
        ));
    }
    for shard in &plan.shards {
        let pid = 1 + shard.slot as u32;
        b.process_name(pid, &format!("worker {}", shard.addr));
        b.thread_name(pid, 0, "sweep phases");
        let Some(text) = fetch(shard) else { continue };
        for ev in worker_events(&text) {
            b.push_raw(restamp(&ev, pid, shard.offset_us, &plan.request_id));
        }
    }
    b.build()
}

/// A worker span lifted out of a fetched trace, pre-restamp.
struct WorkerEvent {
    name: String,
    cat: String,
    tid: u32,
    ts_us: f64,
    dur_us: f64,
    args: Vec<(String, String)>,
}

/// Parses a worker's rendered Chrome array down to its own wall-clock
/// spans: complete (`"ph":"X"`) events on pid 0. Metadata rows and the
/// simulated-component lane (pid 1) are dropped — the stitched trace
/// re-labels lanes itself, and simulated picoseconds don't belong on a
/// wall-clock timeline.
fn worker_events(text: &str) -> Vec<WorkerEvent> {
    let Some(Json::Arr(events)) = Json::parse(text) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for ev in &events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        if ev.get("pid").and_then(Json::as_u64) != Some(0) {
            continue;
        }
        let mut args = Vec::new();
        if let Some(Json::Obj(fields)) = ev.get("args") {
            for (k, v) in fields {
                if let Some(v) = v.as_str() {
                    args.push((k.clone(), v.to_string()));
                }
            }
        }
        out.push(WorkerEvent {
            name: ev
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            cat: ev
                .get("cat")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            tid: ev.get("tid").and_then(Json::as_u64).unwrap_or(0) as u32,
            ts_us: ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0),
            dur_us: ev.get("dur").and_then(Json::as_f64).unwrap_or(0.0),
            args,
        });
    }
    out
}

/// Re-renders one worker span on the stitched timeline: the worker lane's
/// pid, timestamps shifted by the shard's clock-offset estimate, and the
/// stitching request's id force-stamped over whatever the worker had.
fn restamp(ev: &WorkerEvent, pid: u32, offset_us: f64, request_id: &str) -> String {
    let mut args: Vec<(&str, &str)> = vec![("request_id", request_id)];
    for (k, v) in &ev.args {
        if k != "request_id" {
            args.push((k, v));
        }
    }
    render_complete(
        pid,
        ev.tid,
        &ev.name,
        &ev.cat,
        ev.ts_us + offset_us,
        ev.dur_us.max(0.001),
        &args,
    )
}

#[derive(Default)]
struct StoreInner {
    order: VecDeque<String>,
    map: HashMap<String, StitchPlan>,
}

/// A bounded FIFO store of [`StitchPlan`]s keyed by cluster sweep key,
/// mirroring the engine's trace store: inserting past capacity evicts
/// the oldest plan.
pub struct StitchStore {
    cap: usize,
    inner: Mutex<StoreInner>,
}

impl StitchStore {
    /// A store retaining at most `cap` plans.
    pub fn new(cap: usize) -> StitchStore {
        StitchStore {
            cap,
            inner: Mutex::new(StoreInner::default()),
        }
    }

    /// Inserts (or replaces) the plan for its sweep key.
    pub fn insert(&self, plan: StitchPlan) {
        let mut inner = self.inner.lock().unwrap();
        let key = plan.sweep_key.clone();
        if inner.map.insert(key.clone(), plan).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.cap {
                let evicted = inner.order.pop_front().expect("order non-empty");
                inner.map.remove(&evicted);
            }
        }
    }

    /// Runs `f` over the plan stored for `key_hex`, if any.
    pub fn with<R>(&self, key_hex: &str, f: impl FnOnce(&StitchPlan) -> R) -> Option<R> {
        let inner = self.inner.lock().unwrap();
        inner.map.get(key_hex).map(f)
    }

    /// Number of plans currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> StitchPlan {
        StitchPlan {
            sweep_key: "ab".repeat(16),
            request_id: "req-stitch".into(),
            jobs: 3,
            spans: vec![
                CoordSpan {
                    name: "plan".into(),
                    tid: 0,
                    ts_us: 0.0,
                    dur_us: 40.0,
                    args: vec![("jobs".into(), "3".into())],
                },
                CoordSpan {
                    name: "forward".into(),
                    tid: 1,
                    ts_us: 50.0,
                    dur_us: 900.0,
                    args: Vec::new(),
                },
            ],
            shards: vec![
                StitchShard {
                    slot: 0,
                    addr: "127.0.0.1:9001".into(),
                    worker_sweep_key: Some("cd".repeat(16)),
                    offset_us: 100.0,
                },
                StitchShard {
                    slot: 1,
                    addr: "127.0.0.1:9002".into(),
                    worker_sweep_key: None,
                    offset_us: 120.0,
                },
            ],
        }
    }

    fn worker_trace() -> String {
        let mut b = TraceBuilder::new();
        b.process_name(0, "heteropipe-engine");
        b.push_raw(render_complete(
            0,
            0,
            "execute",
            "sweep[2]",
            10.0,
            500.0,
            &[("request_id", "req-old"), ("outcome", "sweep")],
        ));
        // A simulated-component event on pid 1 must not leak through.
        b.push_raw(render_complete(
            1,
            2,
            "gpu kernel",
            "hotspot",
            0.0,
            9.0,
            &[],
        ));
        b.build()
    }

    #[test]
    fn stitches_worker_lanes_onto_one_timeline() {
        let p = plan();
        let rendered = render(&p, |shard| {
            shard.worker_sweep_key.as_ref().map(|_| worker_trace())
        });
        let parsed = Json::parse(&rendered).expect("stitched trace is valid JSON");
        let Json::Arr(events) = parsed else {
            panic!("trace is an array")
        };
        // Coordinator lane + both worker lanes are labeled.
        assert!(rendered.contains("heteropipe-coordinator"));
        assert!(rendered.contains("worker 127.0.0.1:9001"));
        assert!(rendered.contains("worker 127.0.0.1:9002"));
        // The worker span landed on pid 1 (slot 0), shifted by the clock
        // offset (10 + 100), and re-stamped with the stitch request id.
        let worker_span = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("execute"))
            .expect("worker execute span present");
        assert_eq!(worker_span.get("pid").and_then(Json::as_u64), Some(1));
        assert_eq!(worker_span.get("ts").and_then(Json::as_f64), Some(110.0));
        assert_eq!(
            worker_span
                .get("args")
                .and_then(|a| a.get("request_id"))
                .and_then(Json::as_str),
            Some("req-stitch")
        );
        // The worker's pid-1 simulated event was dropped.
        assert!(!rendered.contains("gpu kernel"));
        // Every complete span carries the request id.
        for ev in &events {
            if ev.get("ph").and_then(Json::as_str) == Some("X") {
                assert_eq!(
                    ev.get("args")
                        .and_then(|a| a.get("request_id"))
                        .and_then(Json::as_str),
                    Some("req-stitch"),
                    "span missing request id: {ev:?}"
                );
            }
        }
    }

    #[test]
    fn store_evicts_oldest_past_capacity() {
        let store = StitchStore::new(2);
        for i in 0..4 {
            let mut p = plan();
            p.sweep_key = format!("{i:032x}");
            store.insert(p);
        }
        assert_eq!(store.len(), 2);
        assert!(store
            .with("00000000000000000000000000000000", |_| ())
            .is_none());
        assert!(store
            .with("00000000000000000000000000000003", |_| ())
            .is_some());
    }
}
