//! Cross-node single-flight: concurrent identical `POST /v1/runs` at the
//! coordinator coalesce onto one worker call.
//!
//! This generalizes the engine's in-process flight map one level up the
//! stack: the engine deduplicates identical jobs racing into one process;
//! this map deduplicates identical *requests* racing into the cluster, so
//! N clients asking for the same run key cost one probe + one forward,
//! not N. The leader (first arrival) executes; followers block on a
//! condvar and receive a clone of the leader's response.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// What a flight resolves to: enough of the upstream response to replay
/// it to every waiter (status, body, and the run's content address).
#[derive(Debug, Clone)]
pub struct FlightResult {
    /// Upstream HTTP status.
    pub status: u16,
    /// Upstream body bytes, verbatim.
    pub body: Vec<u8>,
    /// The `X-Run-Key` to stamp on the replayed response, when known.
    pub run_key: Option<String>,
    /// The `ETag` to stamp on the replayed response — set when the body
    /// came from the peer-cache probe, whose content address doubles as a
    /// strong validator.
    pub etag: Option<String>,
}

struct Flight {
    done: Mutex<Option<FlightResult>>,
    cv: Condvar,
}

/// The in-flight map: run key → the one call resolving it.
#[derive(Default)]
pub struct FlightMap {
    flights: Mutex<HashMap<u128, Arc<Flight>>>,
}

impl FlightMap {
    /// An empty map.
    pub fn new() -> FlightMap {
        FlightMap::default()
    }

    /// Runs `exec` for `key`, coalescing concurrent callers: the first
    /// caller (leader) executes and publishes; the rest block until the
    /// leader finishes and get a clone of its result. Returns the result
    /// and whether this caller was coalesced onto another's flight.
    ///
    /// `exec` must not panic — error responses are results, not panics —
    /// or followers of the poisoned flight would block forever.
    pub fn run(&self, key: u128, exec: impl FnOnce() -> FlightResult) -> (FlightResult, bool) {
        let flight = {
            let mut flights = self.flights.lock().expect("flight map poisoned");
            if let Some(existing) = flights.get(&key) {
                Some(Arc::clone(existing))
            } else {
                flights.insert(
                    key,
                    Arc::new(Flight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    }),
                );
                None
            }
        };
        match flight {
            Some(flight) => {
                let mut done = flight.done.lock().expect("flight poisoned");
                while done.is_none() {
                    done = flight.cv.wait(done).expect("flight poisoned");
                }
                (done.clone().expect("flight resolved"), true)
            }
            None => {
                let result = exec();
                let mut flights = self.flights.lock().expect("flight map poisoned");
                let flight = flights.remove(&key).expect("leader owns its flight");
                drop(flights);
                *flight.done.lock().expect("flight poisoned") = Some(result.clone());
                flight.cv.notify_all();
                (result, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn sequential_calls_each_lead() {
        let map = FlightMap::new();
        let execs = AtomicU64::new(0);
        for _ in 0..3 {
            let (result, coalesced) = map.run(42, || {
                execs.fetch_add(1, Ordering::SeqCst);
                FlightResult {
                    status: 200,
                    body: b"ok".to_vec(),
                    run_key: None,
                    etag: None,
                }
            });
            assert_eq!(result.status, 200);
            assert!(!coalesced);
        }
        assert_eq!(execs.load(Ordering::SeqCst), 3, "no flight to join");
    }

    #[test]
    fn concurrent_callers_coalesce_onto_one_execution() {
        let map = Arc::new(FlightMap::new());
        let execs = Arc::new(AtomicU64::new(0));
        let coalesced_total = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let (map, execs, coalesced_total) = (
                    Arc::clone(&map),
                    Arc::clone(&execs),
                    Arc::clone(&coalesced_total),
                );
                std::thread::spawn(move || {
                    let (result, coalesced) = map.run(7, || {
                        // Hold the flight open long enough for the other
                        // threads to pile in behind the leader.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        execs.fetch_add(1, Ordering::SeqCst);
                        FlightResult {
                            status: 200,
                            body: b"led".to_vec(),
                            run_key: Some("aa".into()),
                            etag: None,
                        }
                    });
                    if coalesced {
                        coalesced_total.fetch_add(1, Ordering::SeqCst);
                    }
                    assert_eq!(result.body, b"led");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(execs.load(Ordering::SeqCst), 1, "exactly one leader ran");
        assert_eq!(coalesced_total.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let map = FlightMap::new();
        let (_, c1) = map.run(1, || FlightResult {
            status: 200,
            body: Vec::new(),
            run_key: None,
            etag: None,
        });
        let (_, c2) = map.run(2, || FlightResult {
            status: 200,
            body: Vec::new(),
            run_key: None,
            etag: None,
        });
        assert!(!c1 && !c2);
    }
}
