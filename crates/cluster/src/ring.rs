//! Rendezvous (highest-random-weight) placement of run keys over a static
//! worker set.
//!
//! Every `(key, worker slot)` pair gets a score from
//! [`heteropipe_engine::shard_score`]; the key's owner is the live worker
//! with the highest score. Two properties make this the right shape here:
//!
//! * **Deterministic** — scores hash the worker's *slot index*, not its
//!   address, so a test cluster on ephemeral ports shards exactly like a
//!   production one, and the same key always lands on the same slot.
//! * **Minimal movement** — when a worker goes down, only the keys it
//!   owned move (each to its second-highest scorer); every other key's
//!   placement is untouched, so a failure invalidates one shard's worth
//!   of cache locality instead of the whole ring.

use heteropipe_engine::{shard_score, RunKey};

/// The static worker set, ordered by slot index.
#[derive(Debug, Clone)]
pub struct WorkerRing {
    workers: Vec<String>,
}

impl WorkerRing {
    /// A ring over `workers` (slot `i` is `workers[i]`).
    pub fn new(workers: Vec<String>) -> WorkerRing {
        WorkerRing { workers }
    }

    /// Number of slots (live or not).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the ring has no workers at all.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The address at `slot`.
    pub fn addr(&self, slot: usize) -> &str {
        &self.workers[slot]
    }

    /// All addresses, in slot order.
    pub fn addrs(&self) -> &[String] {
        &self.workers
    }

    /// The slot owning `key` among workers not masked out by `down`
    /// (`down[i] == true` skips slot `i`). `None` when every slot is down.
    /// `down` must be ring-sized.
    pub fn owner(&self, key: RunKey, down: &[bool]) -> Option<usize> {
        debug_assert_eq!(down.len(), self.workers.len());
        (0..self.workers.len())
            .filter(|&slot| !down[slot])
            .max_by_key(|&slot| shard_score(key, slot as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> WorkerRing {
        WorkerRing::new((0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect())
    }

    #[test]
    fn owner_is_deterministic_and_total() {
        let r = ring(3);
        let down = vec![false; 3];
        for i in 0..100u64 {
            let key = RunKey(i as u128 * 0x9e37_79b9);
            let a = r.owner(key, &down).unwrap();
            let b = r.owner(key, &down).unwrap();
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn masking_a_slot_only_moves_its_own_keys() {
        let r = ring(4);
        let all_up = vec![false; 4];
        let mut victim_down = vec![false; 4];
        victim_down[2] = true;
        for i in 0..200u64 {
            let key = RunKey(i as u128 * 0x6a09_e667);
            let before = r.owner(key, &all_up).unwrap();
            let after = r.owner(key, &victim_down).unwrap();
            if before != 2 {
                assert_eq!(before, after, "survivor placement moved for key {i}");
            } else {
                assert_ne!(after, 2, "key {i} still assigned to a down worker");
            }
        }
    }

    #[test]
    fn all_down_has_no_owner() {
        let r = ring(2);
        assert_eq!(r.owner(RunKey(7), &[true, true]), None);
    }
}
