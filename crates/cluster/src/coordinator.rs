//! The coordinator: a `heteropipe-serve`-compatible front door that owns
//! no engine of its own. Run keys place work on a static worker set via
//! rendezvous hashing ([`crate::ring`]), sweeps fan out shard-wise and
//! merge back into one deterministic NDJSON stream, and every worker's
//! disk cache doubles as a cluster-wide third cache tier: before placing
//! work anywhere, the coordinator asks the owning shard for a cached
//! record (`GET /v1/runs/{key}` is side-effect-free on the worker).
//!
//! Failure semantics (full treatment in `docs/cluster.md`): each worker
//! has its own circuit breaker; a transport failure records against it,
//! masks the worker out of the current request, and rehashes the affected
//! keys onto the survivors — so a mid-sweep worker death re-executes only
//! that worker's shard, and the merged stream stays byte-identical to a
//! fault-free run because records carry no timing and placement is
//! deterministic. The `cluster.probe` and `cluster.forward` fault sites
//! let `heteropipe-faults` inject partitions and slow workers at the
//! exact seams real networks fail on.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use heteropipe_engine::{run_key, sweep_key, Engine, Journal, RunKey};
use heteropipe_faults::{FaultKind, Injector, Site};
use heteropipe_flow::{FlowRunner, Stage, StageKind, StageValue, TaskGraph};
use heteropipe_obs::log as obs_log;
use heteropipe_obs::{HistogramHandle, MetricRegistry};
use heteropipe_serve::api::{
    self, parse_body, parse_job_spec, stage_event_json, sweep_entries, wants_async,
    wants_prometheus, workflow_graph, workflow_result_json, workflow_summary_json, SpecError,
    MAX_SWEEP_JOBS, MAX_WORKFLOW_STAGES,
};
use heteropipe_serve::breaker::{Admission, BreakerConfig, CircuitBreaker};
use heteropipe_serve::error::envelope;
use heteropipe_serve::http::{BodyStream, Request, Response};
use heteropipe_serve::jobs::{self, AsyncJob, AsyncJobs, JobState};
use heteropipe_serve::json::Json;
use heteropipe_serve::server::{Handler, Server, ServerConfig, ServerHandle, ServerStats};
use heteropipe_serve::tenant::{Admit, TenantGate};
use heteropipe_serve::{Client, ClientPool, ClientResponse};

use crate::flight::{FlightMap, FlightResult};
use crate::ring::WorkerRing;
use crate::stitch::{self, CoordSpan, StitchPlan, StitchShard, StitchStore};

/// How many stitched-trace plans the coordinator retains (oldest
/// evicted), mirroring the engine-side trace store's bound.
const STITCH_CAP: usize = 64;

/// Profiler slots for the coordinator's cluster seams, registered once
/// per process like the engine's (see `heteropipe_obs::profile`).
mod cprof {
    use heteropipe_obs::profile::{self, PhaseId};
    use std::sync::OnceLock;

    macro_rules! phase_slot {
        ($fn_name:ident, $phase:literal) => {
            pub(crate) fn $fn_name() -> PhaseId {
                static P: OnceLock<PhaseId> = OnceLock::new();
                *P.get_or_init(|| profile::phase($phase))
            }
        };
    }

    phase_slot!(probe, "cluster.peer_probe");
    phase_slot!(forward, "cluster.forward");
    phase_slot!(merge, "cluster.merge");
}

/// The `X-Trace-Context` header value the coordinator sends with every
/// worker call: the trace id (the originating request id), the named
/// parent span on the coordinator timeline, and the coordinator-side
/// send offset in microseconds — the clock sample trace stitching uses
/// to place worker spans (see `crate::stitch`).
fn trace_context(rid: &str, parent: &str, offset_us: u64) -> String {
    format!("trace={rid};parent={parent};offset_us={offset_us}")
}

/// Concurrent peer-cache probes per shard. The client pool keeps idle
/// connections per host, so probing a shard's keys in parallel costs a
/// few extra sockets and removes the serialized round-trip chain that
/// docs/observability.md measured as the cluster's dominant overhead.
const PROBE_CONCURRENCY: usize = 8;

/// A request's absolute deadline, derived from its `X-Deadline-Ms`
/// budget at admission. Copy so sweep shards and stage closures can
/// carry it; each coordinator→worker hop re-derives the remaining
/// budget and forwards it as the next hop's `X-Deadline-Ms`.
#[derive(Clone, Copy)]
pub(crate) struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline: every hop proceeds, no header forwarded.
    fn none() -> Deadline {
        Deadline(None)
    }

    /// The deadline a request's (already validated) header implies.
    fn from_request(req: &Request) -> Deadline {
        Deadline(
            api::deadline_ms(req)
                .ok()
                .flatten()
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
        )
    }

    /// Whether the budget is spent.
    fn expired(&self) -> bool {
        self.0.is_some_and(|dl| Instant::now() >= dl)
    }

    /// Milliseconds left to forward downstream: `Ok(None)` when no
    /// deadline is set, `Err(())` when the budget is spent (a whole
    /// remaining millisecond is required — forwarding `0` would only
    /// make the worker refuse the call anyway).
    fn remaining_ms(&self) -> Result<Option<u64>, ()> {
        match self.0 {
            None => Ok(None),
            Some(dl) => {
                let left = dl.saturating_duration_since(Instant::now()).as_millis() as u64;
                if left == 0 {
                    Err(())
                } else {
                    Ok(Some(left))
                }
            }
        }
    }
}

/// Coordinator tuning knobs.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Worker addresses (`host:port`), in slot order. Placement hashes
    /// the slot index, so the order is part of the cluster's identity.
    pub workers: Vec<String>,
    /// Per-worker circuit-breaker configuration.
    pub breaker: BreakerConfig,
    /// I/O timeout for coordinator→worker calls.
    pub timeout: Duration,
    /// Fault injector for the `cluster.probe` / `cluster.forward` seams.
    pub faults: Arc<Injector>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            workers: Vec::new(),
            breaker: BreakerConfig::default(),
            timeout: Duration::from_secs(120),
            faults: Arc::new(Injector::disabled()),
        }
    }
}

/// Per-worker health and traffic accounting.
struct WorkerState {
    addr: String,
    breaker: CircuitBreaker,
    forwarded: AtomicU64,
    peer_hits: AtomicU64,
    peer_misses: AtomicU64,
    failures: AtomicU64,
    scrape_errors: AtomicU64,
    fwd_us: HistogramHandle,
}

/// The coordinator handler. Share via `Arc` (see [`Coordinator::new`]).
pub struct Coordinator {
    ring: WorkerRing,
    workers: Vec<WorkerState>,
    pool: ClientPool,
    flights: FlightMap,
    faults: Arc<Injector>,
    /// Runs inline workflow graphs locally; stage bodies execute cluster
    /// sweeps, so the engine behind this runner only memoizes stage
    /// values — it never simulates, hence memory-cache-only.
    flow: Arc<FlowRunner>,
    rehashes: AtomicU64,
    flights_coalesced: AtomicU64,
    sweeps: AtomicU64,
    sweep_jobs: AtomicU64,
    /// Stitch plans for recent cluster sweeps, resolved lazily by
    /// `GET /v1/sweeps/{key}/trace` (see `crate::stitch`).
    stitch: StitchStore,
    stats: OnceLock<Arc<ServerStats>>,
    self_ref: OnceLock<Weak<Coordinator>>,
    /// Write-ahead journal for async cluster sweeps/workflows, when the
    /// coordinator was started durably (see [`serve_cluster_durable`]).
    journal: OnceLock<Arc<Journal>>,
    /// Live `?async=1` job registry (shared shape with serve's `Api`).
    async_jobs: AsyncJobs,
    /// Per-tenant admission gate (`HETEROPIPE_TENANTS`).
    tenants: OnceLock<Arc<TenantGate>>,
    /// Requests refused or aborted because their deadline budget ran out.
    deadline_exceeded: AtomicU64,
}

/// Binds and starts a server running a [`Coordinator`] over `cluster`.
pub fn serve_cluster(cfg: ServerConfig, cluster: ClusterConfig) -> std::io::Result<ServerHandle> {
    serve_cluster_inner(cfg, cluster, None)
}

/// Like [`serve_cluster`], but with a write-ahead journal: async sweeps
/// and workflows are journaled before execution, and any incomplete
/// segments found on startup are resumed.
pub fn serve_cluster_durable(
    cfg: ServerConfig,
    cluster: ClusterConfig,
    journal: Arc<Journal>,
) -> std::io::Result<ServerHandle> {
    serve_cluster_inner(cfg, cluster, Some(journal))
}

fn serve_cluster_inner(
    cfg: ServerConfig,
    cluster: ClusterConfig,
    journal: Option<Arc<Journal>>,
) -> std::io::Result<ServerHandle> {
    let coordinator = Coordinator::new(cluster);
    let tenants = TenantGate::from_env()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    coordinator.attach_tenants(Arc::new(tenants));
    if let Some(journal) = journal {
        coordinator.attach_journal(journal);
    }
    let handler: Arc<dyn Handler> = Arc::clone(&coordinator) as Arc<dyn Handler>;
    let server = Server::bind(cfg, handler)?;
    coordinator.attach_stats(server.stats());
    let handle = server.start();
    coordinator.resume_incomplete();
    Ok(handle)
}

impl Coordinator {
    /// A coordinator over the worker set in `cfg`.
    pub fn new(cfg: ClusterConfig) -> Arc<Coordinator> {
        let workers = cfg
            .workers
            .iter()
            .map(|addr| WorkerState {
                addr: addr.clone(),
                breaker: CircuitBreaker::new(cfg.breaker),
                forwarded: AtomicU64::new(0),
                peer_hits: AtomicU64::new(0),
                peer_misses: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                scrape_errors: AtomicU64::new(0),
                fwd_us: HistogramHandle::default(),
            })
            .collect();
        let flow = Arc::new(FlowRunner::new(Arc::new(Engine::new().memory_cache_only())));
        let coordinator = Arc::new(Coordinator {
            ring: WorkerRing::new(cfg.workers),
            workers,
            pool: ClientPool::new().with_timeout(cfg.timeout),
            flights: FlightMap::new(),
            faults: cfg.faults,
            flow,
            rehashes: AtomicU64::new(0),
            flights_coalesced: AtomicU64::new(0),
            sweeps: AtomicU64::new(0),
            sweep_jobs: AtomicU64::new(0),
            stitch: StitchStore::new(STITCH_CAP),
            stats: OnceLock::new(),
            self_ref: OnceLock::new(),
            journal: OnceLock::new(),
            async_jobs: AsyncJobs::new(),
            tenants: OnceLock::new(),
            deadline_exceeded: AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&coordinator);
        let _ = coordinator.self_ref.set(weak);
        coordinator
    }

    /// Wires in the write-ahead journal for async jobs. Called by
    /// [`serve_cluster_durable`]; later calls are ignored.
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        let _ = self.journal.set(journal);
    }

    /// Wires in the per-tenant admission gate. Called by
    /// [`serve_cluster`]; later calls are ignored.
    pub fn attach_tenants(&self, tenants: Arc<TenantGate>) {
        let _ = self.tenants.set(tenants);
    }

    /// The attached journal, when this coordinator was started durably.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.get()
    }

    /// Request admission: per-tenant token buckets and the deadline
    /// header, checked before routing. Observability routes stay exempt
    /// so throttled tenants can still watch their own backlog drain.
    fn admission(&self, req: &Request) -> Option<Response> {
        let exempt = matches!(
            req.path.as_str(),
            "/healthz" | "/healthz/live" | "/healthz/ready" | "/metrics"
        );
        if exempt {
            return None;
        }
        if let Some(gate) = self.tenants.get() {
            if let Admit::Throttled {
                tenant,
                retry_after_s,
            } = gate.admit(req.header("x-api-key"))
            {
                return Some(envelope(
                    429,
                    "tenant_throttled",
                    &format!("tenant {tenant:?} is over its request budget"),
                    Some(retry_after_s),
                    &req.request_id,
                ));
            }
        }
        match api::deadline_ms(req) {
            Err(e) => Some(fail(req, 400, "bad_request", &e)),
            Ok(Some(0)) => Some(self.deadline_refusal(req)),
            Ok(_) => None,
        }
    }

    /// The 504 envelope for a request whose deadline budget is already
    /// spent, counted for `/metrics`.
    fn deadline_refusal(&self, req: &Request) -> Response {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        envelope(
            504,
            "deadline_exceeded",
            "deadline budget exhausted before execution",
            Some(1),
            &req.request_id,
        )
    }

    /// The worker addresses this coordinator shards over, in slot order.
    pub fn worker_addrs(&self) -> &[String] {
        self.ring.addrs()
    }

    /// Wires in the server's counters so `/metrics` can report them.
    /// Called by [`serve_cluster`]; later calls are ignored.
    pub fn attach_stats(&self, stats: Arc<ServerStats>) {
        let _ = self.stats.set(stats);
    }

    // ---- worker transport -------------------------------------------------

    /// Rolls the injector at a cluster seam: a `hang` fault delays the
    /// call (slow worker / slow link) but lets it proceed; every other
    /// kind surfaces as the transport error a partition or dead worker
    /// would produce.
    fn roll(&self, site: Site) -> std::io::Result<()> {
        if let Some(fault) = self.faults.roll(site) {
            if fault.kind == FaultKind::Hang {
                std::thread::sleep(Duration::from_millis(fault.hang_ms));
            } else {
                return Err(fault.io_error());
            }
        }
        Ok(())
    }

    /// One coordinator→worker call through the pool, with the fault seam,
    /// the worker's breaker, and per-worker accounting wrapped around it.
    fn call_worker(
        &self,
        slot: usize,
        site: Site,
        call: impl FnOnce(&mut Client) -> std::io::Result<ClientResponse>,
    ) -> std::io::Result<ClientResponse> {
        let w = &self.workers[slot];
        let start = Instant::now();
        let result = self.roll(site).and_then(|()| {
            let mut client = self.pool.checkout(&w.addr);
            call(&mut client)
        });
        match &result {
            Ok(_) => {
                w.breaker.record_success();
                w.forwarded.fetch_add(1, Ordering::Relaxed);
                w.fwd_us.observe(start.elapsed().as_micros() as u64);
            }
            Err(e) => {
                w.breaker.record_failure();
                w.failures.fetch_add(1, Ordering::Relaxed);
                obs_log::warn(
                    "cluster",
                    "worker call failed",
                    &[
                        ("worker", w.addr.clone().into()),
                        ("site", site.label().into()),
                        ("error", e.to_string().into()),
                    ],
                );
            }
        }
        result
    }

    /// The request-local down mask: workers whose breaker sheds right now
    /// start the request masked out (rehash-on-open). The mask only grows
    /// within a request as transport failures are observed.
    fn down_mask(&self) -> Vec<bool> {
        self.workers
            .iter()
            .map(|w| w.breaker.admit() == Admission::Shed)
            .collect()
    }

    /// Peer-cache probe: asks `slot` for a cached report. `Ok(Some(body))`
    /// is a hit, `Ok(None)` a miss; transport errors propagate so the
    /// caller can decide whether to mask the worker. `offset_us` is the
    /// coordinator-side send offset carried in `X-Trace-Context`;
    /// `budget` the remaining deadline to forward as `X-Deadline-Ms`.
    fn probe_peer(
        &self,
        slot: usize,
        hex: &str,
        rid: &str,
        offset_us: u64,
        budget: Option<&str>,
    ) -> std::io::Result<Option<Vec<u8>>> {
        let path = format!("/v1/runs/{hex}");
        let tc = trace_context(rid, "peer_probe", offset_us);
        let mut headers = vec![("X-Request-Id", rid), ("X-Trace-Context", tc.as_str())];
        if let Some(ms) = budget {
            headers.push(("X-Deadline-Ms", ms));
        }
        let t0 = Instant::now();
        let resp = self.call_worker(slot, Site::ClusterProbe, |c| {
            c.get_with_headers(&path, &headers)
        });
        heteropipe_obs::profile::record(cprof::probe(), t0.elapsed().as_nanos() as u64);
        let resp = resp?;
        if resp.status == 200 {
            self.workers[slot].peer_hits.fetch_add(1, Ordering::Relaxed);
            Ok(Some(resp.body))
        } else {
            self.workers[slot]
                .peer_misses
                .fetch_add(1, Ordering::Relaxed);
            Ok(None)
        }
    }
}

/// A worker's response replayed verbatim (status + JSON body), plus any
/// resource-address headers worth keeping.
fn passthrough(resp: &ClientResponse) -> Response {
    let mut out = Response {
        status: resp.status,
        headers: vec![("Content-Type".into(), "application/json".into())],
        body: resp.body.clone(),
        chunked: false,
        stream: None,
    };
    for name in [
        "X-Run-Key",
        "X-Sweep-Key",
        "X-Workflow-Key",
        "ETag",
        "Retry-After",
    ] {
        if let Some(v) = resp.header(&name.to_ascii_lowercase()) {
            out = out.with_header(name, v);
        }
    }
    out
}

fn fail(req: &Request, status: u16, code: &str, message: &str) -> Response {
    envelope(status, code, message, None, &req.request_id)
}

fn spec_fail(req: &Request, e: &SpecError) -> Response {
    fail(req, e.status, e.code, &e.message)
}

fn method_not_allowed(req: &Request, allow: &str) -> Response {
    fail(req, 405, "method_not_allowed", "method not allowed").with_header("Allow", allow)
}

fn no_workers(rid: &str) -> Response {
    envelope(
        503,
        "no_workers",
        "no live workers to place the request on",
        Some(1),
        rid,
    )
}

fn valid_key(key: &str) -> bool {
    key.len() == 32 && key.bytes().all(|b| b.is_ascii_hexdigit())
}

impl Handler for Coordinator {
    fn handle(&self, req: &Request) -> Response {
        if let Some(refused) = self.admission(req) {
            return refused;
        }
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz" | "/healthz/live") => {
                Response::json(200, &Json::Obj(vec![("status".into(), Json::str("ok"))]))
            }
            ("GET", "/healthz/ready") => self.ready(req),
            ("GET", "/metrics") => self.metrics(req),
            ("GET", "/v1/benchmarks") => api::benchmarks(),
            ("GET", "/v1/debug/profile") => api::profile_snapshot(),
            ("POST", "/v1/runs") => self.run(req),
            ("POST", "/v1/sweeps") => self.sweeps(req),
            ("POST", "/v1/workflows") => self.workflows(req),
            (_, path) if path.starts_with("/v1/workflows/") => {
                let key = &path["/v1/workflows/".len()..];
                if req.method == "GET" {
                    self.workflow_lookup(req, key)
                } else {
                    method_not_allowed(req, "GET")
                }
            }
            (_, path) if path.starts_with("/v1/runs/") => {
                self.run_resource(req, &path["/v1/runs/".len()..])
            }
            // The stitched cross-node trace for a recent cluster sweep
            // (see crate::stitch and docs/observability.md).
            (_, path) if path.starts_with("/v1/sweeps/") => {
                self.sweep_resource(req, &path["/v1/sweeps/".len()..])
            }
            // The experiment catalogue is static metadata; both GET forms
            // answer locally from the same tables the workers serve.
            ("GET", "/v1/experiments") => api::experiments(),
            ("GET", path) if path.starts_with("/v1/experiments/") => {
                api::experiment_lookup(req, &path["/v1/experiments/".len()..])
            }
            ("POST", path) if path.starts_with("/v1/experiments/") => self.experiment(req),
            (
                _,
                "/healthz" | "/healthz/live" | "/healthz/ready" | "/metrics" | "/v1/benchmarks",
            ) => method_not_allowed(req, "GET"),
            (_, "/v1/runs" | "/v1/sweeps" | "/v1/workflows") => method_not_allowed(req, "POST"),
            (_, "/v1/experiments") => method_not_allowed(req, "GET"),
            (_, path) if path.starts_with("/v1/experiments/") => {
                method_not_allowed(req, "GET, POST")
            }
            _ => fail(req, 404, "not_found", "no such route"),
        }
    }
}

impl Coordinator {
    /// Readiness: 200 while at least one worker's breaker admits traffic
    /// and the coordinator is not draining; 503 + `Retry-After` otherwise.
    fn ready(&self, req: &Request) -> Response {
        let down = self.down_mask();
        let live = down.iter().filter(|&&d| !d).count();
        let shutting_down = self
            .stats
            .get()
            .is_some_and(|s| s.shutting_down.load(Ordering::SeqCst));
        let probe = vec![
            (
                "status".to_string(),
                Json::str(if live == 0 || shutting_down {
                    "unready"
                } else {
                    "ready"
                }),
            ),
            ("workers_total".to_string(), Json::U64(down.len() as u64)),
            ("workers_live".to_string(), Json::U64(live as u64)),
            ("shutting_down".to_string(), Json::Bool(shutting_down)),
        ];
        if live == 0 || shutting_down {
            let mut fields = vec![
                (
                    "error".to_string(),
                    Json::Obj(vec![
                        ("code".into(), Json::str("unready")),
                        (
                            "message".into(),
                            Json::str(if shutting_down {
                                "shutting down"
                            } else {
                                "every worker breaker is open"
                            }),
                        ),
                        ("retry_after_s".into(), Json::U64(1)),
                    ]),
                ),
                ("request_id".to_string(), Json::str(&req.request_id)),
            ];
            fields.extend(probe);
            Response::json(503, &Json::Obj(fields)).with_header("Retry-After", "1")
        } else {
            Response::json(200, &Json::Obj(probe))
        }
    }

    // ---- runs -------------------------------------------------------------

    /// `POST /v1/runs`: coalesce concurrent identical requests onto one
    /// flight, probe the owning shard's cache (the peer tier), and only
    /// then forward the raw body to the owner — rehashing to the next
    /// scorer when the owner is unreachable.
    fn run(&self, req: &Request) -> Response {
        let Some(body) = parse_body(req) else {
            return fail(req, 400, "bad_request", "body must be a JSON object");
        };
        let job = match parse_job_spec(&body) {
            Ok(job) => job,
            Err(e) => return spec_fail(req, &e),
        };
        let key = run_key(&job.spec());
        let deadline = Deadline::from_request(req);
        let (result, coalesced) = self.flights.run(key.0, || {
            self.lead_run(key, &req.body, &req.request_id, deadline)
        });
        if coalesced {
            self.flights_coalesced.fetch_add(1, Ordering::Relaxed);
        }
        let mut resp = Response {
            status: result.status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: result.body,
            chunked: false,
            stream: None,
        };
        if let Some(k) = &result.run_key {
            resp = resp.with_header("X-Run-Key", k);
        }
        if let Some(etag) = &result.etag {
            resp = resp.with_header("ETag", etag);
        }
        resp
    }

    /// The leader's side of a run flight: peer probe, then forward.
    fn lead_run(&self, key: RunKey, raw: &[u8], rid: &str, deadline: Deadline) -> FlightResult {
        let hex = key.hex();
        let mut down = self.down_mask();
        loop {
            let Ok(budget) = deadline.remaining_ms() else {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                let resp = envelope(
                    504,
                    "deadline_exceeded",
                    "deadline budget exhausted mid-request",
                    Some(1),
                    rid,
                );
                return FlightResult {
                    status: resp.status,
                    body: resp.body,
                    run_key: Some(hex),
                    etag: None,
                };
            };
            let budget = budget.map(|ms| ms.to_string());
            let Some(slot) = self.ring.owner(key, &down) else {
                let resp = no_workers(rid);
                return FlightResult {
                    status: resp.status,
                    body: resp.body,
                    run_key: Some(hex),
                    etag: None,
                };
            };
            // Third cache tier: the owning shard's disk may already hold
            // the record — serve it without executing anywhere. A probe
            // transport error is not yet a verdict on the worker; the
            // forward below decides whether to rehash.
            if let Ok(Some(report)) = self.probe_peer(slot, &hex, rid, 0, budget.as_deref()) {
                // The peer tier served validated bytes; the content
                // address is a strong validator, echoed as the ETag
                // exactly as the worker's own GET would.
                let etag = format!("\"{hex}\"");
                return FlightResult {
                    status: 200,
                    body: report,
                    run_key: Some(hex),
                    etag: Some(etag),
                };
            }
            let tc = trace_context(rid, "run_forward", 0);
            let mut headers = vec![("X-Request-Id", rid), ("X-Trace-Context", tc.as_str())];
            if let Some(ms) = budget.as_deref() {
                headers.push(("X-Deadline-Ms", ms));
            }
            let forwarded = self.call_worker(slot, Site::ClusterForward, |c| {
                c.post_raw_with_headers("/v1/runs", raw.to_vec(), &headers)
            });
            match forwarded {
                Ok(resp) => {
                    let run_key = resp
                        .header("x-run-key")
                        .map(str::to_owned)
                        .or(Some(hex.clone()));
                    return FlightResult {
                        status: resp.status,
                        body: resp.body,
                        run_key,
                        etag: None,
                    };
                }
                Err(_) => {
                    down[slot] = true;
                    self.rehashes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// `GET /v1/runs/{key}[/trace]`: proxied to the owning shard (reports
    /// and traces live where the run executed), rehashing on failure.
    fn run_resource(&self, req: &Request, rest: &str) -> Response {
        let (key, sub) = match rest.split_once('/') {
            Some((key, sub)) => (key, Some(sub)),
            None => (rest, None),
        };
        if req.method != "GET" {
            return method_not_allowed(req, "GET");
        }
        if !valid_key(key) {
            return fail(
                req,
                400,
                "bad_request",
                &format!("run key must be 32 hex characters, got {key:?}"),
            );
        }
        match sub {
            None | Some("trace") => {}
            Some(other) => {
                return fail(
                    req,
                    404,
                    "not_found",
                    &format!("no such run sub-resource: {other:?} (try /trace)"),
                )
            }
        }
        let parsed = RunKey::from_hex(key).expect("validated above");
        self.proxy_to_owner(req, parsed, &req.path.clone())
    }

    /// Forwards a GET for `path` to the worker owning `key`, walking down
    /// the rendezvous ranking as workers fail.
    fn proxy_to_owner(&self, req: &Request, key: RunKey, path: &str) -> Response {
        let deadline = Deadline::from_request(req);
        let mut down = self.down_mask();
        loop {
            let Ok(budget) = deadline.remaining_ms() else {
                return self.deadline_refusal(req);
            };
            let budget = budget.map(|ms| ms.to_string());
            let Some(slot) = self.ring.owner(key, &down) else {
                return no_workers(&req.request_id);
            };
            let tc = trace_context(&req.request_id, "proxy", 0);
            let mut headers = vec![
                ("X-Request-Id", req.request_id.as_str()),
                ("X-Trace-Context", tc.as_str()),
            ];
            if let Some(ms) = budget.as_deref() {
                headers.push(("X-Deadline-Ms", ms));
            }
            let result = self.call_worker(slot, Site::ClusterForward, |c| {
                c.get_with_headers(path, &headers)
            });
            match result {
                Ok(resp) => return passthrough(&resp),
                Err(_) => {
                    down[slot] = true;
                    self.rehashes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// `POST /v1/experiments/{name}`: whole-figure renders have no run key
    /// to shard on; they go to the first live slot (deterministic, and the
    /// worker's own caches keep repeats cheap).
    fn experiment(&self, req: &Request) -> Response {
        let deadline = Deadline::from_request(req);
        let mut down = self.down_mask();
        loop {
            let Ok(budget) = deadline.remaining_ms() else {
                return self.deadline_refusal(req);
            };
            let budget = budget.map(|ms| ms.to_string());
            let Some(slot) = (0..self.ring.len()).find(|&s| !down[s]) else {
                return no_workers(&req.request_id);
            };
            let tc = trace_context(&req.request_id, "experiment", 0);
            let mut headers = vec![
                ("X-Request-Id", req.request_id.as_str()),
                ("X-Trace-Context", tc.as_str()),
            ];
            if let Some(ms) = budget.as_deref() {
                headers.push(("X-Deadline-Ms", ms));
            }
            let result = self.call_worker(slot, Site::ClusterForward, |c| {
                c.post_raw_with_headers(&req.path, req.body.clone(), &headers)
            });
            match result {
                Ok(resp) => return passthrough(&resp),
                Err(_) => {
                    down[slot] = true;
                    self.rehashes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

// ---- sweeps ---------------------------------------------------------------

/// A merged cluster sweep: every record line in global submission order
/// (no trailing newlines) plus the coordinator's summary.
pub(crate) struct ClusterSweep {
    pub lines: Vec<String>,
    pub summary: ClusterSweepSummary,
}

/// The coordinator's sweep accounting — its own schema, one level above
/// the worker summaries it aggregates (and like them, excluded from the
/// stream's byte-identity guarantee).
pub(crate) struct ClusterSweepSummary {
    pub key_hex: String,
    pub jobs_total: u64,
    pub jobs_unique: u64,
    pub duplicates: u64,
    pub cache_hits: u64,
    pub peer_cache_hits: u64,
    pub executed: u64,
    pub coalesced: u64,
    pub failed: u64,
    pub rehashes: u64,
    pub wall_ms: u64,
}

impl ClusterSweepSummary {
    fn json(&self) -> Json {
        Json::Obj(vec![(
            "sweep".to_string(),
            Json::Obj(vec![
                ("key".into(), Json::str(self.key_hex.clone())),
                ("jobs_total".into(), Json::U64(self.jobs_total)),
                ("jobs_unique".into(), Json::U64(self.jobs_unique)),
                ("duplicates".into(), Json::U64(self.duplicates)),
                ("cache_hits".into(), Json::U64(self.cache_hits)),
                ("peer_cache_hits".into(), Json::U64(self.peer_cache_hits)),
                ("executed".into(), Json::U64(self.executed)),
                ("coalesced".into(), Json::U64(self.coalesced)),
                ("failed".into(), Json::U64(self.failed)),
                ("rehashes".into(), Json::U64(self.rehashes)),
                ("wall_ms".into(), Json::U64(self.wall_ms)),
            ]),
        )])
    }
}

/// A worker sweep record split into the parts the merge rewrites (local
/// index, status) and the part it must preserve byte-for-byte (the
/// `"report":…}` / `"error":…}` payload suffix — re-serializing a report
/// could perturb float bytes, so it is never parsed).
fn split_record(line: &str) -> Option<(usize, String, String)> {
    let rest = line.strip_prefix("{\"index\":")?;
    let index: usize = rest[..rest.find(',')?].parse().ok()?;
    // First occurrences are the record's own fields: the fixed prefix
    // (index, key, status, deduped) precedes any payload content.
    let after_status = &line[line.find("\"status\":\"")? + "\"status\":\"".len()..];
    let status = after_status[..after_status.find('"')?].to_string();
    let after_deduped = &line[line.find("\"deduped\":")? + "\"deduped\":".len()..];
    let payload = after_deduped[after_deduped.find(',')? + 1..].to_string();
    Some((index, status, payload))
}

/// Renders one merged record: the single-node `sweep_record_json` layout
/// with the global index and occurrence-order dedup flag spliced around
/// the preserved payload.
fn render_record(index: usize, hex: &str, status: &str, deduped: bool, payload: &str) -> String {
    format!("{{\"index\":{index},\"key\":\"{hex}\",\"status\":\"{status}\",\"deduped\":{deduped},{payload}")
}

/// What a shard call resolved: per unique-key payloads plus the worker
/// summary's execution accounting, and the coordinator-side spans and
/// stitch metadata trace stitching needs (see `crate::stitch`).
struct ShardOutcome {
    resolved: Vec<(usize, String, String)>,
    cache_hits: u64,
    executed: u64,
    coalesced: u64,
    peer_hits: u64,
    spans: Vec<CoordSpan>,
    stitch: Option<StitchShard>,
}

impl Coordinator {
    /// `POST /v1/sweeps`: parse and key every entry, then fan the unique
    /// keys out shard-wise and merge the per-worker streams into one
    /// deterministic stream (records sorted by global submission index,
    /// then the coordinator summary).
    fn sweeps(&self, req: &Request) -> Response {
        let Some(body) = parse_body(req) else {
            return fail(req, 400, "bad_request", "body must be a JSON object");
        };
        let entries = match sweep_entries(&body) {
            Ok(entries) => entries,
            Err(e) => return spec_fail(req, &e),
        };
        if entries.is_empty() {
            return fail(req, 400, "bad_request", "sweep has no jobs");
        }
        if entries.len() > MAX_SWEEP_JOBS {
            return fail(
                req,
                413,
                "payload_too_large",
                &format!(
                    "sweep of {} jobs exceeds the {MAX_SWEEP_JOBS}-job cap",
                    entries.len()
                ),
            );
        }
        if wants_async(req) {
            return self.sweep_async(req, &entries);
        }
        let deadline = Deadline::from_request(req);
        let outcome = match self.cluster_sweep(&entries, &req.request_id, deadline) {
            Ok(outcome) => outcome,
            Err(e) => return self.sweep_fail(req, &e),
        };
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        self.sweep_jobs
            .fetch_add(outcome.summary.jobs_total, Ordering::Relaxed);
        let sweep_hex = outcome.summary.key_hex.clone();
        let stream = BodyStream::new(move |sink| {
            for line in &outcome.lines {
                sink.send(format!("{line}\n").as_bytes())?;
            }
            sink.send(format!("{}\n", outcome.summary.json().dump()).as_bytes())
        });
        Response::streaming(200, "application/x-ndjson", stream)
            .with_header("X-Sweep-Key", &sweep_hex)
    }

    /// The envelope for a failed sweep: a deadline abort carries
    /// `Retry-After` and counts toward the deadline metric; everything
    /// else is the plain spec-error envelope.
    fn sweep_fail(&self, req: &Request, e: &SpecError) -> Response {
        if e.code == "deadline_exceeded" {
            self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            return envelope(e.status, e.code, &e.message, Some(1), &req.request_id);
        }
        spec_fail(req, e)
    }

    /// The sweep core shared by `POST /v1/sweeps` and inline workflow
    /// stages: dedup to unique keys, probe/execute per shard with
    /// rehash-on-failure, and reassemble global records.
    pub(crate) fn cluster_sweep(
        &self,
        entries: &[Json],
        rid: &str,
        deadline: Deadline,
    ) -> Result<ClusterSweep, SpecError> {
        let start = Instant::now();
        let mut owned = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            match parse_job_spec(entry) {
                Ok(job) => owned.push(job),
                Err(e) => {
                    return Err(SpecError {
                        status: e.status,
                        code: e.code,
                        message: format!("jobs[{i}]: {}", e.message),
                    })
                }
            }
        }
        let keys: Vec<RunKey> = owned.iter().map(|o| run_key(&o.spec())).collect();
        let key_hex = sweep_key(&keys).hex();

        // In-batch dedup, mirroring the engine: the first occurrence of a
        // key leads (deduped=false), later occurrences follow. Duplicates
        // never cross shards — a key has exactly one owner.
        let mut unique: Vec<(RunKey, Vec<usize>)> = Vec::new();
        let mut seen: HashMap<u128, usize> = HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            match seen.get(&k.0) {
                Some(&u) => unique[u].1.push(i),
                None => {
                    seen.insert(k.0, unique.len());
                    unique.push((k, vec![i]));
                }
            }
        }
        let mut spans = vec![CoordSpan {
            name: "plan".into(),
            tid: 0,
            ts_us: 0.0,
            dur_us: start.elapsed().as_micros() as f64,
            args: vec![
                ("jobs".into(), entries.len().to_string()),
                ("unique".into(), unique.len().to_string()),
            ],
        }];
        let mut stitch_shards: Vec<StitchShard> = Vec::new();

        let mut resolved: Vec<Option<(String, String)>> = vec![None; unique.len()];
        let mut pending: Vec<usize> = (0..unique.len()).collect();
        let mut down = self.down_mask();
        let mut rehashes = 0u64;
        let (mut cache_hits, mut peer_hits, mut executed, mut coalesced) = (0u64, 0u64, 0u64, 0u64);

        while !pending.is_empty() {
            // A spent deadline aborts the remaining shards: the caller
            // answers 504 instead of placing work nobody is waiting for.
            if deadline.expired() {
                return Err(SpecError {
                    status: 504,
                    code: "deadline_exceeded",
                    message: format!(
                        "deadline budget exhausted with {} of {} unique jobs unresolved",
                        pending.len(),
                        unique.len()
                    ),
                });
            }
            // Assign every pending unique key to its owner under the
            // current mask. Owners exist for all keys or none.
            let mut shards: HashMap<usize, Vec<usize>> = HashMap::new();
            for &u in &pending {
                match self.ring.owner(unique[u].0, &down) {
                    Some(slot) => shards.entry(slot).or_default().push(u),
                    None => {
                        // No live workers: the remaining keys fail in
                        // place so the stream stays well-formed.
                        for &u in &pending {
                            resolved[u] = Some((
                                "error".to_string(),
                                "\"error\":{\"code\":\"no_workers\",\"message\":\"no live workers to place the job on\"}}".to_string(),
                            ));
                        }
                        pending.clear();
                        shards.clear();
                        break;
                    }
                }
            }
            if pending.is_empty() {
                break;
            }

            let results: Vec<(usize, Vec<usize>, std::io::Result<ShardOutcome>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = shards
                        .into_iter()
                        .map(|(slot, uidxs)| {
                            let unique = &unique;
                            let t0 = &start;
                            scope.spawn(move || {
                                let outcome = self
                                    .run_shard(slot, &uidxs, unique, entries, rid, t0, deadline);
                                (slot, uidxs, outcome)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });

            pending.clear();
            for (slot, uidxs, outcome) in results {
                match outcome {
                    Ok(shard) => {
                        cache_hits += shard.cache_hits;
                        peer_hits += shard.peer_hits;
                        executed += shard.executed;
                        coalesced += shard.coalesced;
                        spans.extend(shard.spans);
                        stitch_shards.extend(shard.stitch);
                        for (u, status, payload) in shard.resolved {
                            resolved[u] = Some((status, payload));
                        }
                    }
                    Err(_) => {
                        // The shard's worker is unreachable: mask it out
                        // and rehash its keys onto the survivors.
                        down[slot] = true;
                        rehashes += 1;
                        pending.extend(uidxs);
                    }
                }
            }
        }
        self.rehashes.fetch_add(rehashes, Ordering::Relaxed);

        let merge_ts = start.elapsed().as_micros() as f64;
        let merge_t0 = Instant::now();
        let mut lines = vec![String::new(); keys.len()];
        let mut failed = 0u64;
        for (u, (key, globals)) in unique.iter().enumerate() {
            let (status, payload) = resolved[u].as_ref().expect("every unique key resolves");
            let hex = key.hex();
            if status == "error" {
                failed += globals.len() as u64;
            }
            for (j, &g) in globals.iter().enumerate() {
                lines[g] = render_record(g, &hex, status, j > 0, payload);
            }
        }
        heteropipe_obs::profile::record(cprof::merge(), merge_t0.elapsed().as_nanos() as u64);
        spans.push(CoordSpan {
            name: "merge".into(),
            tid: 0,
            ts_us: merge_ts,
            dur_us: start.elapsed().as_micros() as f64 - merge_ts,
            args: vec![("records".into(), keys.len().to_string())],
        });
        let jobs_total = keys.len() as u64;
        let jobs_unique = unique.len() as u64;
        self.stitch.insert(StitchPlan {
            sweep_key: key_hex.clone(),
            request_id: rid.to_string(),
            jobs: jobs_total,
            spans,
            shards: stitch_shards,
        });
        Ok(ClusterSweep {
            lines,
            summary: ClusterSweepSummary {
                key_hex,
                jobs_total,
                jobs_unique,
                duplicates: jobs_total - jobs_unique,
                cache_hits,
                peer_cache_hits: peer_hits,
                executed,
                coalesced,
                failed,
                rehashes,
                wall_ms: start.elapsed().as_millis() as u64,
            },
        })
    }

    /// One shard's share of a sweep: probe the peer cache per key — up to
    /// [`PROBE_CONCURRENCY`] probes in flight at once — then POST the
    /// misses as a worker-local sweep and split its records. Any
    /// transport error fails the whole shard (the caller rehashes).
    #[allow(clippy::too_many_arguments)]
    fn run_shard(
        &self,
        slot: usize,
        uidxs: &[usize],
        unique: &[(RunKey, Vec<usize>)],
        entries: &[Json],
        rid: &str,
        t0: &Instant,
        deadline: Deadline,
    ) -> std::io::Result<ShardOutcome> {
        let tid = 1 + slot as u32;
        let mut outcome = ShardOutcome {
            resolved: Vec::with_capacity(uidxs.len()),
            cache_hits: 0,
            executed: 0,
            coalesced: 0,
            peer_hits: 0,
            spans: Vec::new(),
            stitch: None,
        };
        // Probe the shard's keys concurrently. Serialized probes chained
        // one worker round-trip per key onto the critical path — the
        // dominant coordinator overhead on cache-warm sweeps (see
        // docs/observability.md §7); the pool opens one connection per
        // in-flight probe and keeps them for the next shard.
        type Probed = (usize, f64, f64, std::io::Result<Option<Vec<u8>>>);
        let probes: Vec<Probed> = {
            let cursor = AtomicUsize::new(0);
            let collected: Mutex<Vec<Probed>> = Mutex::new(Vec::with_capacity(uidxs.len()));
            std::thread::scope(|scope| {
                for _ in 0..PROBE_CONCURRENCY.min(uidxs.len()) {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&u) = uidxs.get(i) else { break };
                        let hex = unique[u].0.hex();
                        let probe_ts = t0.elapsed().as_micros() as f64;
                        let probed = match deadline.remaining_ms() {
                            Err(()) => Err(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                "deadline budget exhausted before peer probe",
                            )),
                            Ok(budget) => {
                                let budget = budget.map(|ms| ms.to_string());
                                self.probe_peer(slot, &hex, rid, probe_ts as u64, budget.as_deref())
                            }
                        };
                        let dur = t0.elapsed().as_micros() as f64 - probe_ts;
                        collected.lock().unwrap().push((i, probe_ts, dur, probed));
                    });
                }
            });
            let mut v = collected.into_inner().unwrap();
            v.sort_by_key(|p| p.0);
            v
        };
        let mut misses = Vec::new();
        for (i, probe_ts, dur, probed) in probes {
            let u = uidxs[i];
            let probed = probed?;
            outcome.spans.push(CoordSpan {
                name: "peer_probe".into(),
                tid,
                ts_us: probe_ts,
                dur_us: dur,
                args: vec![
                    ("run_key".into(), unique[u].0.hex()),
                    ("hit".into(), probed.is_some().to_string()),
                ],
            });
            match probed {
                Some(report) => {
                    // Embed the worker's report bytes verbatim; the peer
                    // tier must answer byte-identically to execution.
                    let body = String::from_utf8(report).map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 report")
                    })?;
                    outcome
                        .resolved
                        .push((u, "ok".to_string(), format!("\"report\":{body}}}")));
                    outcome.peer_hits += 1;
                }
                None => misses.push(u),
            }
        }
        if misses.is_empty() {
            // Every key was a peer hit: the lane exists on the stitched
            // timeline but there is no worker-side trace to pull.
            outcome.stitch = Some(StitchShard {
                slot,
                addr: self.workers[slot].addr.clone(),
                worker_sweep_key: None,
                offset_us: 0.0,
            });
            return Ok(outcome);
        }

        let jobs: Vec<String> = misses
            .iter()
            .map(|&u| entries[unique[u].1[0]].dump())
            .collect();
        let body = format!("{{\"jobs\":[{}]}}", jobs.join(","));
        let fwd_ts = t0.elapsed().as_micros() as f64;
        let tc = trace_context(rid, "forward_sweep", fwd_ts as u64);
        let budget = deadline.remaining_ms().map_err(|()| {
            std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "deadline budget exhausted before shard forward",
            )
        })?;
        let budget = budget.map(|ms| ms.to_string());
        let mut headers = vec![("X-Request-Id", rid), ("X-Trace-Context", tc.as_str())];
        if let Some(ms) = budget.as_deref() {
            headers.push(("X-Deadline-Ms", ms));
        }
        let fwd_t0 = Instant::now();
        let resp = self.call_worker(slot, Site::ClusterForward, |c| {
            c.post_raw_with_headers("/v1/sweeps", body.into_bytes(), &headers)
        });
        heteropipe_obs::profile::record(cprof::forward(), fwd_t0.elapsed().as_nanos() as u64);
        let resp = resp?;
        let fwd_dur = t0.elapsed().as_micros() as f64 - fwd_ts;
        let worker_sweep_key = resp.header("x-sweep-key").map(str::to_owned);
        let shard_error =
            |why: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, why.to_string());
        if resp.status != 200 {
            return Err(shard_error(&format!(
                "shard sweep answered {}",
                resp.status
            )));
        }
        let text =
            std::str::from_utf8(&resp.body).map_err(|_| shard_error("non-UTF-8 sweep stream"))?;
        let mut seen = 0usize;
        let mut worker_wall_ms = 0u64;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            if let Some(rest) = line.strip_prefix("{\"sweep\":") {
                // The worker's trailing summary: fold its execution
                // accounting into the coordinator's.
                let summary = Json::parse(&format!("{{\"sweep\":{rest}"))
                    .ok_or_else(|| shard_error("unparseable shard summary"))?;
                let field = |name: &str| {
                    summary
                        .get("sweep")
                        .and_then(|s| s.get(name))
                        .and_then(Json::as_u64)
                        .unwrap_or(0)
                };
                outcome.cache_hits += field("cache_hits");
                outcome.executed += field("executed");
                outcome.coalesced += field("coalesced");
                worker_wall_ms = field("wall_ms");
                continue;
            }
            let (local, status, payload) =
                split_record(line).ok_or_else(|| shard_error("unsplittable shard record"))?;
            let &u = misses
                .get(local)
                .ok_or_else(|| shard_error("shard record index out of range"))?;
            outcome.resolved.push((u, status, payload));
            seen += 1;
        }
        if seen != misses.len() {
            return Err(shard_error("shard stream truncated"));
        }
        outcome.spans.push(CoordSpan {
            name: "forward_sweep".into(),
            tid,
            ts_us: fwd_ts,
            dur_us: fwd_dur,
            args: vec![
                ("jobs".into(), misses.len().to_string()),
                (
                    "worker_sweep_key".into(),
                    worker_sweep_key.clone().unwrap_or_else(|| "-".into()),
                ),
            ],
        });
        // The half-residual-RTT clock sample: the worker's trace clock
        // started roughly when the forward's transport overhead was half
        // spent (see crate::stitch for the full derivation).
        let residual_us = (fwd_dur - worker_wall_ms as f64 * 1000.0).max(0.0);
        outcome.stitch = Some(StitchShard {
            slot,
            addr: self.workers[slot].addr.clone(),
            worker_sweep_key,
            offset_us: fwd_ts + residual_us / 2.0,
        });
        Ok(outcome)
    }

    /// Dispatches `/v1/sweeps/{key}` sub-resources; only `/trace` exists.
    fn sweep_resource(&self, req: &Request, rest: &str) -> Response {
        let (key, sub) = match rest.split_once('/') {
            Some((key, sub)) => (key, Some(sub)),
            None => (rest, None),
        };
        if !valid_key(key) {
            return fail(
                req,
                400,
                "bad_request",
                &format!("sweep key must be 32 hex characters, got {key:?}"),
            );
        }
        match sub {
            Some("trace") => {
                if req.method != "GET" {
                    return method_not_allowed(req, "GET");
                }
                self.sweep_trace(req, key)
            }
            Some("records") => {
                if req.method != "GET" {
                    return method_not_allowed(req, "GET");
                }
                self.sweep_records(req, key)
            }
            None => {
                if req.method != "GET" {
                    return method_not_allowed(req, "GET");
                }
                self.sweep_status(req, key)
            }
            _ => fail(
                req,
                404,
                "not_found",
                "no such sweep sub-resource (try /trace or /records)",
            ),
        }
    }

    /// `GET /v1/sweeps/{key}`: the status of an async cluster sweep —
    /// from the live registry when this coordinator is (or was) driving
    /// it, otherwise reconstructed from the on-disk journal.
    fn sweep_status(&self, req: &Request, key: &str) -> Response {
        let key = key.to_ascii_lowercase();
        if let Some(job) = self.async_jobs.get(&key) {
            return Response::json(200, &jobs::status_json(&key, &job))
                .with_header("X-Sweep-Key", &key);
        }
        if let Some(journal) = self.journal.get() {
            if let Ok(Some(replay)) = journal.replay(&key) {
                if let Some(body) = api::journal_status_json(&key, "sweep", &replay) {
                    return Response::json(200, &body).with_header("X-Sweep-Key", &key);
                }
            }
        }
        fail(
            req,
            404,
            "not_found",
            "no such async sweep (submit one with POST /v1/sweeps?async=1)",
        )
    }

    /// `GET /v1/sweeps/{key}/records?from_index=N`: the journaled NDJSON
    /// records of an async cluster sweep, index-ordered from
    /// `from_index`, with no summary line — the same contract as the
    /// single-node route (see `docs/api.md`).
    fn sweep_records(&self, req: &Request, key: &str) -> Response {
        let key = key.to_ascii_lowercase();
        let from = match api::from_index(req) {
            Ok(from) => from,
            Err(why) => return fail(req, 400, "bad_request", &why),
        };
        let Some(journal) = self.journal.get() else {
            return fail(
                req,
                404,
                "not_found",
                "this coordinator has no journal (async records live on durable coordinators)",
            );
        };
        match journal.replay(&key) {
            Ok(Some(replay)) => {
                let mut records = replay.records;
                records.sort_by_key(|&(i, _)| i);
                let mut body = String::new();
                for (index, line) in &records {
                    if *index >= from {
                        body.push_str(line);
                        body.push('\n');
                    }
                }
                Response {
                    status: 200,
                    headers: vec![("Content-Type".into(), "application/x-ndjson".into())],
                    body: body.into_bytes(),
                    chunked: false,
                    stream: None,
                }
                .with_header("X-Sweep-Key", &key)
                .with_header("X-Job-State", if replay.done { "done" } else { "pending" })
            }
            Ok(None) => fail(req, 404, "not_found", "no journaled records for that key"),
            Err(e) => envelope(
                503,
                "journal_unavailable",
                &format!("journal replay failed: {e}"),
                Some(1),
                &req.request_id,
            ),
        }
    }

    /// `GET /v1/sweeps/{key}/trace`: resolves the retained stitch plan
    /// into one Chrome trace — coordinator spans plus each worker's
    /// journaled sweep phases on its own process lane (see
    /// `crate::stitch`). Worker traces are fetched lazily here, so the
    /// sweep's hot path pays nothing for stitching.
    fn sweep_trace(&self, req: &Request, key: &str) -> Response {
        let rid = &req.request_id;
        let deadline = Deadline::from_request(req);
        let rendered = self.stitch.with(&key.to_ascii_lowercase(), |plan| {
            stitch::render(plan, |shard| {
                let wskey = shard.worker_sweep_key.as_deref()?;
                // A spent budget degrades the stitch to coordinator-only
                // lanes instead of chasing worker traces past it.
                let budget = deadline.remaining_ms().ok()?;
                let budget = budget.map(|ms| ms.to_string());
                let path = format!("/v1/sweeps/{wskey}/trace");
                let tc = trace_context(rid, "stitch_fetch", 0);
                let mut headers = vec![("X-Request-Id", rid.as_str()), ("X-Trace-Context", &tc)];
                if let Some(ms) = budget.as_deref() {
                    headers.push(("X-Deadline-Ms", ms));
                }
                let resp = self
                    .call_worker(shard.slot, Site::ClusterForward, |c| {
                        c.get_with_headers(&path, &headers)
                    })
                    .ok()?;
                if resp.status != 200 {
                    return None;
                }
                String::from_utf8(resp.body).ok()
            })
        });
        match rendered {
            Some(json) => Response {
                status: 200,
                headers: vec![("Content-Type".into(), "application/json".into())],
                body: json.into_bytes(),
                chunked: false,
                stream: None,
            },
            None => fail(
                req,
                404,
                "not_found",
                "no stitched trace retained for that sweep key",
            ),
        }
    }
}

// ---- async jobs -----------------------------------------------------------

impl Coordinator {
    /// `POST /v1/sweeps?async=1`: journals the sweep's intent and answers
    /// `202 Accepted` with the key to poll; a background thread fans the
    /// batch out across the cluster and journals the merged records.
    /// Resubmission while running (or after completion) is idempotent.
    fn sweep_async(&self, req: &Request, entries: &[Json]) -> Response {
        let Some(journal) = self.journal.get() else {
            return envelope(
                503,
                "async_unavailable",
                "async sweeps need a write-ahead journal; start the coordinator with one (coordinator --journal-dir)",
                None,
                &req.request_id,
            );
        };
        let mut keys = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            match parse_job_spec(entry) {
                Ok(job) => keys.push(run_key(&job.spec())),
                Err(e) => return fail(req, e.status, e.code, &format!("jobs[{i}]: {}", e.message)),
            }
        }
        let sweep_hex = sweep_key(&keys).hex();
        let total = entries.len() as u64;
        // A sealed segment from an earlier run means the job is already
        // complete: adopt it instead of re-executing.
        let sealed = matches!(journal.replay(&sweep_hex), Ok(Some(r)) if r.done);
        let state = if sealed {
            JobState::Done
        } else {
            JobState::Running
        };
        let done = if sealed { total } else { 0 };
        let (job, fresh) = self
            .async_jobs
            .register(&sweep_hex, "sweep", total, state, done);
        if !fresh || sealed {
            return Response::json(202, &jobs::status_json(&sweep_hex, &job))
                .with_header("X-Sweep-Key", &sweep_hex);
        }
        // Write-ahead: the full expanded job list hits the journal before
        // any shard is contacted, so a coordinator crash at any later
        // point is resumable.
        if let Err(e) = journal.begin(&sweep_hex, &jobs::sweep_intent(entries)) {
            job.fail(format!("journal intent write failed: {e}"));
            return envelope(
                503,
                "journal_unavailable",
                &format!("could not journal sweep intent: {e}"),
                Some(1),
                &req.request_id,
            );
        }
        self.spawn_sweep_driver(
            job,
            entries.to_vec(),
            sweep_hex.clone(),
            req.request_id.clone(),
            HashSet::new(),
            false,
        );
        Response::json(
            202,
            &jobs::accepted_json(
                &sweep_hex,
                "sweep",
                &format!("/v1/sweeps/{sweep_hex}"),
                total,
            ),
        )
        .with_header("X-Sweep-Key", &sweep_hex)
    }

    /// Spawns the background thread driving an async cluster sweep.
    /// `already` holds record indexes a previous process journaled
    /// (resume skips re-appending them — worker caches make re-resolution
    /// nearly free); `recovered` marks a crash-resume for the
    /// `heteropipe_journal_recovered_total` counter.
    fn spawn_sweep_driver(
        &self,
        job: Arc<AsyncJob>,
        entries: Vec<Json>,
        key_hex: String,
        request_id: String,
        already: HashSet<u64>,
        recovered: bool,
    ) {
        let this = self
            .self_ref
            .get()
            .cloned()
            .expect("self reference set in new()");
        std::thread::spawn(move || {
            if let Some(c) = this.upgrade() {
                c.drive_sweep(&job, &entries, &key_hex, &request_id, &already, recovered);
            }
        });
    }

    /// The background body of an async cluster sweep: resolve the batch
    /// shard-wise, journal each merged record, then seal the segment. A
    /// failed append is retried once after the batch; only records that
    /// still cannot be journaled fail the job.
    fn drive_sweep(
        &self,
        job: &Arc<AsyncJob>,
        entries: &[Json],
        key_hex: &str,
        request_id: &str,
        already: &HashSet<u64>,
        recovered: bool,
    ) {
        let journal = self.journal.get().expect("driver spawned with journal");
        let sweep = match self.cluster_sweep(entries, request_id, Deadline::none()) {
            Ok(sweep) => sweep,
            Err(e) => {
                job.fail(format!("cluster sweep failed: {}", e.message));
                return;
            }
        };
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        self.sweep_jobs
            .fetch_add(sweep.summary.jobs_total, Ordering::Relaxed);
        let mut retry: Vec<(u64, &String, bool)> = Vec::new();
        for (i, line) in sweep.lines.iter().enumerate() {
            let index = i as u64;
            if already.contains(&index) {
                continue;
            }
            let errored = split_record(line).is_some_and(|(_, status, _)| status == "error");
            match journal.append_record(key_hex, index, line) {
                Ok(()) => job.record_done(errored),
                Err(e) => {
                    obs_log::warn(
                        "cluster",
                        "journal append failed; retrying after the batch",
                        &[
                            ("key", key_hex.to_string().into()),
                            ("index", index.into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    retry.push((index, line, errored));
                }
            }
        }
        let mut lost = 0u64;
        for (index, line, errored) in retry {
            match journal.append_record(key_hex, index, line) {
                Ok(()) => job.record_done(errored),
                Err(e) => {
                    lost += 1;
                    obs_log::error(
                        "cluster",
                        "journal append failed permanently",
                        &[
                            ("key", key_hex.to_string().into()),
                            ("index", index.into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                }
            }
        }
        if lost > 0 {
            job.fail(format!("{lost} record(s) could not be journaled"));
            return;
        }
        match journal.finish(key_hex, job.total) {
            Ok(()) => {
                if recovered {
                    journal.mark_recovered();
                }
                job.set_state(JobState::Done);
            }
            Err(e) => job.fail(format!("journal seal failed: {e}")),
        }
    }

    /// `POST /v1/workflows?async=1` (inline graphs): journals the body as
    /// intent, answers 202, and drives the graph on a background thread —
    /// one record per stage event plus a final record with the full
    /// result. Named built-in graphs never reach here: they are proxied
    /// whole (query included) to the owning worker's journal.
    fn workflow_async(
        &self,
        req: &Request,
        body: &Json,
        graph: TaskGraph,
        wkey: String,
    ) -> Response {
        let Some(journal) = self.journal.get() else {
            return envelope(
                503,
                "async_unavailable",
                "async workflows need a write-ahead journal; start the coordinator with one (coordinator --journal-dir)",
                None,
                &req.request_id,
            );
        };
        let total = graph.len() as u64 + 1;
        let sealed = matches!(journal.replay(&wkey), Ok(Some(r)) if r.done);
        let state = if sealed {
            JobState::Done
        } else {
            JobState::Running
        };
        let done = if sealed { total } else { 0 };
        let (job, fresh) = self
            .async_jobs
            .register(&wkey, "workflow", total, state, done);
        if !fresh || sealed {
            return Response::json(202, &jobs::status_json(&wkey, &job))
                .with_header("X-Workflow-Key", &wkey);
        }
        if let Err(e) = journal.begin(&wkey, &jobs::workflow_intent(body)) {
            job.fail(format!("journal intent write failed: {e}"));
            return envelope(
                503,
                "journal_unavailable",
                &format!("could not journal workflow intent: {e}"),
                Some(1),
                &req.request_id,
            );
        }
        self.spawn_workflow_driver(
            job,
            graph,
            wkey.clone(),
            req.request_id.clone(),
            HashSet::new(),
            false,
        );
        Response::json(
            202,
            &jobs::accepted_json(&wkey, "workflow", &format!("/v1/workflows/{wkey}"), total),
        )
        .with_header("X-Workflow-Key", &wkey)
    }

    /// Spawns the background thread driving an async inline workflow (see
    /// [`Coordinator::spawn_sweep_driver`] for the `already`/`recovered`
    /// contract).
    fn spawn_workflow_driver(
        &self,
        job: Arc<AsyncJob>,
        graph: TaskGraph,
        key_hex: String,
        request_id: String,
        already: HashSet<u64>,
        recovered: bool,
    ) {
        let this = self
            .self_ref
            .get()
            .cloned()
            .expect("self reference set in new()");
        std::thread::spawn(move || {
            if let Some(c) = this.upgrade() {
                c.drive_workflow(&job, &graph, &key_hex, &request_id, &already, recovered);
            }
        });
    }

    /// The background body of an async inline workflow: run the graph
    /// (stages fan sweeps out across the cluster), journaling one record
    /// per stage event and a final record holding the full result JSON —
    /// the shape `GET /v1/workflows/{key}` serves.
    fn drive_workflow(
        &self,
        job: &Arc<AsyncJob>,
        graph: &TaskGraph,
        key_hex: &str,
        request_id: &str,
        already: &HashSet<u64>,
        recovered: bool,
    ) {
        let journal = self.journal.get().expect("driver spawned with journal");
        let rid = (!request_id.is_empty()).then_some(request_id);
        let counter = AtomicU64::new(0);
        let result = self.flow.run_observed(graph, rid, &|ev| {
            let index = counter.fetch_add(1, Ordering::Relaxed);
            if already.contains(&index) {
                return;
            }
            let line = stage_event_json(ev).dump();
            let errored = ev.error.is_some();
            match journal.append_record(key_hex, index, &line) {
                Ok(()) => job.record_done(errored),
                Err(e) => obs_log::warn(
                    "cluster",
                    "journal append failed for workflow stage event",
                    &[
                        ("key", key_hex.to_string().into()),
                        ("index", index.into()),
                        ("error", e.to_string().into()),
                    ],
                ),
            }
        });
        match result {
            Ok(result) => {
                let final_index = job.total.saturating_sub(1);
                if !already.contains(&final_index) {
                    let line = workflow_result_json(&result).dump();
                    if let Err(e) = journal.append_record(key_hex, final_index, &line) {
                        job.fail(format!("journal append failed for workflow result: {e}"));
                        return;
                    }
                    job.record_done(false);
                }
                match journal.finish(key_hex, job.total) {
                    Ok(()) => {
                        if recovered {
                            journal.mark_recovered();
                        }
                        job.set_state(JobState::Done);
                    }
                    Err(e) => job.fail(format!("journal seal failed: {e}")),
                }
            }
            Err(e) => job.fail(format!("workflow failed: {e}")),
        }
    }

    /// Replays the journal at startup: every segment with an intent but
    /// no seal is re-registered and driven to completion on background
    /// threads. Worker caches turn already-resolved jobs into peer hits,
    /// so only the missing tail actually re-executes and the journaled
    /// records end up identical to an uninterrupted run's.
    pub fn resume_incomplete(&self) {
        let Some(journal) = self.journal.get() else {
            return;
        };
        for key in journal.incomplete() {
            let Ok(Some(replay)) = journal.replay(&key) else {
                continue;
            };
            let Some((kind, payload)) = jobs::parse_intent(&replay.intent) else {
                obs_log::warn(
                    "cluster",
                    "journaled intent is unreadable; segment left unresumed",
                    &[("key", key.clone().into())],
                );
                continue;
            };
            match kind.as_str() {
                "sweep" => self.resume_sweep(&key, &payload, &replay),
                "workflow" => self.resume_workflow(&key, &payload, &replay),
                _ => {}
            }
        }
    }

    fn resume_sweep(&self, key: &str, payload: &Json, replay: &heteropipe_engine::Replay) {
        let entries = payload.as_array().map(<[Json]>::to_vec).unwrap_or_default();
        for (i, entry) in entries.iter().enumerate() {
            if let Err(e) = parse_job_spec(entry) {
                let (job, _) = self.async_jobs.register(
                    key,
                    "sweep",
                    entries.len() as u64,
                    JobState::Failed,
                    0,
                );
                job.fail(format!(
                    "journaled intent no longer parses: jobs[{i}]: {}",
                    e.message
                ));
                return;
            }
        }
        let already = replay.indexes();
        let (job, fresh) = self.async_jobs.register(
            key,
            "sweep",
            entries.len() as u64,
            JobState::Running,
            already.len() as u64,
        );
        if !fresh {
            return;
        }
        obs_log::info(
            "cluster",
            "resuming interrupted async sweep from journal",
            &[
                ("key", key.to_string().into()),
                ("jobs_total", (entries.len() as u64).into()),
                ("records_journaled", (already.len() as u64).into()),
            ],
        );
        self.spawn_sweep_driver(
            job,
            entries,
            key.to_string(),
            format!("resume-{key}"),
            already,
            true,
        );
    }

    fn resume_workflow(&self, key: &str, payload: &Json, replay: &heteropipe_engine::Replay) {
        let rid = format!("resume-{key}");
        let graph = match self.cluster_graph(payload, &rid, Deadline::none()) {
            Ok(graph) => graph,
            Err(e) => {
                let (job, _) = self
                    .async_jobs
                    .register(key, "workflow", 0, JobState::Failed, 0);
                job.fail(format!("journaled intent no longer parses: {}", e.message));
                return;
            }
        };
        let total = graph.len() as u64 + 1;
        let already = replay.indexes();
        let (job, fresh) = self.async_jobs.register(
            key,
            "workflow",
            total,
            JobState::Running,
            already.len() as u64,
        );
        if !fresh {
            return;
        }
        obs_log::info(
            "cluster",
            "resuming interrupted async workflow from journal",
            &[
                ("key", key.to_string().into()),
                ("records_journaled", (already.len() as u64).into()),
            ],
        );
        self.spawn_workflow_driver(job, graph, key.to_string(), rid, already, true);
    }
}

// ---- workflows ------------------------------------------------------------

impl Coordinator {
    /// `POST /v1/workflows`: built-in named graphs are proxied whole to
    /// the worker owning the workflow key (the figure pipeline runs where
    /// its cache lives); inline stage lists run at the coordinator with
    /// each sweep stage fanned out shard-wise.
    fn workflows(&self, req: &Request) -> Response {
        let Some(body) = parse_body(req) else {
            return fail(req, 400, "bad_request", "body must be a JSON object");
        };
        if body.get("workflow").is_some() {
            // Validate locally first so a bad name is a clean envelope
            // from the coordinator, not a proxied error.
            let graph = match workflow_graph(&body) {
                Ok(graph) => graph,
                Err(e) => return spec_fail(req, &e),
            };
            let wkey = match graph.workflow_key() {
                Ok(key) => key,
                Err(e) => return fail(req, 400, "bad_request", &format!("invalid workflow: {e}")),
            };
            // Proxied verbatim, query included: `?async=1` journals on
            // the owning worker, whose journal is where lookups for this
            // key land anyway.
            return self.proxy_workflow(req, wkey);
        }
        // An async graph runs in the background with no deadline (the 202
        // returns immediately); a sync graph inherits the request budget,
        // checked between DAG levels and forwarded with each stage sweep.
        let deadline = if wants_async(req) {
            Deadline::none()
        } else {
            Deadline::from_request(req)
        };
        let graph = match self.cluster_graph(&body, &req.request_id, deadline) {
            Ok(graph) => graph,
            Err(e) => return spec_fail(req, &e),
        };
        let wkey = match graph.workflow_key() {
            Ok(key) => key.hex(),
            Err(e) => return fail(req, 400, "bad_request", &format!("invalid workflow: {e}")),
        };
        if wants_async(req) {
            return self.workflow_async(req, &body, graph, wkey);
        }
        let flow = Arc::clone(&self.flow);
        let request_id = req.request_id.clone();
        let stream = BodyStream::new(move |sink| {
            let out = Mutex::new(sink);
            let rid = (!request_id.is_empty()).then_some(request_id.as_str());
            let result = flow.run_observed_deadline(
                &graph,
                rid,
                &|ev| {
                    let line = format!("{}\n", stage_event_json(ev).dump());
                    let _ = out.lock().unwrap().send(line.as_bytes());
                },
                deadline.0,
            );
            let result = result.expect("graph validated before streaming");
            let line = format!("{}\n", workflow_summary_json(&result).dump());
            let sent = out.lock().unwrap().send(line.as_bytes());
            sent
        });
        Response::streaming(200, "application/x-ndjson", stream)
            .with_header("X-Workflow-Key", &wkey)
    }

    /// Proxies a whole built-in workflow request to the owner of its
    /// workflow key, rehashing on failure.
    fn proxy_workflow(&self, req: &Request, wkey: RunKey) -> Response {
        let deadline = Deadline::from_request(req);
        // Forward the query string too, so `?async=1` survives the hop.
        let path = if req.query.is_empty() {
            "/v1/workflows".to_string()
        } else {
            format!("/v1/workflows?{}", req.query)
        };
        let mut down = self.down_mask();
        loop {
            let Ok(budget) = deadline.remaining_ms() else {
                return self.deadline_refusal(req);
            };
            let budget = budget.map(|ms| ms.to_string());
            let Some(slot) = self.ring.owner(wkey, &down) else {
                return no_workers(&req.request_id);
            };
            let tc = trace_context(&req.request_id, "workflow_forward", 0);
            let mut headers = vec![
                ("X-Request-Id", req.request_id.as_str()),
                ("X-Trace-Context", tc.as_str()),
            ];
            if let Some(ms) = budget.as_deref() {
                headers.push(("X-Deadline-Ms", ms));
            }
            let result = self.call_worker(slot, Site::ClusterForward, |c| {
                c.post_raw_with_headers(&path, req.body.clone(), &headers)
            });
            match result {
                Ok(resp) => {
                    let mut out = Response {
                        status: resp.status,
                        headers: vec![("Content-Type".into(), "application/x-ndjson".into())],
                        body: resp.body.clone(),
                        chunked: true,
                        stream: None,
                    };
                    if resp.status != 200 {
                        return passthrough(&resp);
                    }
                    if let Some(v) = resp.header("x-workflow-key") {
                        out = out.with_header("X-Workflow-Key", v);
                    }
                    return out;
                }
                Err(_) => {
                    down[slot] = true;
                    self.rehashes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Builds the inline-workflow graph with cluster-sweep stage bodies.
    /// Stage keys derive from the same `jobs=<sweep key>` input string as
    /// the single-node inline graph, so workflow keys (and journal
    /// lookups) agree across deployment shapes.
    fn cluster_graph(
        &self,
        body: &Json,
        rid: &str,
        deadline: Deadline,
    ) -> Result<TaskGraph, SpecError> {
        let Some(stages) = body.get("stages") else {
            return Err(SpecError {
                status: 400,
                code: "bad_request",
                message:
                    "body needs \"workflow\" (built-in name) or \"stages\" (array of stage objects)"
                        .to_string(),
            });
        };
        let Some(stages) = stages.as_array() else {
            return Err(bad_spec("\"stages\" must be an array"));
        };
        if stages.is_empty() {
            return Err(bad_spec("workflow has no stages"));
        }
        if stages.len() > MAX_WORKFLOW_STAGES {
            return Err(SpecError {
                status: 413,
                code: "payload_too_large",
                message: format!(
                    "workflow of {} stages exceeds the {MAX_WORKFLOW_STAGES}-stage cap",
                    stages.len()
                ),
            });
        }
        let mut graph = TaskGraph::new("inline");
        let mut total_jobs = 0usize;
        for (i, stage) in stages.iter().enumerate() {
            let Json::Obj(_) = stage else {
                return Err(bad_spec(format!("stages[{i}] must be an object")));
            };
            let built = self
                .cluster_stage(stage, &mut total_jobs, rid, deadline)
                .map_err(|e| SpecError {
                    status: e.status,
                    code: e.code,
                    message: format!("stages[{i}]: {}", e.message),
                })?;
            let name = built.name().to_owned();
            graph.add(built);
            graph.output(name);
        }
        Ok(graph)
    }

    /// One inline stage whose body runs a cluster sweep instead of a
    /// local engine sweep. The stage value is the merged records, one
    /// line per job in submission order — the same text a single-node
    /// inline stage produces.
    fn cluster_stage(
        &self,
        stage: &Json,
        total_jobs: &mut usize,
        rid: &str,
        deadline: Deadline,
    ) -> Result<Stage, SpecError> {
        let Some(name) = stage.get("name").and_then(Json::as_str) else {
            return Err(bad_spec("missing field: name"));
        };
        let deps: Vec<String> = match stage.get("deps") {
            None | Some(Json::Null) => Vec::new(),
            Some(Json::Arr(items)) => {
                let mut deps = Vec::with_capacity(items.len());
                for d in items {
                    match d.as_str() {
                        Some(s) => deps.push(s.to_owned()),
                        None => return Err(bad_spec("\"deps\" entries must be stage names")),
                    }
                }
                deps
            }
            Some(_) => return Err(bad_spec("\"deps\" must be an array of stage names")),
        };
        let entries = sweep_entries(stage)?;
        if entries.is_empty() {
            return Err(bad_spec("stage sweep has no jobs"));
        }
        *total_jobs += entries.len();
        if *total_jobs > MAX_SWEEP_JOBS {
            return Err(SpecError {
                status: 413,
                code: "payload_too_large",
                message: format!("workflow exceeds the {MAX_SWEEP_JOBS}-job cap across its stages"),
            });
        }
        let mut keys = Vec::with_capacity(entries.len());
        for (j, entry) in entries.iter().enumerate() {
            match parse_job_spec(entry) {
                Ok(job) => keys.push(run_key(&job.spec())),
                Err(e) => {
                    return Err(SpecError {
                        status: e.status,
                        code: e.code,
                        message: format!("jobs[{j}]: {}", e.message),
                    })
                }
            }
        }
        let sweep_hex = sweep_key(&keys).hex();
        let coordinator = self
            .self_ref
            .get()
            .cloned()
            .expect("self reference set in new()");
        let rid = rid.to_owned();
        let mut built = Stage::new(name, StageKind::Sweep, move |_ctx| {
            let Some(coordinator) = coordinator.upgrade() else {
                return Err("coordinator shut down".to_string());
            };
            let sweep = coordinator
                .cluster_sweep(&entries, &rid, deadline)
                .map_err(|e| e.message)?;
            if sweep.summary.failed > 0 {
                return Err(format!(
                    "{} of {} sweep jobs failed",
                    sweep.summary.failed, sweep.summary.jobs_total
                ));
            }
            let mut text = String::new();
            for line in &sweep.lines {
                text.push_str(line);
                text.push('\n');
            }
            Ok(StageValue::from_text(text))
        })
        .input(format!("jobs={sweep_hex}"));
        for d in deps {
            built = built.dep(d);
        }
        Ok(built)
    }

    /// `GET /v1/workflows/{key}`: inline graphs journal at the
    /// coordinator; built-in graphs journal on the worker that ran them —
    /// check locally first, then ask the key's owner.
    fn workflow_lookup(&self, req: &Request, key: &str) -> Response {
        if !valid_key(key) {
            return fail(
                req,
                400,
                "bad_request",
                &format!("workflow key must be 32 hex characters, got {key:?}"),
            );
        }
        let lower = key.to_ascii_lowercase();
        if let Some(result) = self.flow.journaled(&lower) {
            return Response::json(200, &workflow_result_json(&result))
                .with_header("X-Workflow-Key", &result.key_hex)
                .into_chunked();
        }
        // An async inline workflow this coordinator is (or was) driving
        // answers its live status...
        if let Some(job) = self.async_jobs.get(&lower) {
            if job.state() != JobState::Done {
                return Response::json(200, &jobs::status_json(&lower, &job))
                    .with_header("X-Workflow-Key", &lower);
            }
        }
        // ...and a sealed segment from a previous coordinator process
        // answers from disk: its final record is the full result JSON.
        if let Some(journal) = self.journal.get() {
            if let Ok(Some(replay)) = journal.replay(&lower) {
                if replay.done {
                    if let Some(result) = replay
                        .records
                        .iter()
                        .max_by_key(|&&(i, _)| i)
                        .and_then(|(_, line)| Json::parse(line))
                        .filter(|v| v.get("workflow").is_some())
                    {
                        return Response::json(200, &result)
                            .with_header("X-Workflow-Key", &lower)
                            .into_chunked();
                    }
                }
                if let Some(body) = api::journal_status_json(&lower, "workflow", &replay) {
                    return Response::json(200, &body).with_header("X-Workflow-Key", &lower);
                }
            }
        }
        let parsed = RunKey::from_hex(&lower).expect("validated above");
        self.proxy_to_owner(req, parsed, &format!("/v1/workflows/{lower}"))
    }
}

fn bad_spec(message: impl Into<String>) -> SpecError {
    SpecError {
        status: 400,
        code: "bad_request",
        message: message.into(),
    }
}

// ---- metrics --------------------------------------------------------------

impl Coordinator {
    fn metrics(&self, req: &Request) -> Response {
        if wants_prometheus(req) {
            return self.metrics_prometheus();
        }
        self.metrics_json()
    }

    /// Metrics federation: scrapes every worker's Prometheus exposition
    /// over the client pool and merges each into `r` under a `worker`
    /// label, so one coordinator scrape sees the whole cluster. Scrapes
    /// bypass [`Coordinator::call_worker`] on purpose — a metrics pull
    /// must never perturb the breakers or the forwarding counters the
    /// metrics themselves report. Unreachable workers count against
    /// `heteropipe_cluster_scrape_errors_total` and degrade to their
    /// coordinator-side view only. Returns one status object per worker
    /// for the JSON rendering.
    fn federate(&self, r: &MetricRegistry) -> Vec<Json> {
        self.workers
            .iter()
            .map(|w| {
                let result = (|| -> Result<usize, String> {
                    let mut client = self.pool.checkout(&w.addr);
                    let resp = client
                        .get_with_headers("/metrics?format=prometheus", &[])
                        .map_err(|e| e.to_string())?;
                    if resp.status != 200 {
                        return Err(format!("scrape answered {}", resp.status));
                    }
                    let text = std::str::from_utf8(&resp.body)
                        .map_err(|_| "non-UTF-8 exposition".to_string())?;
                    let scraped = MetricRegistry::from_exposition(text)?;
                    Ok(r.merge(&scraped, &[("worker", &w.addr)]))
                })();
                let mut fields = vec![("addr".to_string(), Json::str(w.addr.clone()))];
                match result {
                    Ok(skipped) => {
                        fields.push(("ok".into(), Json::Bool(true)));
                        if skipped > 0 {
                            fields.push(("skipped_families".into(), Json::U64(skipped as u64)));
                        }
                    }
                    Err(why) => {
                        w.scrape_errors.fetch_add(1, Ordering::Relaxed);
                        obs_log::warn(
                            "cluster",
                            "metrics scrape failed",
                            &[
                                ("worker", w.addr.clone().into()),
                                ("error", why.clone().into()),
                            ],
                        );
                        fields.push(("ok".into(), Json::Bool(false)));
                        fields.push(("error".into(), Json::str(why)));
                    }
                }
                fields.push((
                    "scrape_errors".into(),
                    Json::U64(w.scrape_errors.load(Ordering::Relaxed)),
                ));
                Json::Obj(fields)
            })
            .collect()
    }

    fn metrics_json(&self) -> Response {
        use std::sync::atomic::Ordering::Relaxed;
        let workers: Vec<Json> = self
            .workers
            .iter()
            .enumerate()
            .map(|(slot, w)| {
                Json::Obj(vec![
                    ("slot".into(), Json::U64(slot as u64)),
                    ("addr".into(), Json::str(w.addr.clone())),
                    ("breaker".into(), Json::str(w.breaker.state_name())),
                    ("forwarded".into(), Json::U64(w.forwarded.load(Relaxed))),
                    ("peer_hits".into(), Json::U64(w.peer_hits.load(Relaxed))),
                    ("peer_misses".into(), Json::U64(w.peer_misses.load(Relaxed))),
                    ("failures".into(), Json::U64(w.failures.load(Relaxed))),
                ])
            })
            .collect();
        let cluster = Json::Obj(vec![
            ("workers".into(), Json::Arr(workers)),
            ("rehashes".into(), Json::U64(self.rehashes.load(Relaxed))),
            (
                "flights_coalesced".into(),
                Json::U64(self.flights_coalesced.load(Relaxed)),
            ),
            (
                "sweeps".into(),
                Json::Obj(vec![
                    ("count".into(), Json::U64(self.sweeps.load(Relaxed))),
                    ("jobs".into(), Json::U64(self.sweep_jobs.load(Relaxed))),
                ]),
            ),
            ("faults_fired".into(), Json::U64(self.faults.total_fired())),
        ]);
        let journal = match self.journal.get() {
            Some(j) => {
                let s = j.stats();
                Json::Obj(vec![
                    ("appended".into(), Json::U64(s.appended)),
                    ("replayed".into(), Json::U64(s.replayed)),
                    ("recovered".into(), Json::U64(s.recovered)),
                    ("tmp_swept".into(), Json::U64(s.tmp_swept)),
                    (
                        "segments_quarantined".into(),
                        Json::U64(s.segments_quarantined),
                    ),
                    ("torn_truncated".into(), Json::U64(s.torn_truncated)),
                    ("gc_swept".into(), Json::U64(s.gc_swept)),
                    ("async_jobs".into(), Json::U64(self.async_jobs.len() as u64)),
                ])
            }
            None => Json::Null,
        };
        let tenants = match self.tenants.get() {
            Some(gate) => Json::Arr(
                gate.counts()
                    .into_iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("tenant".into(), Json::str(c.tenant)),
                            ("requests".into(), Json::U64(c.requests)),
                            ("throttled".into(), Json::U64(c.throttled)),
                        ])
                    })
                    .collect(),
            ),
            None => Json::Arr(Vec::new()),
        };
        let server = match self.stats.get() {
            Some(s) => {
                let lat = s.latency_us.lock().unwrap();
                Json::Obj(vec![
                    ("requests".into(), Json::U64(s.requests.load(Relaxed))),
                    ("in_flight".into(), Json::U64(s.in_flight.load(Relaxed))),
                    ("rejected_503".into(), Json::U64(s.rejected.load(Relaxed))),
                    ("shed_503".into(), Json::U64(s.shed.load(Relaxed))),
                    (
                        "responses".into(),
                        Json::Obj(vec![
                            ("2xx".into(), Json::U64(s.status_2xx.load(Relaxed))),
                            ("4xx".into(), Json::U64(s.status_4xx.load(Relaxed))),
                            ("5xx".into(), Json::U64(s.status_5xx.load(Relaxed))),
                        ]),
                    ),
                    (
                        "latency_us".into(),
                        Json::Obj(vec![
                            ("count".into(), Json::U64(lat.count())),
                            ("p50".into(), Json::U64(lat.percentile(0.50))),
                            ("p99".into(), Json::U64(lat.percentile(0.99))),
                        ]),
                    ),
                ])
            }
            None => Json::Null,
        };
        // The federated view: every worker's registry scraped and merged
        // under `worker` labels, rendered through the registry's own JSON
        // exposition so the JSON and Prometheus formats stay in parity.
        let fed = MetricRegistry::new();
        let scrapes = self.federate(&fed);
        let scrape_errors: u64 = self
            .workers
            .iter()
            .map(|w| w.scrape_errors.load(Relaxed))
            .sum();
        let families = Json::parse(&fed.render_json())
            .and_then(|v| v.get("families").cloned())
            .unwrap_or(Json::Null);
        let federation = Json::Obj(vec![
            ("scrape_errors".into(), Json::U64(scrape_errors)),
            ("workers".into(), Json::Arr(scrapes)),
            ("families".into(), families),
        ]);
        Response::json(
            200,
            &Json::Obj(vec![
                ("cluster".into(), cluster),
                ("journal".into(), journal),
                ("tenants".into(), tenants),
                (
                    "deadline_exceeded".into(),
                    Json::U64(self.deadline_exceeded.load(Relaxed)),
                ),
                ("server".into(), server),
                ("federation".into(), federation),
            ]),
        )
        .into_chunked()
    }

    fn metrics_prometheus(&self) -> Response {
        use std::sync::atomic::Ordering::Relaxed;
        let r = MetricRegistry::new();
        // Federate first so this scrape's failures are visible in the
        // scrape-error counters emitted below.
        self.federate(&r);
        for w in &self.workers {
            let labels: &[(&str, &str)] = &[("worker", w.addr.as_str())];
            r.counter_with(
                "heteropipe_cluster_forwarded_total",
                "Coordinator calls answered by this worker (probes and forwards).",
                labels,
            )
            .set(w.forwarded.load(Relaxed));
            r.counter_with(
                "heteropipe_cluster_peer_cache_hits_total",
                "Peer-cache probes answered from this worker's disk cache.",
                labels,
            )
            .set(w.peer_hits.load(Relaxed));
            r.counter_with(
                "heteropipe_cluster_peer_cache_misses_total",
                "Peer-cache probes this worker answered with a miss.",
                labels,
            )
            .set(w.peer_misses.load(Relaxed));
            r.counter_with(
                "heteropipe_cluster_worker_failures_total",
                "Coordinator calls to this worker that failed in transport.",
                labels,
            )
            .set(w.failures.load(Relaxed));
            r.counter_with(
                "heteropipe_cluster_scrape_errors_total",
                "Federated metrics scrapes of this worker that failed.",
                labels,
            )
            .set(w.scrape_errors.load(Relaxed));
            r.gauge_with(
                "heteropipe_cluster_worker_healthy",
                "Whether this worker's breaker admits traffic (1 = healthy).",
                labels,
            )
            .set(f64::from(u8::from(!w.breaker.currently_open())));
            r.histogram_with(
                "heteropipe_cluster_forward_latency_microseconds",
                "Coordinator-observed latency of calls to this worker.",
                labels,
            )
            .merge(&w.fwd_us.snapshot());
        }
        let set = |name: &str, help: &str, v: u64| r.counter(name, help).set(v);
        set(
            "heteropipe_cluster_rehashes_total",
            "Key placements moved off an unreachable worker.",
            self.rehashes.load(Relaxed),
        );
        set(
            "heteropipe_cluster_flights_coalesced_total",
            "Requests coalesced onto a concurrent identical run flight.",
            self.flights_coalesced.load(Relaxed),
        );
        set(
            "heteropipe_cluster_sweeps_total",
            "Sweeps merged through the coordinator.",
            self.sweeps.load(Relaxed),
        );
        set(
            "heteropipe_cluster_sweep_jobs_total",
            "Entries submitted across all coordinator sweeps.",
            self.sweep_jobs.load(Relaxed),
        );
        // Same names and help text as the single-node server's families,
        // so worker-side counters arriving via federation merge into the
        // identical family instead of being skipped.
        if let Some(j) = self.journal.get() {
            let s = j.stats();
            set(
                "heteropipe_journal_appended_total",
                "Lines appended to the write-ahead journal (intent, record, and seal lines).",
                s.appended,
            );
            set(
                "heteropipe_journal_replayed_total",
                "Record lines read back by journal replay.",
                s.replayed,
            );
            set(
                "heteropipe_journal_recovered_total",
                "Interrupted async jobs resumed to completion after a restart.",
                s.recovered,
            );
            set(
                "heteropipe_journal_segments_quarantined_total",
                "Corrupt journal segments moved to quarantine.",
                s.segments_quarantined,
            );
            set(
                "heteropipe_journal_gc_total",
                "Expired sealed journal segments deleted by startup GC.",
                s.gc_swept,
            );
        }
        set(
            "heteropipe_deadline_exceeded_total",
            "Requests refused because their X-Deadline-Ms budget was exhausted.",
            self.deadline_exceeded.load(Relaxed),
        );
        if let Some(gate) = self.tenants.get() {
            for c in gate.counts() {
                let labels: &[(&str, &str)] = &[("tenant", c.tenant.as_str())];
                r.counter_with(
                    "heteropipe_tenant_requests_total",
                    "Requests admitted per tenant bucket.",
                    labels,
                )
                .set(c.requests);
                r.counter_with(
                    "heteropipe_tenant_throttled_total",
                    "Requests refused with a 429 per tenant bucket.",
                    labels,
                )
                .set(c.throttled);
            }
        }
        for c in self.faults.counts() {
            r.counter_with(
                "heteropipe_faults_injected_total",
                "Faults fired by the deterministic injector.",
                &[("site", c.site), ("kind", c.kind)],
            )
            .set(c.fired);
        }
        if let Some(s) = self.stats.get() {
            set(
                "heteropipe_server_requests_total",
                "Requests fully parsed and dispatched to the handler.",
                s.requests.load(Relaxed),
            );
            for (class, v) in [
                ("2xx", s.status_2xx.load(Relaxed)),
                ("4xx", s.status_4xx.load(Relaxed)),
                ("5xx", s.status_5xx.load(Relaxed)),
            ] {
                r.counter_with(
                    "heteropipe_server_responses_total",
                    "Responses sent, by status class.",
                    &[("class", class)],
                )
                .set(v);
            }
        }
        // The coordinator's own profiled phases (cluster.peer_probe /
        // cluster.forward / cluster.merge); worker phases arrive via
        // federation under their `worker` labels.
        for p in heteropipe_obs::profile::snapshot() {
            r.counter_with(
                "heteropipe_profile_phase_total_nanoseconds",
                "Wall nanoseconds attributed to a profiled phase.",
                &[("phase", p.name)],
            )
            .set(p.total_ns);
            r.histogram_with(
                "heteropipe_profile_phase_duration_nanoseconds",
                "Per-call wall-time distribution of a profiled phase.",
                &[("phase", p.name)],
            )
            .merge(&p.histogram);
        }
        Response {
            status: 200,
            headers: vec![(
                "Content-Type".into(),
                "text/plain; version=0.0.4; charset=utf-8".into(),
            )],
            body: r.render_prometheus().into_bytes(),
            chunked: false,
            stream: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_splitting_round_trips() {
        let ok = r#"{"index":3,"key":"00ff","status":"ok","deduped":false,"report":{"benchmark":"x","roi_ps":12}}"#;
        let (idx, status, payload) = split_record(ok).unwrap();
        assert_eq!(idx, 3);
        assert_eq!(status, "ok");
        assert_eq!(payload, r#""report":{"benchmark":"x","roi_ps":12}}"#);
        assert_eq!(render_record(3, "00ff", &status, false, &payload), ok);
        // A follower occurrence flips only the dedup flag.
        assert_eq!(
            render_record(7, "00ff", &status, true, &payload),
            r#"{"index":7,"key":"00ff","status":"ok","deduped":true,"report":{"benchmark":"x","roi_ps":12}}"#
        );
    }

    #[test]
    fn record_splitting_handles_errors_and_rejects_garbage() {
        let err = r#"{"index":0,"key":"aa","status":"error","deduped":false,"error":{"code":"quarantined","message":"job aa is quarantined"}}"#;
        let (idx, status, payload) = split_record(err).unwrap();
        assert_eq!((idx, status.as_str()), (0, "error"));
        assert!(payload.starts_with("\"error\":"));
        assert!(split_record("not json").is_none());
        assert!(split_record("{\"sweep\":{}}").is_none());
    }

    #[test]
    fn no_workers_coordinator_answers_503_envelopes() {
        let coordinator = Coordinator::new(ClusterConfig::default());
        let req = Request {
            method: "POST".into(),
            path: "/v1/runs".into(),
            query: String::new(),
            headers: Vec::new(),
            body: br#"{"benchmark":"rodinia/hotspot","scale":0.02}"#.to_vec(),
            http10: false,
            request_id: "req-test".into(),
        };
        let resp = coordinator.handle(&req);
        assert_eq!(resp.status, 503);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("no_workers"), "{body}");
    }

    #[test]
    fn routing_rejects_unknown_and_misused_routes() {
        let coordinator = Coordinator::new(ClusterConfig::default());
        let req = |method: &str, path: &str| Request {
            method: method.into(),
            path: path.into(),
            query: String::new(),
            headers: Vec::new(),
            body: Vec::new(),
            http10: false,
            request_id: "req-test".into(),
        };
        assert_eq!(coordinator.handle(&req("GET", "/healthz")).status, 200);
        assert_eq!(coordinator.handle(&req("DELETE", "/v1/runs")).status, 405);
        assert_eq!(coordinator.handle(&req("GET", "/nope")).status, 404);
        assert_eq!(
            coordinator.handle(&req("GET", "/v1/runs/zz")).status,
            400,
            "malformed run key"
        );
        // All breakers vacuously open (no workers): unready.
        assert_eq!(
            coordinator.handle(&req("GET", "/healthz/ready")).status,
            503
        );
    }

    #[test]
    fn metrics_render_without_workers() {
        let coordinator = Coordinator::new(ClusterConfig {
            workers: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            ..ClusterConfig::default()
        });
        let req = Request {
            method: "GET".into(),
            path: "/metrics".into(),
            query: "format=prometheus".into(),
            headers: Vec::new(),
            body: Vec::new(),
            http10: false,
            request_id: "req-test".into(),
        };
        let resp = coordinator.handle(&req);
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        heteropipe_obs::expfmt::parse(&text).expect("valid exposition format");
        assert!(text.contains("heteropipe_cluster_worker_healthy{worker=\"127.0.0.1:1\"}"));
    }
}
