//! # heteropipe-gpu
//!
//! Timing model of the study's GPU (Table I: 16 NVIDIA Fermi-like SMs at
//! 700 MHz, each managing up to 8 CTAs / 48 warps of 32 threads, issuing up
//! to 32 SIMT instructions per cycle for 22.4 GFLOP/s peak per SM, with
//! 48 KiB scratch memory and 32 k registers per SM, greedy-then-oldest warp
//! scheduling).
//!
//! Like the CPU model, kernel timing is bounds-based at stage granularity:
//!
//! 1. an **issue/compute bound** — SIMT instructions (or FLOPs) over the
//!    aggregate issue rate, derated by achieved occupancy,
//! 2. a **latency bound** — off-chip misses over the latency-hiding
//!    capacity of the resident warps (GPUs tolerate latency with massive
//!    MLP, so this binds only at low occupancy),
//!
//! with the off-chip bandwidth bound applied by the system runner's fluid
//! network. [`Occupancy`] models the CTA/warp/scratch limits and
//! [`coalesce`] models the per-warp access coalescer that turns 32 thread
//! addresses into 128-byte line transactions.

#![warn(missing_docs)]

pub mod coalesce;

use heteropipe_cpu::StageWork;
use heteropipe_sim::{ClockDomain, Ps};

pub use coalesce::{coalesce_warp, WARP_SIZE};

/// Configuration of the GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Number of SMs (Table I: 16).
    pub sms: u8,
    /// SM clock (Table I: 700 MHz).
    pub clock: ClockDomain,
    /// Max CTAs resident per SM (Table I: 8).
    pub max_ctas_per_sm: u32,
    /// Max warps resident per SM (Table I: 48).
    pub max_warps_per_sm: u32,
    /// SIMT lanes issued per cycle per SM (Table I: 32).
    pub issue_lanes: u32,
    /// Scratch (shared) memory per SM in bytes (Table I: 48 KiB).
    pub scratch_bytes_per_sm: u64,
    /// Registers per SM (Table I: 32 k).
    pub registers_per_sm: u32,
    /// Peak FLOPs per SM per second (Table I: 22.4 GFLOP/s).
    pub peak_flops_per_sm: f64,
    /// Loaded off-chip latency as seen by a warp, in seconds.
    pub offchip_latency_secs: f64,
    /// Overlapped outstanding misses per resident warp (GTO scheduling
    /// keeps roughly one long-latency miss in flight per warp plus spatial
    /// overlap within a warp).
    pub misses_in_flight_per_warp: f64,
    /// Warps per SM needed to saturate the issue stage.
    pub warps_to_saturate_issue: u32,
    /// Serialized cost of one CPU-handled GPU page fault (heterogeneous
    /// processor only; §III-D's IOMMU-style fault round trip).
    pub page_fault_latency: Ps,
}

impl GpuConfig {
    /// Table I GPU parameters.
    pub fn paper() -> Self {
        GpuConfig {
            sms: 16,
            clock: ClockDomain::from_mhz(700.0),
            max_ctas_per_sm: 8,
            max_warps_per_sm: 48,
            issue_lanes: 32,
            scratch_bytes_per_sm: 48 * 1024,
            registers_per_sm: 32 * 1024,
            peak_flops_per_sm: 22.4e9,
            offchip_latency_secs: 400.0e-9,
            misses_in_flight_per_warp: 1.5,
            warps_to_saturate_issue: 8,
            page_fault_latency: Ps::from_micros(2) + Ps::from_nanos(500),
        }
    }

    /// Aggregate peak FLOP rate (the `F_gpu` of the paper's Eq. 2):
    /// 16 × 22.4 = 358.4 GFLOP/s.
    pub fn peak_flops_total(&self) -> f64 {
        self.sms as f64 * self.peak_flops_per_sm
    }

    /// Aggregate SIMT instruction issue rate, lanes × SMs × clock.
    pub fn peak_issue_rate(&self) -> f64 {
        self.sms as f64 * self.issue_lanes as f64 * self.clock.freq_hz()
    }

    /// Max resident threads per SM (warps × 32 = 1536).
    pub fn max_threads_per_sm(&self) -> u64 {
        self.max_warps_per_sm as u64 * WARP_SIZE as u64
    }
}

/// Resident-thread occupancy of a kernel on one SM, given its per-CTA
/// resource demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// CTAs resident per SM.
    pub ctas_per_sm: u32,
    /// Warps resident per SM.
    pub warps_per_sm: u32,
}

impl Occupancy {
    /// Computes occupancy from a kernel's CTA shape.
    ///
    /// # Panics
    ///
    /// Panics if `threads_per_cta` is zero or the CTA cannot fit on an SM
    /// at all (more scratch than the SM has, or more threads than resident
    /// capacity).
    pub fn of(config: &GpuConfig, threads_per_cta: u32, scratch_per_cta: u64) -> Self {
        assert!(threads_per_cta > 0, "CTA must have threads");
        let warps_per_cta = threads_per_cta.div_ceil(WARP_SIZE as u32);
        assert!(
            warps_per_cta <= config.max_warps_per_sm,
            "CTA of {threads_per_cta} threads exceeds SM residency"
        );
        assert!(
            scratch_per_cta <= config.scratch_bytes_per_sm,
            "CTA scratch {scratch_per_cta} exceeds SM scratch"
        );
        let by_cta_slots = config.max_ctas_per_sm;
        let by_warps = config.max_warps_per_sm / warps_per_cta;
        let by_scratch = config
            .scratch_bytes_per_sm
            .checked_div(scratch_per_cta)
            .map_or(u32::MAX, |v| v as u32);
        let ctas = by_cta_slots.min(by_warps).min(by_scratch).max(1);
        Occupancy {
            ctas_per_sm: ctas,
            warps_per_sm: ctas * warps_per_cta,
        }
    }

    /// Resident threads per SM.
    pub fn threads_per_sm(&self) -> u64 {
        self.warps_per_sm as u64 * WARP_SIZE as u64
    }

    /// Fraction of the SM's warp slots occupied.
    pub fn fraction(&self, config: &GpuConfig) -> f64 {
        self.warps_per_sm as f64 / config.max_warps_per_sm as f64
    }
}

/// The GPU timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    config: GpuConfig,
}

impl GpuModel {
    /// Creates a model over `config`.
    pub fn new(config: GpuConfig) -> Self {
        GpuModel { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Intrinsic (contention-free) execution time of a kernel.
    ///
    /// `work.threads` is the kernel's total thread count; `occupancy` is the
    /// per-SM residency from [`Occupancy::of`].
    pub fn kernel_time(&self, work: &StageWork, occupancy: Occupancy) -> Ps {
        let c = &self.config;
        // Resident parallelism: how many threads are actually in flight.
        let resident = (c.sms as u64 * occupancy.threads_per_sm()).min(work.threads.max(1));
        let resident_warps = (resident as f64 / WARP_SIZE as f64).max(1.0);

        // Issue utilization ramps with warps per SM up to saturation, and
        // divergent warps waste lanes.
        let warps_per_sm = resident_warps / c.sms as f64;
        let simd = if work.simd_efficiency > 0.0 {
            work.simd_efficiency.min(1.0)
        } else {
            1.0
        };
        let issue_util = (warps_per_sm / c.warps_to_saturate_issue as f64).min(1.0) * simd;
        let issue_secs = work.instructions as f64 / (c.peak_issue_rate() * issue_util.max(1e-3));
        let flop_secs = work.flops as f64 / (c.peak_flops_total() * issue_util.max(1e-3));

        // Latency bound: misses stream through `resident_warps × in-flight`
        // parallel slots. Greedy-then-oldest scheduling hides memory
        // latency behind issue (and vice versa), so the kernel runs at the
        // slowest of the three bounds rather than their sum.
        let outstanding = resident_warps * c.misses_in_flight_per_warp;
        let slow_accesses = (work.mem.offchip + work.mem.remote_hits) as f64;
        let latency_secs = slow_accesses * c.offchip_latency_secs / outstanding;

        Ps::from_secs_f64(issue_secs.max(flop_secs).max(latency_secs))
    }

    /// Extra GPU time due to CPU-handled page faults: faults are serviced by
    /// a single serialized handler thread on the CPU (§III-D). Faults on
    /// consecutive pages (`batched`) benefit from fault-around batching in
    /// the handler and cost an eighth of a full round trip; scattered
    /// first-touch faults (`full`) pay the whole serialized latency — this
    /// split is what concentrates the paper's fault slowdown in the
    /// scatter-writing benchmarks (srad, heartwall, pr_spmv).
    pub fn fault_stall_split(&self, full: u64, batched: u64) -> Ps {
        self.config.page_fault_latency * full + (self.config.page_fault_latency * batched) / 8
    }

    /// Fault stall assuming every fault is a full (unbatched) round trip.
    pub fn fault_stall(&self, faults: u64) -> Ps {
        self.fault_stall_split(faults, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe_cpu::LevelCounts;

    fn model() -> GpuModel {
        GpuModel::new(GpuConfig::paper())
    }

    fn full_occ() -> Occupancy {
        Occupancy::of(model().config(), 192, 0)
    }

    fn kernel(instrs: u64, flops: u64, threads: u64) -> StageWork {
        StageWork {
            instructions: instrs,
            flops,
            mem: LevelCounts::default(),
            threads,
            simd_efficiency: 1.0,
        }
    }

    #[test]
    fn paper_config_totals() {
        let c = GpuConfig::paper();
        assert_eq!(c.sms, 16);
        assert!((c.peak_flops_total() - 358.4e9).abs() < 1e6);
        assert!((c.peak_issue_rate() - 358.4e9).abs() < 1e6);
        assert_eq!(c.max_threads_per_sm(), 1536);
    }

    #[test]
    fn occupancy_limited_by_cta_slots() {
        // Small CTAs: the 8-CTA limit binds before the 48-warp limit.
        let occ = Occupancy::of(&GpuConfig::paper(), 64, 0);
        assert_eq!(occ.ctas_per_sm, 8);
        assert_eq!(occ.warps_per_sm, 16);
    }

    #[test]
    fn occupancy_limited_by_warps() {
        // 512-thread CTAs = 16 warps each: 3 CTAs fill 48 warps.
        let occ = Occupancy::of(&GpuConfig::paper(), 512, 0);
        assert_eq!(occ.ctas_per_sm, 3);
        assert_eq!(occ.warps_per_sm, 48);
        assert_eq!(occ.threads_per_sm(), 1536);
        assert!((occ.fraction(&GpuConfig::paper()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_limited_by_scratch() {
        // 16 KiB scratch per CTA: only 3 fit in 48 KiB.
        let occ = Occupancy::of(&GpuConfig::paper(), 128, 16 * 1024);
        assert_eq!(occ.ctas_per_sm, 3);
    }

    #[test]
    #[should_panic(expected = "scratch")]
    fn oversized_scratch_rejected() {
        let _ = Occupancy::of(&GpuConfig::paper(), 128, 64 * 1024);
    }

    #[test]
    fn gpu_is_much_faster_than_cpu_on_wide_work() {
        use heteropipe_cpu::{CpuConfig, CpuModel};
        let w = kernel(100_000_000, 100_000_000, 1 << 20);
        let g = model().kernel_time(&w, full_occ());
        let mut cw = w;
        cw.threads = 1;
        let c = CpuModel::new(CpuConfig::paper()).stage_time(&cw);
        assert!(c.as_secs_f64() / g.as_secs_f64() > 5.0);
    }

    #[test]
    fn compute_bound_kernel_matches_peak() {
        let w = kernel(0, 358_400_000, 1 << 20); // 1 ms at peak FLOPs
        let t = model().kernel_time(&w, full_occ());
        assert!((t.as_millis_f64() - 1.0).abs() < 0.01, "{t}");
    }

    #[test]
    fn low_occupancy_slows_issue() {
        let w = kernel(100_000_000, 0, 256);
        let small = model().kernel_time(&w, Occupancy::of(model().config(), 256, 0));
        let wide = kernel(100_000_000, 0, 1 << 20);
        let big = model().kernel_time(&wide, full_occ());
        assert!(
            small > big,
            "tiny kernel should issue slower: {small} vs {big}"
        );
    }

    #[test]
    fn latency_bound_binds_at_low_occupancy_only() {
        let mut w = kernel(1_000, 0, 1 << 20);
        w.mem.offchip = 1_000_000;
        let full = model().kernel_time(&w, full_occ());
        let mut narrow = w;
        narrow.threads = 512; // 16 warps total
        let thin = model().kernel_time(&narrow, full_occ());
        assert!(thin.as_secs_f64() > 10.0 * full.as_secs_f64());
    }

    #[test]
    fn fault_stall_is_linear() {
        let m = model();
        assert_eq!(m.fault_stall(0), Ps::ZERO);
        assert_eq!(m.fault_stall(10), m.config().page_fault_latency * 10);
    }

    #[test]
    fn remote_hits_also_cost_latency() {
        let mut near = kernel(1_000, 0, 1 << 14);
        near.mem.l2_hits = 100_000;
        let mut far = kernel(1_000, 0, 1 << 14);
        far.mem.remote_hits = 100_000;
        let m = model();
        assert!(m.kernel_time(&far, full_occ()) > m.kernel_time(&near, full_occ()));
    }
}
