//! The per-warp memory access coalescer.
//!
//! Fermi-class GPUs service a warp's 32 thread accesses as the set of
//! distinct 128-byte segments they touch. Fully regular code (thread `i`
//! touches element `base + i`) coalesces 32 four-byte accesses into a single
//! line transaction; irregular gathers degrade toward one transaction per
//! thread. The paper's misalignment observation (Fig. 5's `*` benchmarks)
//! also lives here: a misaligned but otherwise-regular warp access straddles
//! one extra segment.

use heteropipe_mem::{Addr, LineAddr};

/// Threads per warp on the study's Fermi-like SMs.
pub const WARP_SIZE: usize = 32;

/// Coalesces one warp's thread addresses into distinct line transactions,
/// appending them to `out` in first-touch order.
///
/// Returns the number of transactions generated.
///
/// # Examples
///
/// ```
/// use heteropipe_gpu::coalesce_warp;
/// use heteropipe_mem::Addr;
///
/// // 32 consecutive 4-byte elements starting at a line boundary: 1 line.
/// let addrs: Vec<Addr> = (0..32).map(|i| Addr(i * 4)).collect();
/// let mut out = Vec::new();
/// assert_eq!(coalesce_warp(&addrs, &mut out), 1);
/// ```
pub fn coalesce_warp(addrs: &[Addr], out: &mut Vec<LineAddr>) -> usize {
    let start = out.len();
    for &a in addrs {
        let line = a.line();
        // A warp touches few distinct lines; linear scan of the tail is
        // cheaper than hashing at this size.
        if !out[start..].contains(&line) {
            out.push(line);
        }
    }
    out.len() - start
}

/// Convenience: the number of transactions a warp of `addrs` generates.
pub fn warp_transactions(addrs: &[Addr]) -> usize {
    let mut out = Vec::with_capacity(4);
    coalesce_warp(addrs, &mut out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe_mem::LINE_BYTES;

    fn strided(base: u64, stride: u64, elem: u64) -> Vec<Addr> {
        (0..WARP_SIZE as u64)
            .map(|i| Addr(base + i * stride * elem))
            .collect()
    }

    #[test]
    fn unit_stride_aligned_is_one_transaction() {
        assert_eq!(warp_transactions(&strided(0, 1, 4)), 1);
    }

    #[test]
    fn unit_stride_8byte_is_two_transactions() {
        // 32 x 8 B = 256 B = 2 lines.
        assert_eq!(warp_transactions(&strided(0, 1, 8)), 2);
    }

    #[test]
    fn misaligned_unit_stride_adds_one_transaction() {
        let aligned = warp_transactions(&strided(0, 1, 4));
        let misaligned = warp_transactions(&strided(LINE_BYTES / 2, 1, 4));
        assert_eq!(misaligned, aligned + 1);
    }

    #[test]
    fn large_stride_fully_diverges() {
        // Stride of one line per thread: 32 transactions.
        assert_eq!(warp_transactions(&strided(0, 32, 4)), 32);
    }

    #[test]
    fn random_gather_mostly_diverges() {
        use heteropipe_sim::SplitMix64;
        let mut rng = SplitMix64::new(1);
        let addrs: Vec<Addr> = (0..WARP_SIZE)
            .map(|_| Addr(rng.below(1 << 24) * 4))
            .collect();
        let n = warp_transactions(&addrs);
        assert!(n > 24, "random gather coalesced too well: {n}");
    }

    #[test]
    fn duplicate_addresses_coalesce_to_one() {
        let addrs = vec![Addr(100); WARP_SIZE];
        assert_eq!(warp_transactions(&addrs), 1);
    }

    #[test]
    fn coalesce_appends_in_first_touch_order() {
        let addrs = vec![Addr(256), Addr(0), Addr(300), Addr(4)];
        let mut out = Vec::new();
        coalesce_warp(&addrs, &mut out);
        assert_eq!(out, vec![Addr(256).line(), Addr(0).line()]);
    }

    #[test]
    fn transaction_count_bounded() {
        heteropipe_sim::check::cases(64, 0xC0A1, |g| {
            let addrs: Vec<Addr> = g.vec(1, WARP_SIZE + 1, |g| Addr(g.u64(0, 1_000_000)));
            let n = warp_transactions(&addrs);
            assert!(n >= 1);
            assert!(n <= addrs.len());
        });
    }
}
