//! Miss-status holding registers (MSHRs).
//!
//! MSHRs bound how many distinct outstanding line misses a cache can track;
//! they are the physical resource behind the memory-level parallelism (MLP)
//! parameters of the `heteropipe-cpu` and `heteropipe-gpu` timing models.
//! This module models the registers themselves — allocation, merging of
//! secondary misses, and the stall that a full MSHR file imposes — and
//! derives the effective MLP a core can sustain from its MSHR budget, so
//! the bounds models' constants are grounded rather than free parameters.

use std::fmt;

use crate::addr::LineAddr;

/// Outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated for the line.
    Allocated,
    /// The line already had an entry; this secondary miss merged into it.
    Merged,
    /// No entry free: the access must stall until one retires.
    Stall,
}

/// A fixed file of miss-status holding registers.
///
/// # Examples
///
/// ```
/// use heteropipe_mem::mshr::{MshrFile, MshrOutcome};
/// use heteropipe_mem::LineAddr;
///
/// let mut m = MshrFile::new(2);
/// assert_eq!(m.request(LineAddr(1)), MshrOutcome::Allocated);
/// assert_eq!(m.request(LineAddr(1)), MshrOutcome::Merged);
/// assert_eq!(m.request(LineAddr(2)), MshrOutcome::Allocated);
/// assert_eq!(m.request(LineAddr(3)), MshrOutcome::Stall);
/// m.retire(LineAddr(1));
/// assert_eq!(m.request(LineAddr(3)), MshrOutcome::Allocated);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<(LineAddr, u32)>,
    capacity: usize,
    stalls: u64,
    merges: u64,
    allocations: u64,
}

impl MshrFile {
    /// A file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            stalls: 0,
            merges: 0,
            allocations: 0,
        }
    }

    /// Presents a miss on `line`.
    pub fn request(&mut self, line: LineAddr) -> MshrOutcome {
        if let Some(e) = self.entries.iter_mut().find(|(l, _)| *l == line) {
            e.1 += 1;
            self.merges += 1;
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            return MshrOutcome::Stall;
        }
        self.entries.push((line, 1));
        self.allocations += 1;
        MshrOutcome::Allocated
    }

    /// Retires the entry for `line` (its fill returned). No-op when absent.
    pub fn retire(&mut self, line: LineAddr) {
        self.entries.retain(|(l, _)| *l != line);
    }

    /// Currently outstanding distinct misses.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Whether every entry is in use.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// `(allocations, merges, stalls)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.allocations, self.merges, self.stalls)
    }
}

impl fmt::Display for MshrFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MSHR {}/{}", self.entries.len(), self.capacity)
    }
}

/// The effective memory-level parallelism a core sustains given its MSHR
/// budget and how much of its access stream is independent.
///
/// Little's law: with `mshrs` outstanding slots and perfectly independent
/// misses, a core overlaps `mshrs` requests; dependent access chains reduce
/// that by the independence fraction. The Table I models use
/// `effective_mlp(8, 0.5) ≈ 4` for the OoO CPU cores (8 L1 MSHRs, half the
/// stream dependence-limited) — the `CpuConfig::paper` MLP — while the GPU's
/// latency tolerance comes from warp count rather than per-access MSHRs.
pub fn effective_mlp(mshrs: u32, independence: f64) -> f64 {
    let ind = independence.clamp(0.0, 1.0);
    (mshrs as f64 * ind).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_stall_cycle() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.request(LineAddr(10)), MshrOutcome::Allocated);
        assert_eq!(m.request(LineAddr(11)), MshrOutcome::Allocated);
        assert!(m.is_full());
        assert_eq!(m.request(LineAddr(12)), MshrOutcome::Stall);
        assert_eq!(m.request(LineAddr(10)), MshrOutcome::Merged);
        m.retire(LineAddr(10));
        assert_eq!(m.outstanding(), 1);
        assert_eq!(m.request(LineAddr(12)), MshrOutcome::Allocated);
        assert_eq!(m.stats(), (3, 1, 1));
    }

    #[test]
    fn retire_absent_is_noop() {
        let mut m = MshrFile::new(1);
        m.retire(LineAddr(99));
        assert_eq!(m.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn effective_mlp_grounds_the_paper_cpu_parameter() {
        // 8 MSHRs, ~50% independent stream: the CpuConfig::paper() MLP of 4.
        assert_eq!(effective_mlp(8, 0.5), 4.0);
        // Fully dependent chains degrade to no overlap.
        assert_eq!(effective_mlp(8, 0.0), 1.0);
        // Clamped above 1 and at full independence.
        assert_eq!(effective_mlp(16, 1.5), 16.0);
    }

    #[test]
    fn display_shows_occupancy() {
        let mut m = MshrFile::new(4);
        m.request(LineAddr(1));
        assert_eq!(m.to_string(), "MSHR 1/4");
    }

    /// Outstanding never exceeds capacity, and every allocated entry can
    /// be retired.
    #[test]
    fn capacity_invariant() {
        heteropipe_sim::check::cases(64, 0x3542, |g| {
            let ops = g.vec(1, 200, |g| (g.u64(0, 16), g.bool()));
            let mut m = MshrFile::new(4);
            for (line, retire) in ops {
                if retire {
                    m.retire(LineAddr(line));
                } else {
                    m.request(LineAddr(line));
                }
                assert!(m.outstanding() <= 4);
            }
        });
    }
}
