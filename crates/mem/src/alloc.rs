//! Buffer allocation in the simulated physical address spaces.
//!
//! The discrete system has two spaces (CPU DDR3 and GPU GDDR5); the
//! heterogeneous processor has one shared space. Allocation policy matters to
//! the study in one specific way: the CUDA library cache-line-aligns GPU
//! allocations, but CPU-GPU-*shared* allocations in the limited-copy
//! benchmarks can lack that alignment, inflating GPU coalesced access counts
//! (the benchmarks marked `*` in the paper's Fig. 5). [`Allocator`] models
//! both policies.

use std::fmt;

use crate::addr::{Addr, AddrRange, LINE_BYTES, PAGE_BYTES};

/// Which physical address space an allocation lives in.
///
/// The spaces are carved out of one global 64-bit address range at fixed,
/// widely separated bases so that a CPU address can never alias a GPU
/// address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressSpace {
    /// CPU DDR3 memory of the discrete system (also used as the single
    /// shared space of the heterogeneous processor).
    Cpu,
    /// GPU GDDR5 memory of the discrete system.
    Gpu,
}

impl AddressSpace {
    const fn base(self) -> u64 {
        match self {
            AddressSpace::Cpu => 0x0000_1000_0000,
            AddressSpace::Gpu => 0x1000_0000_0000,
        }
    }
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressSpace::Cpu => write!(f, "cpu-mem"),
            AddressSpace::Gpu => write!(f, "gpu-mem"),
        }
    }
}

/// A bump allocator over the simulated address spaces.
///
/// # Examples
///
/// ```
/// use heteropipe_mem::{Allocator, AddressSpace};
///
/// let mut a = Allocator::new();
/// let host = a.alloc(AddressSpace::Cpu, 4096, true);
/// let dev = a.alloc(AddressSpace::Gpu, 4096, true);
/// assert_eq!(host.bytes(), 4096);
/// assert!(host.start() != dev.start());
/// assert!(host.start().is_line_aligned());
/// ```
#[derive(Debug, Clone)]
pub struct Allocator {
    next_cpu: u64,
    next_gpu: u64,
}

impl Allocator {
    /// Creates a fresh allocator with empty spaces.
    pub fn new() -> Self {
        Allocator {
            next_cpu: AddressSpace::Cpu.base(),
            next_gpu: AddressSpace::Gpu.base(),
        }
    }

    /// Allocates `bytes` in `space`.
    ///
    /// With `aligned = true` the start is page-aligned (the CUDA-library
    /// behaviour). With `aligned = false` the start is offset half a cache
    /// line past page alignment, modelling the unaligned CPU-GPU-shared
    /// allocations the paper observes; every contiguous sweep of such a
    /// buffer touches one extra line per segment.
    pub fn alloc(&mut self, space: AddressSpace, bytes: u64, aligned: bool) -> AddrRange {
        assert!(bytes > 0, "zero-byte allocation");
        let cursor = match space {
            AddressSpace::Cpu => &mut self.next_cpu,
            AddressSpace::Gpu => &mut self.next_gpu,
        };
        // Always start each allocation on a fresh page so buffers never
        // share lines or pages (matches distinct mmap'd regions).
        let page_aligned = (*cursor).div_ceil(PAGE_BYTES) * PAGE_BYTES;
        let start = if aligned {
            page_aligned
        } else {
            page_aligned + LINE_BYTES / 2
        };
        *cursor = start + bytes;
        AddrRange::new(Addr(start), bytes)
    }

    /// Bytes allocated so far in `space` (including alignment padding).
    pub fn allocated(&self, space: AddressSpace) -> u64 {
        match space {
            AddressSpace::Cpu => self.next_cpu - AddressSpace::Cpu.base(),
            AddressSpace::Gpu => self.next_gpu - AddressSpace::Gpu.base(),
        }
    }
}

impl Default for Allocator {
    fn default() -> Self {
        Allocator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_never_overlap() {
        let mut a = Allocator::new();
        let r1 = a.alloc(AddressSpace::Cpu, 5000, true);
        let r2 = a.alloc(AddressSpace::Cpu, 5000, true);
        assert!(r1.end().0 <= r2.start().0);
    }

    #[test]
    fn spaces_are_disjoint() {
        let mut a = Allocator::new();
        let c = a.alloc(AddressSpace::Cpu, 1 << 30, true);
        let g = a.alloc(AddressSpace::Gpu, 1 << 30, true);
        assert!(c.end().0 <= g.start().0 || g.end().0 <= c.start().0);
    }

    #[test]
    fn aligned_allocations_are_page_aligned() {
        let mut a = Allocator::new();
        for _ in 0..5 {
            let r = a.alloc(AddressSpace::Gpu, 777, true);
            assert_eq!(r.start().0 % PAGE_BYTES, 0);
        }
    }

    #[test]
    fn misaligned_allocations_touch_extra_lines() {
        let mut a = Allocator::new();
        let good = a.alloc(AddressSpace::Cpu, 4096, true);
        let bad = a.alloc(AddressSpace::Cpu, 4096, false);
        assert_eq!(good.line_count(), 32);
        assert_eq!(bad.line_count(), 33);
        assert!(!bad.start().is_line_aligned());
    }

    #[test]
    fn allocated_tracks_usage() {
        let mut a = Allocator::new();
        assert_eq!(a.allocated(AddressSpace::Cpu), 0);
        a.alloc(AddressSpace::Cpu, 100, true);
        assert!(a.allocated(AddressSpace::Cpu) >= 100);
        assert_eq!(a.allocated(AddressSpace::Gpu), 0);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn rejects_empty_allocation() {
        let mut a = Allocator::new();
        a.alloc(AddressSpace::Cpu, 0, true);
    }
}
