//! # heteropipe-mem
//!
//! Memory-system substrate for the `heteropipe` heterogeneous CPU-GPU
//! processor study: everything between a core's load/store interface and the
//! DRAM pins of the paper's Table I systems.
//!
//! * [`addr`] — address, cache-line (128 B), and page (4 KiB) newtypes plus
//!   contiguous ranges.
//! * [`alloc`] — bump allocation of buffer ranges in the distinct CPU, GPU,
//!   and shared physical address spaces, with the (mis)alignment behaviour
//!   the paper observes for CPU-GPU-shared allocations.
//! * [`access`] — the access vocabulary: who (CPU core, GPU SM, copy
//!   engine), what (read/write), and where.
//! * [`cache`] — set-associative writeback caches with LRU replacement.
//! * [`hierarchy`] — composed CPU-side (per-core L1D + private L2) and
//!   GPU-side (per-SM L1 + shared L2) hierarchies, with optional coherent
//!   cross-probes between the two sides for the heterogeneous processor.
//! * [`dram`], [`pcie`], [`xbar`] — bandwidth/latency models of the DDR3,
//!   GDDR5, PCIe 2.0, and on-chip switch components.
//! * [`page`] — page table and the CPU-handled GPU page-fault model of the
//!   heterogeneous processor.
//!
//! The caches are *functional*: they answer hit/miss and produce evictions
//! but carry no timing. Timing is applied at stage granularity by the
//! `heteropipe-cpu` / `heteropipe-gpu` models over the counts this crate
//! produces, which is exactly the granularity at which the paper reasons.

#![warn(missing_docs)]

pub mod access;
pub mod addr;
pub mod alloc;
pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod mshr;
pub mod page;
pub mod pcie;
pub mod xbar;

pub use access::{AccessKind, Requester};
pub use addr::{Addr, AddrRange, LineAddr, PageAddr, LINE_BYTES, PAGE_BYTES};
pub use alloc::{AddressSpace, Allocator};
pub use cache::{CacheConfig, CacheStats, SetAssocCache};
pub use hierarchy::{AccessResult, ChipHierarchy, HierarchyConfig, ServiceLevel};
pub use page::{PageTable, TouchOutcome};
