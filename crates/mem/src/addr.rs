//! Addresses, cache lines, pages, and contiguous ranges.
//!
//! Both Table I systems use 128-byte cache lines throughout and 4 KiB pages.
//! Newtypes keep byte addresses, line numbers, and page numbers from being
//! mixed up at compile time.

use std::fmt;

macro_rules! fmt_hex {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{:#x}", self.0)
        }
    };
}

/// Cache line size in bytes (Table I: "128B lines" at every cache level).
pub const LINE_BYTES: u64 = 128;

/// Page size in bytes (x86-64 base pages, as used by gem5-gpu's Linux).
pub const PAGE_BYTES: u64 = 4096;

/// Cache lines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

/// A byte address in a simulated physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The page containing this address.
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }

    /// This address offset by `bytes`.
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Whether the address is aligned to a cache line boundary.
    pub const fn is_line_aligned(self) -> bool {
        self.0.is_multiple_of(LINE_BYTES)
    }
}

impl fmt::Display for Addr {
    fmt_hex!();
}

/// A cache-line number (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// First byte address of this line.
    pub const fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The page containing this line.
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / LINES_PER_PAGE)
    }

    /// The next line.
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }
}

impl fmt::Display for LineAddr {
    fmt_hex!();
}

/// A page number (byte address divided by [`PAGE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PageAddr(pub u64);

impl PageAddr {
    /// First byte address of this page.
    pub const fn base(self) -> Addr {
        Addr(self.0 * PAGE_BYTES)
    }
}

impl fmt::Display for PageAddr {
    fmt_hex!();
}

/// A half-open byte range `[start, start + bytes)` in an address space.
///
/// # Examples
///
/// ```
/// use heteropipe_mem::{Addr, AddrRange, LINE_BYTES};
///
/// let r = AddrRange::new(Addr(256), 1024);
/// assert_eq!(r.lines().count(), 8);
/// assert!(r.contains(Addr(1279)));
/// assert!(!r.contains(Addr(1280)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AddrRange {
    start: Addr,
    bytes: u64,
}

impl AddrRange {
    /// Creates a range of `bytes` bytes starting at `start`.
    pub const fn new(start: Addr, bytes: u64) -> Self {
        AddrRange { start, bytes }
    }

    /// An empty range at address zero.
    pub const fn empty() -> Self {
        AddrRange {
            start: Addr(0),
            bytes: 0,
        }
    }

    /// First byte address.
    pub const fn start(&self) -> Addr {
        self.start
    }

    /// One past the last byte address.
    pub const fn end(&self) -> Addr {
        Addr(self.start.0 + self.bytes)
    }

    /// Length in bytes.
    pub const fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether the range covers no bytes.
    pub const fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// Whether `a` falls inside the range.
    pub const fn contains(&self, a: Addr) -> bool {
        a.0 >= self.start.0 && a.0 < self.start.0 + self.bytes
    }

    /// Number of distinct cache lines the range touches. A misaligned range
    /// touches one more line than an aligned range of equal size — the
    /// paper's allocation-misalignment effect falls out of this.
    pub fn line_count(&self) -> u64 {
        if self.bytes == 0 {
            return 0;
        }
        self.end().offset(LINE_BYTES - 1).line().0 - self.start.line().0
    }

    /// Iterates every cache line the range touches, in address order.
    pub fn lines(&self) -> impl Iterator<Item = LineAddr> + Clone {
        let first = self.start.line().0;
        let n = self.line_count();
        (first..first + n).map(LineAddr)
    }

    /// Number of distinct pages the range touches.
    pub fn page_count(&self) -> u64 {
        if self.bytes == 0 {
            return 0;
        }
        self.end().offset(PAGE_BYTES - 1).page().0 - self.start.page().0
    }

    /// Iterates every page the range touches, in address order.
    pub fn pages(&self) -> impl Iterator<Item = PageAddr> + Clone {
        let first = self.start.page().0;
        let n = self.page_count();
        (first..first + n).map(PageAddr)
    }

    /// The sub-range starting `offset` bytes in and running for `bytes`
    /// (clamped to this range's end).
    pub fn slice(&self, offset: u64, bytes: u64) -> AddrRange {
        let offset = offset.min(self.bytes);
        let bytes = bytes.min(self.bytes - offset);
        AddrRange::new(self.start.offset(offset), bytes)
    }

    /// Splits the range into `n` near-equal contiguous chunks (the last one
    /// takes the remainder). Used for kernel fission / chunked
    /// producer-consumer organizations.
    pub fn chunks(&self, n: u64) -> Vec<AddrRange> {
        assert!(n > 0, "chunk count must be positive");
        let base = self.bytes / n;
        let mut out = Vec::with_capacity(n as usize);
        let mut off = 0;
        for i in 0..n {
            let len = if i == n - 1 { self.bytes - off } else { base };
            out.push(self.slice(off, len));
            off += len;
        }
        out
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start.0, self.end().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_page_math() {
        let a = Addr(4096 + 130);
        assert_eq!(a.line(), LineAddr((4096 + 130) / 128));
        assert_eq!(a.page(), PageAddr(1));
        assert_eq!(a.line().page(), PageAddr(1));
        assert_eq!(LineAddr(3).base(), Addr(384));
        assert_eq!(PageAddr(2).base(), Addr(8192));
        assert!(Addr(256).is_line_aligned());
        assert!(!Addr(257).is_line_aligned());
        assert_eq!(LineAddr(7).next(), LineAddr(8));
    }

    #[test]
    fn range_lines_aligned() {
        let r = AddrRange::new(Addr(0), 1024);
        assert_eq!(r.line_count(), 8);
        let v: Vec<LineAddr> = r.lines().collect();
        assert_eq!(v.first(), Some(&LineAddr(0)));
        assert_eq!(v.last(), Some(&LineAddr(7)));
    }

    #[test]
    fn misaligned_range_touches_one_extra_line() {
        let aligned = AddrRange::new(Addr(0), 1024);
        let misaligned = AddrRange::new(Addr(64), 1024);
        assert_eq!(aligned.line_count(), 8);
        assert_eq!(misaligned.line_count(), 9);
    }

    #[test]
    fn empty_range() {
        let r = AddrRange::empty();
        assert!(r.is_empty());
        assert_eq!(r.line_count(), 0);
        assert_eq!(r.page_count(), 0);
        assert_eq!(r.lines().count(), 0);
    }

    #[test]
    fn page_iteration() {
        let r = AddrRange::new(Addr(4000), 5000); // spans pages 0..=2
        assert_eq!(r.page_count(), 3);
        let v: Vec<PageAddr> = r.pages().collect();
        assert_eq!(v, vec![PageAddr(0), PageAddr(1), PageAddr(2)]);
    }

    #[test]
    fn slice_clamps() {
        let r = AddrRange::new(Addr(100), 100);
        let s = r.slice(50, 1000);
        assert_eq!(s.start(), Addr(150));
        assert_eq!(s.bytes(), 50);
        let past = r.slice(200, 10);
        assert!(past.is_empty());
    }

    #[test]
    fn chunks_cover_exactly() {
        let r = AddrRange::new(Addr(128), 1000);
        let cs = r.chunks(3);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs.iter().map(|c| c.bytes()).sum::<u64>(), 1000);
        assert_eq!(cs[0].start(), r.start());
        assert_eq!(cs[2].end(), r.end());
        // Contiguous.
        assert_eq!(cs[0].end(), cs[1].start());
        assert_eq!(cs[1].end(), cs[2].start());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(AddrRange::new(Addr(0), 16).to_string(), "[0x0, 0x10)");
    }

    #[test]
    fn line_count_matches_iteration() {
        heteropipe_sim::check::cases(64, 0xADD2, |g| {
            let r = AddrRange::new(Addr(g.u64(0, 1_000_000)), g.u64(0, 100_000));
            assert_eq!(r.line_count() as usize, r.lines().count());
            assert_eq!(r.page_count() as usize, r.pages().count());
        });
    }

    #[test]
    fn chunks_partition() {
        heteropipe_sim::check::cases(64, 0xADD3, |g| {
            let bytes = g.u64(1, 100_000);
            let r = AddrRange::new(Addr(g.u64(0, 1_000_000)), bytes);
            let cs = r.chunks(g.u64(1, 16));
            assert_eq!(cs.iter().map(|c| c.bytes()).sum::<u64>(), bytes);
            for w in cs.windows(2) {
                assert_eq!(w[0].end(), w[1].start());
            }
        });
    }
}
