//! Set-associative writeback caches.
//!
//! A functional cache model: it tracks presence, dirtiness, and LRU order,
//! and reports hits, misses, and dirty evictions. Timing is applied by the
//! core models over the aggregate counts.
//!
//! Storage is structure-of-arrays: one flat tag array, one flat LRU array,
//! and packed valid/dirty bitsets, so a set probe is a linear sweep over
//! `ways` adjacent tags instead of a strided walk over per-way structs.
//! The simulator spends most of its functional-model time in [`
//! SetAssocCache::access`], and the tag sweep is the inner loop.

use std::fmt;

use crate::access::AccessKind;
use crate::addr::{AddrRange, LineAddr, LINE_BYTES};

/// Geometry of a cache.
///
/// # Examples
///
/// ```
/// use heteropipe_mem::CacheConfig;
///
/// // The study's GPU-shared L2: 1 MiB, 16-way, 128 B lines.
/// let l2 = CacheConfig::new(1024 * 1024, 16);
/// assert_eq!(l2.sets(), 512);
/// assert_eq!(l2.lines(), 8192);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    capacity_bytes: u64,
    ways: u32,
}

impl CacheConfig {
    /// A cache of `capacity_bytes` with `ways`-way associativity and the
    /// study-wide 128 B line size.
    ///
    /// # Panics
    ///
    /// Panics unless the capacity is a positive multiple of
    /// `ways * LINE_BYTES`.
    pub fn new(capacity_bytes: u64, ways: u32) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        assert!(
            capacity_bytes > 0 && capacity_bytes.is_multiple_of(ways as u64 * LINE_BYTES),
            "capacity {capacity_bytes} must be a positive multiple of ways*line"
        );
        CacheConfig {
            capacity_bytes,
            ways,
        }
    }

    /// Total capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Associativity.
    pub const fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of sets.
    pub const fn sets(&self) -> u64 {
        self.capacity_bytes / (self.ways as u64 * LINE_BYTES)
    }

    /// Total line slots.
    pub const fn lines(&self) -> u64 {
        self.capacity_bytes / LINE_BYTES
    }
}

/// What happened on a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the line was already present.
    pub hit: bool,
    /// A dirty line displaced to make room, which must be written to the
    /// next level down.
    pub writeback: Option<LineAddr>,
}

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that found the line present.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines displaced by fills.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; zero when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// A packed per-slot bitset (one bit per line slot).
#[derive(Clone, Default)]
struct SlotBits {
    words: Vec<u64>,
}

impl SlotBits {
    fn zeroed(slots: usize) -> Self {
        SlotBits {
            words: vec![0; slots.div_ceil(64)],
        }
    }

    #[inline]
    fn get(&self, slot: usize) -> bool {
        self.words[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    #[inline]
    fn set(&mut self, slot: usize, value: bool) {
        let mask = 1u64 << (slot & 63);
        if value {
            self.words[slot >> 6] |= mask;
        } else {
            self.words[slot >> 6] &= !mask;
        }
    }

    fn clear_all(&mut self) {
        self.words.fill(0);
    }

    fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

/// A set-associative, write-allocate, writeback cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use heteropipe_mem::{CacheConfig, SetAssocCache, AccessKind, LineAddr};
///
/// let mut c = SetAssocCache::new(CacheConfig::new(1024, 2)); // 8 lines
/// let miss = c.access(LineAddr(0), AccessKind::Read);
/// assert!(!miss.hit);
/// let hit = c.access(LineAddr(0), AccessKind::Write);
/// assert!(hit.hit);
/// assert!(c.contains(LineAddr(0)));
/// ```
pub struct SetAssocCache {
    config: CacheConfig,
    /// Tags, slot-major: set `s` occupies `[s*ways, (s+1)*ways)`.
    tags: Vec<u64>,
    /// Last-touch tick per slot (LRU order within a set).
    lru: Vec<u64>,
    valid: SlotBits,
    dirty: SlotBits,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let slots = (config.sets() * config.ways as u64) as usize;
        SetAssocCache {
            config,
            tags: vec![0; slots],
            lru: vec![0; slots],
            valid: SlotBits::zeroed(slots),
            dirty: SlotBits::zeroed(slots),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, line: LineAddr) -> (usize, u64) {
        let sets = self.config.sets();
        let set = (line.0 % sets) as usize;
        let tag = line.0 / sets;
        (set * self.config.ways as usize, tag)
    }

    fn line_of(&self, slot: usize) -> LineAddr {
        let sets = self.config.sets();
        let set = (slot / self.config.ways as usize) as u64;
        LineAddr(self.tags[slot] * sets + set)
    }

    /// Linear sweep of one set's tag array for a valid slot holding `tag`.
    #[inline]
    fn find(&self, base: usize, tag: u64) -> Option<usize> {
        let ways = self.config.ways as usize;
        self.tags[base..base + ways]
            .iter()
            .enumerate()
            .find(|&(w, &t)| t == tag && self.valid.get(base + w))
            .map(|(w, _)| base + w)
    }

    /// Performs an access, allocating on miss. Returns whether it hit and
    /// any dirty line displaced by the fill.
    pub fn access(&mut self, line: LineAddr, kind: AccessKind) -> CacheOutcome {
        self.tick += 1;
        let (base, tag) = self.set_range(line);
        if let Some(slot) = self.find(base, tag) {
            self.lru[slot] = self.tick;
            if kind.is_write() {
                self.dirty.set(slot, true);
            }
            self.stats.hits += 1;
            return CacheOutcome {
                hit: true,
                writeback: None,
            };
        }
        self.stats.misses += 1;
        // Fill: prefer an invalid way, else evict true-LRU.
        let ways = self.config.ways as usize;
        let mut victim = base;
        let mut best = u64::MAX;
        for slot in base..base + ways {
            if !self.valid.get(slot) {
                victim = slot;
                break;
            }
            if self.lru[slot] < best {
                best = self.lru[slot];
                victim = slot;
            }
        }
        let mut writeback = None;
        if self.valid.get(victim) && self.dirty.get(victim) {
            writeback = Some(self.line_of(victim));
            self.stats.writebacks += 1;
        }
        self.tags[victim] = tag;
        self.valid.set(victim, true);
        self.dirty.set(victim, kind.is_write());
        self.lru[victim] = self.tick;
        CacheOutcome {
            hit: false,
            writeback,
        }
    }

    /// Whether the line is currently resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        let (base, tag) = self.set_range(line);
        self.find(base, tag).is_some()
    }

    /// Whether the line is resident and dirty.
    pub fn is_dirty(&self, line: LineAddr) -> bool {
        let (base, tag) = self.set_range(line);
        self.find(base, tag)
            .is_some_and(|slot| self.dirty.get(slot))
    }

    /// Invalidates one line if present, returning whether it was dirty
    /// (i.e. a writeback to memory is required).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let (base, tag) = self.set_range(line);
        let slot = self.find(base, tag)?;
        self.valid.set(slot, false);
        let was_dirty = self.dirty.get(slot);
        self.dirty.set(slot, false);
        Some(was_dirty)
    }

    /// Invalidates every line of `range` (as a DMA transfer does to the CPU
    /// caches in the discrete system). Returns `(lines_invalidated,
    /// dirty_writebacks)`.
    pub fn invalidate_range(&mut self, range: AddrRange) -> (u64, u64) {
        let mut inv = 0;
        let mut dirty = 0;
        for line in range.lines() {
            if let Some(was_dirty) = self.invalidate(line) {
                inv += 1;
                if was_dirty {
                    dirty += 1;
                }
            }
        }
        (inv, dirty)
    }

    /// Marks a resident line clean (after its data has been written back or
    /// transferred to another cache).
    pub fn clean(&mut self, line: LineAddr) {
        let (base, tag) = self.set_range(line);
        if let Some(slot) = self.find(base, tag) {
            self.dirty.set(slot, false);
        }
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> u64 {
        self.valid.count_ones()
    }

    /// Drops all contents and statistics.
    pub fn flush_all(&mut self) {
        self.valid.clear_all();
        self.dirty.clear_all();
    }
}

impl fmt::Debug for SetAssocCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("config", &self.config)
            .field("occupancy", &self.occupancy())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways = 8 lines.
        SetAssocCache::new(CacheConfig::new(1024, 2))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(64 * 1024, 8);
        assert_eq!(c.sets(), 64);
        assert_eq!(c.lines(), 512);
        assert_eq!(c.capacity_bytes(), 64 * 1024);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn config_rejects_bad_capacity() {
        let _ = CacheConfig::new(1000, 3);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(LineAddr(5), AccessKind::Read).hit);
        assert!(c.access(LineAddr(5), AccessKind::Read).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets). Two ways: 0 and 4 fit.
        c.access(LineAddr(0), AccessKind::Read);
        c.access(LineAddr(4), AccessKind::Read);
        c.access(LineAddr(0), AccessKind::Read); // refresh 0; 4 becomes LRU
        c.access(LineAddr(8), AccessKind::Read); // evicts 4
        assert!(c.contains(LineAddr(0)));
        assert!(!c.contains(LineAddr(4)));
        assert!(c.contains(LineAddr(8)));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = tiny();
        c.access(LineAddr(0), AccessKind::Write);
        c.access(LineAddr(4), AccessKind::Read);
        let out = c.access(LineAddr(8), AccessKind::Read); // evicts dirty 0
        assert_eq!(out.writeback, Some(LineAddr(0)));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = tiny();
        c.access(LineAddr(0), AccessKind::Read);
        c.access(LineAddr(4), AccessKind::Read);
        let out = c.access(LineAddr(8), AccessKind::Read);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_marks_dirty_and_clean_clears() {
        let mut c = tiny();
        c.access(LineAddr(3), AccessKind::Write);
        assert!(c.is_dirty(LineAddr(3)));
        c.clean(LineAddr(3));
        assert!(!c.is_dirty(LineAddr(3)));
        assert!(c.contains(LineAddr(3)));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.access(LineAddr(1), AccessKind::Write);
        c.access(LineAddr(2), AccessKind::Read);
        assert_eq!(c.invalidate(LineAddr(1)), Some(true));
        assert_eq!(c.invalidate(LineAddr(2)), Some(false));
        assert_eq!(c.invalidate(LineAddr(3)), None);
        assert!(!c.contains(LineAddr(1)));
    }

    #[test]
    fn invalidate_range_counts() {
        use crate::addr::Addr;
        let mut c = tiny();
        c.access(LineAddr(0), AccessKind::Write);
        c.access(LineAddr(1), AccessKind::Read);
        // Lines 0..4 = bytes 0..512.
        let (inv, dirty) = c.invalidate_range(AddrRange::new(Addr(0), 512));
        assert_eq!((inv, dirty), (2, 1));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn flush_all_empties() {
        let mut c = tiny();
        for i in 0..8 {
            c.access(LineAddr(i), AccessKind::Write);
        }
        assert!(c.occupancy() > 0);
        c.flush_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = tiny();
        for i in 0..1000 {
            c.access(LineAddr(i), AccessKind::Read);
        }
        assert!(c.occupancy() <= c.config().lines());
    }

    #[test]
    fn streaming_larger_than_cache_reuses_nothing() {
        let mut c = tiny();
        // Two passes over 64 lines through an 8-line cache: second pass
        // must miss everywhere (LRU, capacity-bound).
        for _pass in 0..2 {
            for i in 0..64 {
                c.access(LineAddr(i), AccessKind::Read);
            }
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 128);
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = tiny();
        for _pass in 0..3 {
            for i in 0..8 {
                c.access(LineAddr(i), AccessKind::Read);
            }
        }
        assert_eq!(c.stats().misses, 8);
        assert_eq!(c.stats().hits, 16);
    }

    /// The cache never reports more writebacks than writes performed,
    /// and occupancy stays bounded.
    #[test]
    fn sanity_under_random_traffic() {
        heteropipe_sim::check::cases(64, 0xCAC4E, |g| {
            let ops = g.vec(1, 500, |g| (g.u64(0, 64), g.bool()));
            let mut c = tiny();
            let mut writes = 0u64;
            for (line, is_write) in ops {
                let kind = if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                if is_write {
                    writes += 1;
                }
                c.access(LineAddr(line), kind);
                assert!(c.occupancy() <= 8);
            }
            assert!(c.stats().writebacks <= writes);
            assert_eq!(c.stats().accesses(), c.stats().hits + c.stats().misses);
        });
    }

    /// SoA model agrees with a naive per-way AoS reference under random
    /// traffic: identical hit/miss/writeback sequences and final contents.
    #[test]
    fn matches_aos_reference() {
        #[derive(Clone)]
        struct Way {
            tag: u64,
            valid: bool,
            dirty: bool,
            lru: u64,
        }
        struct Ref {
            sets: Vec<Way>,
            ways: usize,
            nsets: u64,
            tick: u64,
        }
        impl Ref {
            fn access(&mut self, line: LineAddr, write: bool) -> (bool, Option<LineAddr>) {
                self.tick += 1;
                let set = (line.0 % self.nsets) as usize;
                let tag = line.0 / self.nsets;
                let base = set * self.ways;
                for w in 0..self.ways {
                    let s = &mut self.sets[base + w];
                    if s.valid && s.tag == tag {
                        s.lru = self.tick;
                        s.dirty |= write;
                        return (true, None);
                    }
                }
                let mut victim = 0;
                let mut best = u64::MAX;
                for w in 0..self.ways {
                    let s = &self.sets[base + w];
                    if !s.valid {
                        victim = w;
                        break;
                    }
                    if s.lru < best {
                        best = s.lru;
                        victim = w;
                    }
                }
                let s = &mut self.sets[base + victim];
                let wb = if s.valid && s.dirty {
                    Some(LineAddr(s.tag * self.nsets + set as u64))
                } else {
                    None
                };
                s.tag = tag;
                s.valid = true;
                s.dirty = write;
                s.lru = self.tick;
                (false, wb)
            }
        }
        heteropipe_sim::check::cases(64, 0x50A0, |g| {
            let mut c = tiny();
            let mut r = Ref {
                sets: vec![
                    Way {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        lru: 0
                    };
                    8
                ],
                ways: 2,
                nsets: 4,
                tick: 0,
            };
            for (line, is_write) in g.vec(1, 400, |g| (g.u64(0, 64), g.bool())) {
                let kind = if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let out = c.access(LineAddr(line), kind);
                let (hit, wb) = r.access(LineAddr(line), is_write);
                assert_eq!(out.hit, hit);
                assert_eq!(out.writeback, wb);
            }
            for line in 0..64 {
                let set = (line % 4) as usize;
                let tag = line / 4;
                let present = (0..2).any(|w| {
                    let s = &r.sets[set * 2 + w];
                    s.valid && s.tag == tag
                });
                assert_eq!(c.contains(LineAddr(line)), present);
            }
        });
    }
}
