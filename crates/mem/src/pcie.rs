//! PCI Express link and DMA copy-engine model.
//!
//! Table I: PCIe v2.0 x16, 8 GB/s peak between the CPU and GPU memories of
//! the discrete system. The copy engine moves whole buffers by DMA; each
//! `cudaMemcpy` also pays a host-side setup/launch latency, which is what
//! the paper's `C_serial` term (Eq. 1) accumulates when copies are too small
//! or serialized to hide it.

use std::fmt;

use heteropipe_sim::Ps;

/// Parameters of the CPU-GPU interconnect of the discrete system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieConfig {
    peak_bytes_per_sec: f64,
    efficiency: f64,
    setup_latency: Ps,
}

impl PcieConfig {
    /// A PCIe link with the given peak bandwidth, achievable efficiency,
    /// and per-transfer DMA setup latency.
    pub fn new(peak_bytes_per_sec: f64, efficiency: f64, setup_latency: Ps) -> Self {
        assert!(peak_bytes_per_sec > 0.0, "bandwidth must be positive");
        assert!(efficiency > 0.0 && efficiency <= 1.0, "efficiency in (0,1]");
        PcieConfig {
            peak_bytes_per_sec,
            efficiency,
            setup_latency,
        }
    }

    /// Table I's link: PCIe v2.0 x16, 8 GB/s peak. Setup latency reflects
    /// a user-level `cudaMemcpy` round trip (~10 us).
    pub fn gen2_x16() -> Self {
        PcieConfig::new(8.0e9, 0.90, Ps::from_micros(10))
    }

    /// A PCIe 3.0 x16-class link (ablation: does more copy bandwidth close
    /// the gap to the heterogeneous processor?).
    pub fn gen3_x16() -> Self {
        PcieConfig::new(16.0e9, 0.90, Ps::from_micros(10))
    }

    /// Peak link bandwidth, bytes per second.
    pub const fn peak_bw(&self) -> f64 {
        self.peak_bytes_per_sec
    }

    /// Achievable DMA bandwidth (peak × protocol efficiency).
    pub fn effective_bw(&self) -> f64 {
        self.peak_bytes_per_sec * self.efficiency
    }

    /// Host-side setup latency charged per transfer.
    pub const fn setup_latency(&self) -> Ps {
        self.setup_latency
    }

    /// Pure transfer time for `bytes` at effective bandwidth (no setup, no
    /// contention).
    pub fn transfer_time(&self, bytes: u64) -> Ps {
        Ps::from_secs_f64(bytes as f64 / self.effective_bw())
    }

    /// A copy with a different peak bandwidth, for sweeps.
    pub fn with_peak_bw(mut self, peak_bytes_per_sec: f64) -> Self {
        assert!(peak_bytes_per_sec > 0.0);
        self.peak_bytes_per_sec = peak_bytes_per_sec;
        self
    }
}

impl fmt::Display for PcieConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PCIe {:.0}GB/s peak", self.peak_bytes_per_sec / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen2_matches_table1() {
        let p = PcieConfig::gen2_x16();
        assert_eq!(p.peak_bw(), 8.0e9);
        assert!(p.effective_bw() < p.peak_bw());
        assert_eq!(p.setup_latency(), Ps::from_micros(10));
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let p = PcieConfig::gen2_x16();
        let t1 = p.transfer_time(1 << 20);
        let t2 = p.transfer_time(2 << 20);
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gen3_doubles_gen2() {
        assert_eq!(
            PcieConfig::gen3_x16().peak_bw(),
            2.0 * PcieConfig::gen2_x16().peak_bw()
        );
    }

    #[test]
    fn bandwidth_asymmetry_vs_memories() {
        // The case-study's observation: PCIe (8 GB/s) is 3x slower than the
        // CPU memory (24 GB/s) and ~22x slower than GPU memory (179 GB/s).
        use crate::dram::DramConfig;
        let pcie = PcieConfig::gen2_x16();
        assert!(DramConfig::ddr3_1600_2ch().peak_bw() / pcie.peak_bw() >= 3.0);
        assert!(DramConfig::gddr5_4ch().peak_bw() / pcie.peak_bw() > 20.0);
    }
}
