//! The access vocabulary: requesters and access kinds.

use std::fmt;

/// Read or write, from the memory system's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessKind {
    /// A load, instruction fetch, or DMA read.
    Read,
    /// A store or DMA write.
    Write,
}

impl AccessKind {
    /// Whether this is a write.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// The agent issuing a memory access.
///
/// The paper's figures break footprints, access counts, and run time down by
/// these three component types (CPU, GPU, and the PCIe copy engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Requester {
    /// A CPU core (the study's CPU stages are single-threaded control and
    /// reduction code, so the core index is almost always 0).
    Cpu {
        /// Core index, `0..4`.
        core: u8,
    },
    /// A GPU streaming multiprocessor.
    Gpu {
        /// SM index, `0..16`.
        sm: u8,
    },
    /// The PCIe DMA copy engine of the discrete system.
    CopyEngine,
}

impl Requester {
    /// The coarse component class (CPU / GPU / copy engine) used in the
    /// paper's per-component breakdowns.
    pub const fn component(self) -> Component {
        match self {
            Requester::Cpu { .. } => Component::Cpu,
            Requester::Gpu { .. } => Component::Gpu,
            Requester::CopyEngine => Component::Copy,
        }
    }
}

impl fmt::Display for Requester {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Requester::Cpu { core } => write!(f, "cpu{core}"),
            Requester::Gpu { sm } => write!(f, "gpu-sm{sm}"),
            Requester::CopyEngine => write!(f, "copy"),
        }
    }
}

/// Coarse component classes for the paper's breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// CPU cores.
    Cpu,
    /// GPU SMs.
    Gpu,
    /// The PCIe copy engine.
    Copy,
}

impl Component {
    /// All component classes, in the paper's plotting order.
    pub const ALL: [Component; 3] = [Component::Copy, Component::Cpu, Component::Gpu];

    /// Stable index 0..3 for array-indexed per-component stats.
    pub const fn index(self) -> usize {
        match self {
            Component::Copy => 0,
            Component::Cpu => 1,
            Component::Gpu => 2,
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Cpu => write!(f, "CPU"),
            Component::Gpu => write!(f, "GPU"),
            Component::Copy => write!(f, "Copy"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert_eq!(AccessKind::Read.to_string(), "R");
        assert_eq!(AccessKind::Write.to_string(), "W");
    }

    #[test]
    fn requester_component_mapping() {
        assert_eq!(Requester::Cpu { core: 2 }.component(), Component::Cpu);
        assert_eq!(Requester::Gpu { sm: 15 }.component(), Component::Gpu);
        assert_eq!(Requester::CopyEngine.component(), Component::Copy);
    }

    #[test]
    fn component_indices_are_distinct_and_dense() {
        let mut seen = [false; 3];
        for c in Component::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn displays() {
        assert_eq!(Requester::Cpu { core: 0 }.to_string(), "cpu0");
        assert_eq!(Requester::Gpu { sm: 3 }.to_string(), "gpu-sm3");
        assert_eq!(Requester::CopyEngine.to_string(), "copy");
        assert_eq!(Component::Copy.to_string(), "Copy");
    }
}
