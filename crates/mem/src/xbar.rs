//! On-chip interconnect switch models.
//!
//! Table I's interconnects: the discrete system's CPU chip connects its L2s
//! and memory controllers by a 6-port switch and the GPU uses a dance-hall
//! L1-to-L2 topology with direct L2-to-MC links; the heterogeneous processor
//! connects all L2s and memory controllers through a high-bandwidth 12-port
//! switch. For stage-granularity timing the interconnect matters as (a) a
//! latency adder on cross-chip cache-to-cache transfers and (b) an aggregate
//! bandwidth ceiling that in practice exceeds DRAM bandwidth and therefore
//! rarely binds — matching the paper's observation that CPU-GPU memory
//! contention has a marginal effect compared to application-level structure.

use std::fmt;

use heteropipe_sim::Ps;

/// Topology of a switch or direct-link fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A crossbar switch with N ports.
    Switch {
        /// Port count.
        ports: u32,
    },
    /// All requesters see all banks (GPU L1-to-L2 style).
    DanceHall,
    /// Point-to-point links (GPU L2-to-MC style).
    DirectLinks {
        /// Link count.
        links: u32,
    },
}

/// An on-chip interconnect description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectConfig {
    topology: Topology,
    per_port_bytes_per_sec: f64,
    hop_latency: Ps,
}

impl InterconnectConfig {
    /// Creates an interconnect with the given topology, per-port bandwidth,
    /// and per-hop latency.
    pub fn new(topology: Topology, per_port_bytes_per_sec: f64, hop_latency: Ps) -> Self {
        assert!(per_port_bytes_per_sec > 0.0, "bandwidth must be positive");
        InterconnectConfig {
            topology,
            per_port_bytes_per_sec,
            hop_latency,
        }
    }

    /// The discrete CPU chip's 6-port switch between L2s and MCs.
    pub fn cpu_6port() -> Self {
        InterconnectConfig::new(Topology::Switch { ports: 6 }, 32.0e9, Ps::from_nanos(8))
    }

    /// The GPU's dance-hall L1/L2 fabric.
    pub fn gpu_dancehall() -> Self {
        InterconnectConfig::new(Topology::DanceHall, 64.0e9, Ps::from_nanos(6))
    }

    /// The GPU's direct L2-to-MC links.
    pub fn gpu_direct_mc() -> Self {
        InterconnectConfig::new(
            Topology::DirectLinks { links: 4 },
            64.0e9,
            Ps::from_nanos(4),
        )
    }

    /// The heterogeneous processor's high-bandwidth 12-port switch joining
    /// all L2s and MCs.
    pub fn hetero_12port() -> Self {
        InterconnectConfig::new(Topology::Switch { ports: 12 }, 64.0e9, Ps::from_nanos(10))
    }

    /// The fabric's topology.
    pub const fn topology(&self) -> Topology {
        self.topology
    }

    /// Aggregate bisection-style bandwidth: ports/2 (or links, or 8 lanes
    /// for dance-hall) times per-port bandwidth.
    pub fn aggregate_bw(&self) -> f64 {
        let lanes = match self.topology {
            Topology::Switch { ports } => (ports / 2).max(1),
            Topology::DanceHall => 8,
            Topology::DirectLinks { links } => links,
        };
        lanes as f64 * self.per_port_bytes_per_sec
    }

    /// Latency of one traversal (requester to target).
    pub const fn hop_latency(&self) -> Ps {
        self.hop_latency
    }

    /// Latency of a coherent cache-to-cache transfer (probe out and data
    /// back: two traversals).
    pub fn cache_to_cache_latency(&self) -> Ps {
        self.hop_latency * 2
    }
}

impl fmt::Display for InterconnectConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.topology {
            Topology::Switch { ports } => write!(f, "{ports}-port switch"),
            Topology::DanceHall => write!(f, "dance-hall"),
            Topology::DirectLinks { links } => write!(f, "{links} direct links"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_exist_and_are_distinct() {
        let cpu = InterconnectConfig::cpu_6port();
        let het = InterconnectConfig::hetero_12port();
        assert_eq!(cpu.topology(), Topology::Switch { ports: 6 });
        assert_eq!(het.topology(), Topology::Switch { ports: 12 });
        assert!(het.aggregate_bw() > cpu.aggregate_bw());
    }

    #[test]
    fn interconnect_exceeds_dram_bandwidth() {
        // The fabric should not be the binding resource (paper: contention
        // effects are marginal next to application-level structure).
        use crate::dram::DramConfig;
        assert!(
            InterconnectConfig::hetero_12port().aggregate_bw()
                > DramConfig::gddr5_4ch().effective_bw()
        );
        assert!(
            InterconnectConfig::cpu_6port().aggregate_bw()
                > DramConfig::ddr3_1600_2ch().effective_bw()
        );
    }

    #[test]
    fn cache_to_cache_is_round_trip() {
        let x = InterconnectConfig::hetero_12port();
        assert_eq!(x.cache_to_cache_latency(), x.hop_latency() * 2);
    }

    #[test]
    fn display_names_topology() {
        assert_eq!(InterconnectConfig::cpu_6port().to_string(), "6-port switch");
        assert_eq!(
            InterconnectConfig::gpu_dancehall().to_string(),
            "dance-hall"
        );
        assert_eq!(
            InterconnectConfig::gpu_direct_mc().to_string(),
            "4 direct links"
        );
    }
}
