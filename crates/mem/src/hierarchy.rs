//! Composed CPU-side and GPU-side cache hierarchies.
//!
//! Table I gives both systems the same cores and caches:
//!
//! * CPU side: per-core 64 KiB L1D plus an exclusive, private 256 KiB L2 per
//!   core (we model the pair as a two-level inclusive path, which preserves
//!   the per-core ~320 KiB of reach the paper's CPU enjoys).
//! * GPU side: 24 KiB L1 per SM and a GPU-shared, banked, non-inclusive
//!   1 MiB L2.
//!
//! The difference between the two systems is *connectivity*: in the
//! heterogeneous processor the CPU and GPU L2s are coherent, so a miss on one
//! side may be serviced by a cache-to-cache transfer from the other side
//! ([`ServiceLevel::Remote`]) instead of going off-chip. In the discrete
//! system the two sides never probe each other and DMA transfers
//! invalidate/flush CPU cache contents.

use crate::access::AccessKind;
use crate::addr::{AddrRange, LineAddr};
use crate::cache::{CacheConfig, CacheStats, SetAssocCache};

/// Where an access was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Hit in the requester's L1.
    L1,
    /// Hit in the requester-side L2.
    L2,
    /// Serviced by a coherent cache-to-cache transfer from the other side
    /// (heterogeneous processor only).
    Remote,
    /// Missed on chip entirely; fetched from DRAM.
    OffChip,
}

/// Outcome of one line access through a hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Service point of the requested line.
    pub level: ServiceLevel,
    /// Dirty lines this access displaced from the last-level cache, which
    /// are now in flight to DRAM (at most two: one from the victim path of
    /// an L1 eviction landing in L2, one from the fill itself).
    writebacks: [Option<LineAddr>; 2],
}

impl AccessResult {
    fn new(level: ServiceLevel) -> Self {
        AccessResult {
            level,
            writebacks: [None; 2],
        }
    }

    fn push_writeback(&mut self, line: LineAddr) {
        if self.writebacks[0].is_none() {
            self.writebacks[0] = Some(line);
        } else if self.writebacks[1].is_none() {
            self.writebacks[1] = Some(line);
        }
        // A third writeback per access is impossible with two levels.
    }

    /// Whether the access itself went off-chip.
    pub fn is_offchip_fetch(&self) -> bool {
        self.level == ServiceLevel::OffChip
    }

    /// Iterates dirty lines pushed off-chip by this access.
    pub fn offchip_writebacks(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.writebacks.iter().flatten().copied()
    }
}

/// Geometry and connectivity of one chip's (or chip pair's) caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of CPU cores, each with a private L1D + L2 (Table I: 4).
    pub cpu_cores: u8,
    /// Per-core CPU L1 data cache.
    pub cpu_l1d: CacheConfig,
    /// Per-core private CPU L2.
    pub cpu_l2: CacheConfig,
    /// Number of GPU SMs (Table I: 16).
    pub gpu_sms: u8,
    /// Per-SM GPU L1.
    pub gpu_l1: CacheConfig,
    /// GPU-shared L2.
    pub gpu_l2: CacheConfig,
    /// Whether CPU-side and GPU-side L2s service each other's misses
    /// coherently (true only for the heterogeneous processor).
    pub coherent_probes: bool,
}

impl HierarchyConfig {
    /// Table I cache parameters with discrete-GPU connectivity (no coherent
    /// probes between CPU and GPU caches).
    pub fn paper_discrete() -> Self {
        HierarchyConfig {
            cpu_cores: 4,
            cpu_l1d: CacheConfig::new(64 * 1024, 8),
            cpu_l2: CacheConfig::new(256 * 1024, 16),
            gpu_sms: 16,
            gpu_l1: CacheConfig::new(24 * 1024, 6),
            gpu_l2: CacheConfig::new(1024 * 1024, 16),
            coherent_probes: false,
        }
    }

    /// Table I cache parameters with heterogeneous-processor connectivity
    /// (coherent CPU-GPU probes via the 12-port switch).
    pub fn paper_heterogeneous() -> Self {
        HierarchyConfig {
            coherent_probes: true,
            ..Self::paper_discrete()
        }
    }
}

/// The caches of one simulated system, CPU side and GPU side together.
#[derive(Debug)]
pub struct ChipHierarchy {
    config: HierarchyConfig,
    cpu_l1: Vec<SetAssocCache>,
    cpu_l2: Vec<SetAssocCache>,
    gpu_l1: Vec<SetAssocCache>,
    gpu_l2: SetAssocCache,
    remote_hits_cpu: u64,
    remote_hits_gpu: u64,
}

impl ChipHierarchy {
    /// Creates empty caches per `config`.
    pub fn new(config: HierarchyConfig) -> Self {
        ChipHierarchy {
            config,
            cpu_l1: (0..config.cpu_cores)
                .map(|_| SetAssocCache::new(config.cpu_l1d))
                .collect(),
            cpu_l2: (0..config.cpu_cores)
                .map(|_| SetAssocCache::new(config.cpu_l2))
                .collect(),
            gpu_l1: (0..config.gpu_sms)
                .map(|_| SetAssocCache::new(config.gpu_l1))
                .collect(),
            gpu_l2: SetAssocCache::new(config.gpu_l2),
            remote_hits_cpu: 0,
            remote_hits_gpu: 0,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// One CPU load/store of a cache line from `core`.
    pub fn cpu_access(&mut self, core: u8, line: LineAddr, kind: AccessKind) -> AccessResult {
        let core = core as usize % self.cpu_l1.len();
        let l1 = self.cpu_l1[core].access(line, kind);
        if l1.hit {
            return AccessResult::new(ServiceLevel::L1);
        }
        let mut result;
        // Victim path: a dirty L1 eviction is installed in the L2.
        let mut spill = l1.writeback;
        let l2 = self.cpu_l2[core].access(line, AccessKind::Read);
        if l2.hit {
            result = AccessResult::new(ServiceLevel::L2);
        } else if self.config.coherent_probes && self.probe_gpu_side(line, kind) {
            self.remote_hits_cpu += 1;
            result = AccessResult::new(ServiceLevel::Remote);
        } else {
            result = AccessResult::new(ServiceLevel::OffChip);
        }
        if let Some(wb) = l2.writeback {
            result.push_writeback(wb);
        }
        if let Some(victim) = spill.take() {
            let vout = self.cpu_l2[core].access(victim, AccessKind::Write);
            if let Some(wb) = vout.writeback {
                result.push_writeback(wb);
            }
        }
        result
    }

    /// One GPU load/store of a cache line from `sm`.
    ///
    /// GPU L1s are write-evict (Fermi-style): stores bypass the L1 — any
    /// cached copy is invalidated — and allocate in the shared L2 only, so
    /// per-SM L1s never hold dirty data and kernel-boundary flushes are
    /// silent.
    pub fn gpu_access(&mut self, sm: u8, line: LineAddr, kind: AccessKind) -> AccessResult {
        let sm = sm as usize % self.gpu_l1.len();
        if kind.is_write() {
            self.gpu_l1[sm].invalidate(line);
            let mut result;
            let l2 = self.gpu_l2.access(line, AccessKind::Write);
            if l2.hit {
                result = AccessResult::new(ServiceLevel::L2);
            } else if self.config.coherent_probes && self.probe_cpu_side(line, kind) {
                self.remote_hits_gpu += 1;
                result = AccessResult::new(ServiceLevel::Remote);
            } else {
                result = AccessResult::new(ServiceLevel::OffChip);
            }
            if let Some(wb) = l2.writeback {
                result.push_writeback(wb);
            }
            return result;
        }
        let l1 = self.gpu_l1[sm].access(line, kind);
        if l1.hit {
            return AccessResult::new(ServiceLevel::L1);
        }
        let mut result;
        let mut spill = l1.writeback;
        let l2 = self.gpu_l2.access(line, AccessKind::Read);
        if l2.hit {
            result = AccessResult::new(ServiceLevel::L2);
        } else if self.config.coherent_probes && self.probe_cpu_side(line, kind) {
            self.remote_hits_gpu += 1;
            result = AccessResult::new(ServiceLevel::Remote);
        } else {
            result = AccessResult::new(ServiceLevel::OffChip);
        }
        if let Some(wb) = l2.writeback {
            result.push_writeback(wb);
        }
        if let Some(victim) = spill.take() {
            let vout = self.gpu_l2.access(victim, AccessKind::Write);
            if let Some(wb) = vout.writeback {
                result.push_writeback(wb);
            }
        }
        result
    }

    /// Looks for `line` anywhere on the GPU side; on a write, invalidates
    /// the remote copies (ownership transfer).
    fn probe_gpu_side(&mut self, line: LineAddr, kind: AccessKind) -> bool {
        let mut found = self.gpu_l2.contains(line);
        let mut l1_holders: Vec<usize> = Vec::new();
        for (i, l1) in self.gpu_l1.iter().enumerate() {
            if l1.contains(line) {
                found = true;
                l1_holders.push(i);
            }
        }
        if found && kind.is_write() {
            self.gpu_l2.invalidate(line);
            for i in l1_holders {
                self.gpu_l1[i].invalidate(line);
            }
        } else if found {
            // Reader gets a shared copy; the dirty owner supplies data and
            // is downgraded to clean (the data now also lives with the
            // reader, still on chip).
            self.gpu_l2.clean(line);
        }
        found
    }

    /// Looks for `line` anywhere on the CPU side; on a write, invalidates
    /// the remote copies.
    fn probe_cpu_side(&mut self, line: LineAddr, kind: AccessKind) -> bool {
        let mut found = false;
        let mut holders: Vec<(bool, usize)> = Vec::new(); // (is_l1, core)
        for (i, c) in self.cpu_l1.iter().enumerate() {
            if c.contains(line) {
                found = true;
                holders.push((true, i));
            }
        }
        for (i, c) in self.cpu_l2.iter().enumerate() {
            if c.contains(line) {
                found = true;
                holders.push((false, i));
            }
        }
        if found && kind.is_write() {
            for (is_l1, i) in holders {
                if is_l1 {
                    self.cpu_l1[i].invalidate(line);
                } else {
                    self.cpu_l2[i].invalidate(line);
                }
            }
        } else if found {
            for (is_l1, i) in holders {
                if is_l1 {
                    self.cpu_l1[i].clean(line);
                } else {
                    self.cpu_l2[i].clean(line);
                }
            }
        }
        found
    }

    /// Prepares a DMA *read* of `range` from CPU memory: dirty CPU cache
    /// lines must be flushed so the copy engine reads current data. Returns
    /// the number of dirty lines flushed (each is an off-chip writeback).
    pub fn dma_flush_cpu(&mut self, range: AddrRange) -> u64 {
        let mut flushed = 0;
        for line in range.lines() {
            for c in 0..self.cpu_l1.len() {
                if self.cpu_l1[c].is_dirty(line) {
                    self.cpu_l1[c].clean(line);
                    flushed += 1;
                }
                if self.cpu_l2[c].is_dirty(line) {
                    self.cpu_l2[c].clean(line);
                    flushed += 1;
                }
            }
        }
        flushed
    }

    /// Prepares a DMA *write* of `range` into CPU memory: cached copies are
    /// invalidated (the paper: "any coherent cache lines containing data for
    /// the destination addresses are written back or invalidated"). Returns
    /// the number of lines invalidated.
    pub fn dma_invalidate_cpu(&mut self, range: AddrRange) -> u64 {
        let mut inv = 0;
        for c in 0..self.cpu_l1.len() {
            inv += self.cpu_l1[c].invalidate_range(range).0;
            inv += self.cpu_l2[c].invalidate_range(range).0;
        }
        inv
    }

    /// Prepares a DMA *read* of `range` from GPU memory: dirty GPU L2 lines
    /// are flushed so the copy engine reads current data. Returns the number
    /// of dirty lines flushed (each is an off-chip writeback).
    pub fn dma_flush_gpu(&mut self, range: AddrRange) -> u64 {
        let mut flushed = 0;
        for line in range.lines() {
            if self.gpu_l2.is_dirty(line) {
                self.gpu_l2.clean(line);
                flushed += 1;
            }
        }
        flushed
    }

    /// Invalidates a range from the GPU-side caches (DMA into GPU memory).
    pub fn dma_invalidate_gpu(&mut self, range: AddrRange) -> u64 {
        let mut inv = 0;
        for l1 in &mut self.gpu_l1 {
            inv += l1.invalidate_range(range).0;
        }
        inv += self.gpu_l2.invalidate_range(range).0;
        inv
    }

    /// Flushes the per-SM L1s, as GPUs do at kernel boundaries (their L1s
    /// are not coherent even among SMs).
    pub fn flush_gpu_l1s(&mut self) {
        for l1 in &mut self.gpu_l1 {
            l1.flush_all();
        }
    }

    /// Aggregate statistics over all CPU L1s.
    pub fn cpu_l1_stats(&self) -> CacheStats {
        sum_stats(self.cpu_l1.iter().map(|c| c.stats()))
    }

    /// Aggregate statistics over all CPU L2s.
    pub fn cpu_l2_stats(&self) -> CacheStats {
        sum_stats(self.cpu_l2.iter().map(|c| c.stats()))
    }

    /// Aggregate statistics over all GPU L1s.
    pub fn gpu_l1_stats(&self) -> CacheStats {
        sum_stats(self.gpu_l1.iter().map(|c| c.stats()))
    }

    /// GPU shared L2 statistics.
    pub fn gpu_l2_stats(&self) -> CacheStats {
        self.gpu_l2.stats()
    }

    /// CPU misses serviced by GPU-side caches (heterogeneous only).
    pub fn remote_hits_cpu(&self) -> u64 {
        self.remote_hits_cpu
    }

    /// GPU misses serviced by CPU-side caches (heterogeneous only).
    pub fn remote_hits_gpu(&self) -> u64 {
        self.remote_hits_gpu
    }
}

fn sum_stats(iter: impl Iterator<Item = CacheStats>) -> CacheStats {
    let mut total = CacheStats::default();
    for s in iter {
        total.hits += s.hits;
        total.misses += s.misses;
        total.writebacks += s.writebacks;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn discrete() -> ChipHierarchy {
        ChipHierarchy::new(HierarchyConfig::paper_discrete())
    }

    fn hetero() -> ChipHierarchy {
        ChipHierarchy::new(HierarchyConfig::paper_heterogeneous())
    }

    #[test]
    fn paper_configs_match_table1() {
        let c = HierarchyConfig::paper_discrete();
        assert_eq!(c.cpu_cores, 4);
        assert_eq!(c.cpu_l1d.capacity_bytes(), 64 * 1024);
        assert_eq!(c.cpu_l2.capacity_bytes(), 256 * 1024);
        assert_eq!(c.gpu_sms, 16);
        assert_eq!(c.gpu_l1.capacity_bytes(), 24 * 1024);
        assert_eq!(c.gpu_l2.capacity_bytes(), 1024 * 1024);
        assert!(!c.coherent_probes);
        assert!(HierarchyConfig::paper_heterogeneous().coherent_probes);
    }

    #[test]
    fn cpu_miss_then_l1_hit() {
        let mut h = discrete();
        let r = h.cpu_access(0, LineAddr(100), AccessKind::Read);
        assert_eq!(r.level, ServiceLevel::OffChip);
        let r2 = h.cpu_access(0, LineAddr(100), AccessKind::Read);
        assert_eq!(r2.level, ServiceLevel::L1);
    }

    #[test]
    fn cpu_l2_catches_l1_capacity_misses() {
        let mut h = discrete();
        // Walk 1024 lines (128 KiB): exceeds 64 KiB L1 but fits the
        // L1+L2 reach. Second pass should hit mostly in L2.
        for i in 0..1024 {
            h.cpu_access(0, LineAddr(i), AccessKind::Read);
        }
        let mut l2_hits = 0;
        for i in 0..1024 {
            let r = h.cpu_access(0, LineAddr(i), AccessKind::Read);
            if r.level == ServiceLevel::L2 {
                l2_hits += 1;
            }
            assert_ne!(r.level, ServiceLevel::OffChip, "line {i} went off-chip");
        }
        assert!(l2_hits > 256, "expected many L2 hits, got {l2_hits}");
    }

    #[test]
    fn discrete_never_probes_remote() {
        let mut h = discrete();
        h.gpu_access(0, LineAddr(7), AccessKind::Write);
        let r = h.cpu_access(0, LineAddr(7), AccessKind::Read);
        assert_eq!(r.level, ServiceLevel::OffChip);
        assert_eq!(h.remote_hits_cpu(), 0);
    }

    #[test]
    fn hetero_cpu_read_hits_gpu_cache() {
        let mut h = hetero();
        h.gpu_access(0, LineAddr(7), AccessKind::Write);
        let r = h.cpu_access(0, LineAddr(7), AccessKind::Read);
        assert_eq!(r.level, ServiceLevel::Remote);
        assert_eq!(h.remote_hits_cpu(), 1);
    }

    #[test]
    fn hetero_write_invalidates_remote_copies() {
        let mut h = hetero();
        h.gpu_access(3, LineAddr(9), AccessKind::Read);
        let r = h.cpu_access(0, LineAddr(9), AccessKind::Write);
        assert_eq!(r.level, ServiceLevel::Remote);
        // GPU's copies are gone; its next access must go L2->remote(CPU).
        let r2 = h.gpu_access(3, LineAddr(9), AccessKind::Read);
        assert_eq!(r2.level, ServiceLevel::Remote);
        assert_eq!(h.remote_hits_gpu(), 1);
    }

    #[test]
    fn gpu_l2_shared_across_sms() {
        let mut h = discrete();
        h.gpu_access(0, LineAddr(42), AccessKind::Read);
        let r = h.gpu_access(5, LineAddr(42), AccessKind::Read);
        assert_eq!(r.level, ServiceLevel::L2);
    }

    #[test]
    fn dma_flush_reports_dirty_lines() {
        let mut h = discrete();
        h.cpu_access(0, LineAddr(0), AccessKind::Write);
        h.cpu_access(0, LineAddr(1), AccessKind::Read);
        let flushed = h.dma_flush_cpu(AddrRange::new(Addr(0), 4 * 128));
        assert_eq!(flushed, 1);
        // Still present, just clean.
        let r = h.cpu_access(0, LineAddr(0), AccessKind::Read);
        assert_eq!(r.level, ServiceLevel::L1);
    }

    #[test]
    fn dma_invalidate_evicts_cpu_lines() {
        let mut h = discrete();
        h.cpu_access(0, LineAddr(0), AccessKind::Read);
        h.cpu_access(0, LineAddr(1), AccessKind::Read);
        let inv = h.dma_invalidate_cpu(AddrRange::new(Addr(0), 2 * 128));
        assert!(inv >= 2, "at least both L1 lines invalidated, got {inv}");
        let r = h.cpu_access(0, LineAddr(0), AccessKind::Read);
        assert_eq!(r.level, ServiceLevel::OffChip);
    }

    #[test]
    fn flush_gpu_l1s_keeps_l2() {
        let mut h = discrete();
        h.gpu_access(0, LineAddr(8), AccessKind::Read);
        h.flush_gpu_l1s();
        let r = h.gpu_access(0, LineAddr(8), AccessKind::Read);
        assert_eq!(r.level, ServiceLevel::L2);
    }

    #[test]
    fn writebacks_surface_from_l2_evictions() {
        let mut h = discrete();
        // Dirty far more lines than the whole CPU path holds; off-chip
        // writebacks must appear.
        let mut wbs = 0u64;
        for i in 0..10_000 {
            let r = h.cpu_access(0, LineAddr(i), AccessKind::Write);
            wbs += r.offchip_writebacks().count() as u64;
        }
        assert!(wbs > 5_000, "expected thousands of writebacks, got {wbs}");
    }

    #[test]
    fn per_core_l2s_are_private() {
        let mut h = discrete();
        h.cpu_access(0, LineAddr(77), AccessKind::Read);
        // Same line from another core does not hit core 0's caches
        // (discrete system: no probes modeled between CPU cores' private
        // paths; sharing flows through memory).
        let r = h.cpu_access(1, LineAddr(77), AccessKind::Read);
        assert_eq!(r.level, ServiceLevel::OffChip);
    }

    #[test]
    fn stats_aggregate() {
        let mut h = discrete();
        for i in 0..100 {
            h.cpu_access(0, LineAddr(i), AccessKind::Read);
            h.gpu_access((i % 16) as u8, LineAddr(1000 + i), AccessKind::Read);
        }
        assert_eq!(h.cpu_l1_stats().accesses(), 100);
        assert_eq!(h.gpu_l1_stats().accesses(), 100);
        assert_eq!(h.gpu_l2_stats().accesses(), 100);
        assert!(h.cpu_l2_stats().accesses() >= 100);
    }
}
