//! Page table and the CPU-handled GPU page-fault model.
//!
//! In the discrete system the GPU's memory is mapped by a GPU-specific
//! allocator before kernels run, so GPU accesses never fault. In the
//! heterogeneous processor CPU and GPU share one page table; a GPU access to
//! an unmapped page raises an interrupt to the CPU, which maps the page and
//! returns — serializing would-be-parallel GPU accesses (paper §III-D and
//! the Fig. 6 discussion: a geomean ~9% GPU slowdown, concentrated in
//! benchmarks whose GPU kernels write large never-touched allocations).

use std::collections::HashSet;

use crate::addr::{AddrRange, PageAddr};

/// Result of touching a page through the page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchOutcome {
    /// The page was already mapped; no fault.
    Mapped,
    /// The page was unmapped; a fault fired and it is now mapped.
    Faulted,
}

impl TouchOutcome {
    /// Whether this touch faulted.
    pub const fn is_fault(self) -> bool {
        matches!(self, TouchOutcome::Faulted)
    }
}

/// A single-address-space page table tracking which pages are mapped.
///
/// # Examples
///
/// ```
/// use heteropipe_mem::{PageTable, AddrRange, Addr, TouchOutcome};
///
/// let mut pt = PageTable::new();
/// let buf = AddrRange::new(Addr(0), 8192);
/// assert_eq!(pt.touch(Addr(0).page()), TouchOutcome::Faulted);
/// assert_eq!(pt.touch(Addr(0).page()), TouchOutcome::Mapped);
/// pt.map_range(buf);
/// assert_eq!(pt.touch(Addr(4096).page()), TouchOutcome::Mapped);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    mapped: HashSet<u64>,
    faults: u64,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Eagerly maps every page of `range` (e.g. CPU-initialized input data,
    /// or discrete-GPU allocations mapped by the GPU allocator).
    pub fn map_range(&mut self, range: AddrRange) {
        for p in range.pages() {
            self.mapped.insert(p.0);
        }
    }

    /// Whether `page` is mapped.
    pub fn is_mapped(&self, page: PageAddr) -> bool {
        self.mapped.contains(&page.0)
    }

    /// Touches a page: maps it if unmapped and reports whether a fault
    /// fired.
    pub fn touch(&mut self, page: PageAddr) -> TouchOutcome {
        if self.mapped.insert(page.0) {
            self.faults += 1;
            TouchOutcome::Faulted
        } else {
            TouchOutcome::Mapped
        }
    }

    /// Number of faults taken so far.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Number of pages a sweep of `range` would fault on right now,
    /// without mapping them.
    pub fn unmapped_pages(&self, range: AddrRange) -> u64 {
        range
            .pages()
            .filter(|p| !self.mapped.contains(&p.0))
            .count() as u64
    }

    /// Total mapped pages.
    pub fn mapped_count(&self) -> u64 {
        self.mapped.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    #[test]
    fn first_touch_faults_once() {
        let mut pt = PageTable::new();
        let p = Addr(12345).page();
        assert!(pt.touch(p).is_fault());
        assert!(!pt.touch(p).is_fault());
        assert_eq!(pt.fault_count(), 1);
    }

    #[test]
    fn map_range_prevents_faults() {
        let mut pt = PageTable::new();
        let r = AddrRange::new(Addr(0), 16384);
        pt.map_range(r);
        assert_eq!(pt.unmapped_pages(r), 0);
        for p in r.pages() {
            assert_eq!(pt.touch(p), TouchOutcome::Mapped);
        }
        assert_eq!(pt.fault_count(), 0);
        assert_eq!(pt.mapped_count(), 4);
    }

    #[test]
    fn unmapped_pages_counts_without_mapping() {
        let mut pt = PageTable::new();
        let r = AddrRange::new(Addr(0), 16384);
        pt.touch(Addr(0).page());
        assert_eq!(pt.unmapped_pages(r), 3);
        assert_eq!(pt.unmapped_pages(r), 3); // still 3: not a mutation
        assert!(pt.is_mapped(Addr(0).page()));
        assert!(!pt.is_mapped(Addr(4096).page()));
    }
}
