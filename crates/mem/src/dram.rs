//! DRAM channel models.
//!
//! The study's bandwidth numbers (Table I): the discrete system's CPU chip
//! has 2 DDR3-1600 channels (24 GB/s peak) and its GPU chip 4 GDDR5 channels
//! (179 GB/s peak); the heterogeneous processor shares the 4 GDDR5 channels
//! between CPU and GPU cores. The paper's migrated-compute model (Eq. 3)
//! notes that achieved bandwidth "generally tops out at about 82% of peak
//! pin bandwidth" — [`DramConfig::effective_bw`] applies that efficiency.

use std::fmt;

use heteropipe_sim::Ps;

/// Parameters of one memory system (all channels aggregated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    channels: u32,
    peak_bytes_per_sec: f64,
    efficiency: f64,
    access_latency: Ps,
}

impl DramConfig {
    /// A memory system with `channels` channels totalling
    /// `peak_bytes_per_sec`, achieving `efficiency` of peak, with
    /// `access_latency` from last-level-cache miss to data return.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive or efficiency is outside
    /// `(0, 1]`.
    pub fn new(
        channels: u32,
        peak_bytes_per_sec: f64,
        efficiency: f64,
        access_latency: Ps,
    ) -> Self {
        assert!(peak_bytes_per_sec > 0.0, "peak bandwidth must be positive");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        DramConfig {
            channels,
            peak_bytes_per_sec,
            efficiency,
            access_latency,
        }
    }

    /// The discrete system's CPU memory: 2 DDR3-1600 channels, 24 GB/s peak.
    pub fn ddr3_1600_2ch() -> Self {
        DramConfig::new(2, 24.0e9, 0.82, Ps::from_nanos(60))
    }

    /// The GPU / heterogeneous-processor memory: 4 GDDR5 channels, 179 GB/s
    /// peak.
    pub fn gddr5_4ch() -> Self {
        DramConfig::new(4, 179.0e9, 0.82, Ps::from_nanos(120))
    }

    /// Channel count.
    pub const fn channels(&self) -> u32 {
        self.channels
    }

    /// Peak pin bandwidth in bytes per second.
    pub const fn peak_bw(&self) -> f64 {
        self.peak_bytes_per_sec
    }

    /// Achievable bandwidth (peak × efficiency), the capacity used for the
    /// fluid resource and for Eq. 3's `BW_mem`.
    pub fn effective_bw(&self) -> f64 {
        self.peak_bytes_per_sec * self.efficiency
    }

    /// Loaded access latency from LLC miss to first data.
    pub const fn access_latency(&self) -> Ps {
        self.access_latency
    }

    /// A copy of this config with a different peak bandwidth (for the
    /// ablation sweeps).
    pub fn with_peak_bw(mut self, peak_bytes_per_sec: f64) -> Self {
        assert!(peak_bytes_per_sec > 0.0);
        self.peak_bytes_per_sec = peak_bytes_per_sec;
        self
    }

    /// Achievable bandwidth for a requester whose off-chip stream is
    /// `sequential_fraction` row-buffer-friendly.
    ///
    /// Sequential streams keep DRAM row buffers open (~92% of pin
    /// bandwidth); random single-line accesses pay activate/precharge on
    /// most accesses (~45%). The nominal [`effective_bw`](Self::effective_bw)
    /// corresponds to the mixed traffic the paper's ~82% figure describes;
    /// this refinement is why the irregular graph benchmarks saturate
    /// "their" bandwidth earlier than the streaming ones.
    pub fn effective_bw_for(&self, sequential_fraction: f64) -> f64 {
        let seq = sequential_fraction.clamp(0.0, 1.0);
        let eff = 0.45 + (0.92 - 0.45) * seq;
        self.peak_bytes_per_sec * eff
    }
}

impl fmt::Display for DramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}ch {:.0}GB/s (eff {:.0}%)",
            self.channels,
            self.peak_bytes_per_sec / 1e9,
            self.efficiency * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets() {
        let ddr3 = DramConfig::ddr3_1600_2ch();
        assert_eq!(ddr3.channels(), 2);
        assert_eq!(ddr3.peak_bw(), 24.0e9);
        assert!((ddr3.effective_bw() - 24.0e9 * 0.82).abs() < 1.0);

        let gddr5 = DramConfig::gddr5_4ch();
        assert_eq!(gddr5.channels(), 4);
        assert_eq!(gddr5.peak_bw(), 179.0e9);
        assert!(gddr5.access_latency() > ddr3.access_latency());
    }

    #[test]
    fn with_peak_bw_rescales() {
        let cfg = DramConfig::gddr5_4ch().with_peak_bw(90.0e9);
        assert_eq!(cfg.peak_bw(), 90.0e9);
        assert!((cfg.effective_bw() - 90.0e9 * 0.82).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_bad_efficiency() {
        let _ = DramConfig::new(1, 1.0e9, 1.5, Ps::from_nanos(50));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(DramConfig::gddr5_4ch().to_string(), "4ch 179GB/s (eff 82%)");
    }
}
