//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the workspace — irregular graph structure,
//! gather/scatter index streams, worklist expansion — flows from explicitly
//! seeded [`SplitMix64`] generators, so every experiment is bit-for-bit
//! reproducible. SplitMix64 is tiny, fast, passes BigCrush, and (unlike
//! pulling `rand::thread_rng`) cannot be accidentally seeded from the
//! environment.

/// A SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use heteropipe_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for practical purposes.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives a child generator, useful for giving each benchmark or stage
    /// its own stream from one root seed.
    pub fn fork(&mut self, tag: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound` is 0.
    ///
    /// Uses the widening-multiply technique; the modulo bias is below
    /// 2^-32 for the bounds used in this workspace and irrelevant for
    /// workload synthesis.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// A geometric-ish skewed draw in `[0, bound)` favouring small values,
    /// used for power-law-like graph degree and reuse patterns.
    pub fn skewed_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let u = self.unit_f64();
        // Square the uniform variate: density ~ 1/(2*sqrt(x)), biased low.
        ((u * u) * bound as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_gives_distinct_streams() {
        let mut root = SplitMix64::new(99);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn unit_f64_in_range_and_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn skewed_below_biases_low() {
        let mut r = SplitMix64::new(13);
        let n = 50_000;
        let bound = 1000;
        let low = (0..n).filter(|_| r.skewed_below(bound) < bound / 4).count();
        // P(value < bound/4) = P(u^2 < 1/4) = P(u < 1/2) = 0.5.
        assert!(
            low as f64 / n as f64 > 0.45,
            "low fraction {}",
            low as f64 / n as f64
        );
    }
}
