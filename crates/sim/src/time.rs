//! Simulated time.
//!
//! All component models in the workspace agree on a single global clock
//! measured in integer picoseconds. Picoseconds are fine enough to represent
//! single cycles of the fastest clock in the study (3.5 GHz CPU cores have a
//! 285.714… ps period, which we round per-conversion, never accumulating
//! error across conversions), while `u64` picoseconds can still represent
//! over 200 days of simulated time — far beyond the paper's longest 1.535 s
//! region of interest.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a span of it, in integer picoseconds.
///
/// `Ps` is used both as an instant (time since simulation start) and as a
/// duration; the arithmetic is identical and the study never needs calendar
/// time.
///
/// # Examples
///
/// ```
/// use heteropipe_sim::Ps;
///
/// let launch = Ps::from_micros(25);
/// let kernel = Ps::from_millis(3);
/// assert_eq!((launch + kernel).as_secs_f64(), 0.003025);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ps(u64);

impl Ps {
    /// The zero instant (simulation start) / the empty duration.
    pub const ZERO: Ps = Ps(0);
    /// The maximum representable time; used as an "infinitely far" sentinel.
    pub const MAX: Ps = Ps(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        Ps(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Ps(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Ps(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Ps(ms * 1_000_000_000)
    }

    /// Creates a time from a floating-point second count, rounding to the
    /// nearest picosecond. Negative and non-finite inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return Ps::ZERO;
        }
        let ps = (secs * 1e12).round();
        if ps >= u64::MAX as f64 {
            Ps::MAX
        } else {
            Ps(ps as u64)
        }
    }

    /// Raw picosecond count.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// This time as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// This time as floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// This time as floating-point microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Subtraction clamped at zero, for "how much later is `self` than
    /// `earlier`" when the ordering is not statically known.
    pub fn saturating_sub(self, earlier: Ps) -> Ps {
        Ps(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: Ps) -> Ps {
        Ps(self.0.max(other.0))
    }

    /// The earlier of two times.
    pub fn min(self, other: Ps) -> Ps {
        Ps(self.0.min(other.0))
    }

    /// Fraction `self / whole` as `f64`; zero when `whole` is zero.
    pub fn fraction_of(self, whole: Ps) -> f64 {
        if whole.0 == 0 {
            0.0
        } else {
            self.0 as f64 / whole.0 as f64
        }
    }
}

impl Add for Ps {
    type Output = Ps;
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign for Ps {
    fn add_assign(&mut self, rhs: Ps) {
        *self = *self + rhs;
    }
}

impl Sub for Ps {
    type Output = Ps;
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self
            .0
            .checked_sub(rhs.0)
            .expect("simulated time underflow: rhs is later than self"))
    }
}

impl SubAssign for Ps {
    fn sub_assign(&mut self, rhs: Ps) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Ps {
    type Output = Ps;
    fn mul(self, rhs: u64) -> Ps {
        Ps(self.0.checked_mul(rhs).expect("simulated time overflow"))
    }
}

impl Div<u64> for Ps {
    type Output = Ps;
    fn div(self, rhs: u64) -> Ps {
        Ps(self.0 / rhs)
    }
}

impl Sum for Ps {
    fn sum<I: Iterator<Item = Ps>>(iter: I) -> Ps {
        iter.fold(Ps::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.2}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.2}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.4}s", ps as f64 / 1e12)
        }
    }
}

/// A fixed-frequency clock domain.
///
/// Converts between cycle counts of a component (CPU cores at 3.5 GHz, GPU
/// SMs at 700 MHz in the paper's Table I) and global [`Ps`] time.
///
/// # Examples
///
/// ```
/// use heteropipe_sim::ClockDomain;
///
/// let cpu = ClockDomain::from_ghz(3.5);
/// assert_eq!(cpu.cycles_to_time(7).as_picos(), 2000);
/// assert_eq!(cpu.time_to_cycles(cpu.cycles_to_time(1_000_000)), 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    freq_hz: f64,
}

impl ClockDomain {
    /// Creates a clock domain from a frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not strictly positive and finite.
    pub fn new(freq_hz: f64) -> Self {
        assert!(
            freq_hz.is_finite() && freq_hz > 0.0,
            "clock frequency must be positive, got {freq_hz}"
        );
        ClockDomain { freq_hz }
    }

    /// Creates a clock domain from a frequency in gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        ClockDomain::new(ghz * 1e9)
    }

    /// Creates a clock domain from a frequency in megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        ClockDomain::new(mhz * 1e6)
    }

    /// The frequency in hertz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// The period of one cycle.
    pub fn period(&self) -> Ps {
        Ps::from_secs_f64(1.0 / self.freq_hz)
    }

    /// Converts a cycle count to time, rounding to the nearest picosecond.
    pub fn cycles_to_time(&self, cycles: u64) -> Ps {
        Ps::from_secs_f64(cycles as f64 / self.freq_hz)
    }

    /// Converts a fractional cycle count to time.
    pub fn cycles_f64_to_time(&self, cycles: f64) -> Ps {
        Ps::from_secs_f64(cycles / self.freq_hz)
    }

    /// Converts a time to a whole cycle count (rounded to nearest).
    pub fn time_to_cycles(&self, t: Ps) -> u64 {
        (t.as_secs_f64() * self.freq_hz).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Ps::from_nanos(1), Ps::from_picos(1_000));
        assert_eq!(Ps::from_micros(1), Ps::from_nanos(1_000));
        assert_eq!(Ps::from_millis(1), Ps::from_micros(1_000));
        assert_eq!(Ps::from_secs_f64(1.0), Ps::from_millis(1_000));
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(Ps::from_secs_f64(-1.0), Ps::ZERO);
        assert_eq!(Ps::from_secs_f64(f64::NAN), Ps::ZERO);
        assert_eq!(Ps::from_secs_f64(f64::INFINITY), Ps::MAX);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Ps::from_micros(5);
        let b = Ps::from_nanos(250);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 4) / 4, a);
        assert_eq!(a.saturating_sub(Ps::from_millis(1)), Ps::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Ps::from_nanos(1) - Ps::from_nanos(2);
    }

    #[test]
    fn fraction_of_handles_zero() {
        assert_eq!(Ps::from_nanos(10).fraction_of(Ps::ZERO), 0.0);
        assert!((Ps::from_nanos(25).fraction_of(Ps::from_nanos(100)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(Ps::ZERO.to_string(), "0s");
        assert_eq!(Ps::from_picos(512).to_string(), "512ps");
        assert_eq!(Ps::from_nanos(1).to_string(), "1.00ns");
        assert_eq!(Ps::from_micros(3).to_string(), "3.00us");
        assert_eq!(Ps::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Ps::from_secs_f64(1.5).to_string(), "1.5000s");
    }

    #[test]
    fn clock_domain_conversions() {
        let gpu = ClockDomain::from_mhz(700.0);
        // One 700 MHz cycle is ~1428.57 ps, rounded to the nearest ps.
        assert_eq!(gpu.cycles_to_time(1).as_picos(), 1429);
        // Large counts do not accumulate per-cycle rounding error.
        assert_eq!(
            gpu.cycles_to_time(7_000_000).as_picos(),
            10_000_000_000_000 / 1_000
        );
        assert_eq!(gpu.time_to_cycles(Ps::from_millis(1)), 700_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn clock_domain_rejects_zero() {
        let _ = ClockDomain::new(0.0);
    }

    #[test]
    fn sum_of_times() {
        let total: Ps = [Ps::from_nanos(1), Ps::from_nanos(2), Ps::from_nanos(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Ps::from_nanos(6));
    }
}
