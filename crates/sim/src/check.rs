//! Minimal in-tree randomized property-check helpers.
//!
//! A tiny, dependency-free replacement for the slice of `proptest` this
//! workspace used: run a property over `N` generated cases, each driven by
//! a [`SplitMix64`] stream derived from one fixed seed, so failures are
//! perfectly reproducible (DESIGN.md §7 — determinism is load-bearing).
//! There is no shrinking; on failure the helper reports the case index and
//! derived seed, which is enough to replay the exact inputs under a
//! debugger.
//!
//! # Example
//!
//! ```
//! use heteropipe_sim::check;
//!
//! check::cases(32, 0xC0FFEE, |g| {
//!     let a = g.u64(0, 1000);
//!     let b = g.u64(0, 1000);
//!     assert!(a + b >= a);
//! });
//! ```

use crate::rng::SplitMix64;

/// A per-case input generator over one deterministic random stream.
#[derive(Debug)]
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// Uniform `u64` in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range [{lo}, {hi})");
        lo + self.rng.below(hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.unit_f64() * (hi - lo)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.chance(0.5)
    }

    /// `n` uniform bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.u64(0, 256) as u8).collect()
    }

    /// A vector whose length is uniform in `[min_len, max_len)` and whose
    /// elements come from `f`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize(min_len, max_len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Runs `property` over `n` generated cases derived from `seed`.
///
/// Each case gets an independent [`Gen`]; assertion panics inside the
/// property are re-raised after reporting which case failed.
pub fn cases(n: u64, seed: u64, mut property: impl FnMut(&mut Gen)) {
    for i in 0..n {
        // Derive per-case seeds through the same mixer the rest of the
        // workspace uses, so case 0 is not simply `seed`.
        let case_seed = SplitMix64::new(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = Gen::new(case_seed);
            property(&mut g);
        }));
        if let Err(panic) = result {
            eprintln!("property failed at case {i}/{n} (derived seed {case_seed:#x}, root seed {seed:#x})");
            std::panic::resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = Gen::new(9);
        let mut b = Gen::new(9);
        for _ in 0..50 {
            assert_eq!(a.u64(0, 1_000_000), b.u64(0, 1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        cases(100, 1, |g| {
            let v = g.u64(10, 20);
            assert!((10..20).contains(&v));
            let f = g.f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let bytes = g.bytes(16);
            assert_eq!(bytes.len(), 16);
            let v = g.vec(2, 5, |g| g.u32(0, 3));
            assert!((2..5).contains(&v.len()));
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        cases(10, 2, |g| {
            if g.u64(0, 4) == 0 {
                panic!("boom");
            }
        });
    }
}
