//! Deterministic event queue.
//!
//! A bucketed *calendar queue* (a flat timer wheel) that orders events by
//! time and breaks ties by insertion order, so that two events scheduled
//! for the same picosecond always fire in the order they were scheduled.
//! Determinism of event delivery is what makes every experiment in this
//! workspace exactly reproducible run to run.
//!
//! Near-future events land in one of [`NBUCKETS`] fixed-width time buckets
//! covering a sliding horizon from the wheel's current position; popping
//! scans only the one bucket the clock is in, so the common
//! schedule-soon/pop-soon traffic of a discrete-event simulation costs
//! O(bucket occupancy) instead of the binary heap's O(log n) sift per
//! operation. Events past the horizon fall back to a binary heap exactly
//! like the previous implementation and migrate into the wheel as the
//! clock approaches them; when the far-future population outgrows the
//! wheel the queue re-centers and re-widths itself around the pending
//! events. The pop sequence is bit-for-bit the heap's `(time, seq)` total
//! order — a property test below drives both against random streams.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Ps;

/// Number of buckets in the wheel (power of two; index masks cheaply).
const NBUCKETS: usize = 256;

/// Initial bucket width, picoseconds (power of two). The wheel re-widths
/// itself when the pending events do not fit the horizon.
const INITIAL_WIDTH: u64 = 1 << 10;

/// A time-ordered, FIFO-stable event queue.
///
/// # Examples
///
/// ```
/// use heteropipe_sim::{EventQueue, Ps};
///
/// let mut q = EventQueue::new();
/// q.schedule(Ps::from_nanos(5), "late");
/// q.schedule(Ps::from_nanos(1), "early");
/// q.schedule(Ps::from_nanos(5), "late-but-second");
/// assert_eq!(q.pop(), Some((Ps::from_nanos(1), "early")));
/// assert_eq!(q.pop(), Some((Ps::from_nanos(5), "late")));
/// assert_eq!(q.pop(), Some((Ps::from_nanos(5), "late-but-second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The wheel: bucket `(cursor + k) % NBUCKETS` holds events with
    /// `at` in `[base + k*width, base + (k+1)*width)` for `k < NBUCKETS`.
    /// Entries inside a bucket are unordered; pop scans for the minimum.
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket the wheel's clock is in.
    cursor: usize,
    /// Picosecond start of the cursor bucket (always `width`-aligned).
    base: u64,
    /// Picoseconds per bucket (power of two).
    width: u64,
    /// Events currently in the wheel (not counting `overflow`).
    in_wheel: usize,
    /// Far-future fallback: events at or past the wheel's horizon, kept
    /// in the same `(time, seq)`-ordered heap the queue once was.
    overflow: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Ps,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: std::iter::repeat_with(Vec::new).take(NBUCKETS).collect(),
            cursor: 0,
            base: 0,
            width: INITIAL_WIDTH,
            in_wheel: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Picosecond start of the first bucket past the wheel's horizon.
    fn horizon(&self) -> u64 {
        self.base.saturating_add(self.width * NBUCKETS as u64)
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Ps, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.insert(Entry { at, seq, event });
    }

    fn insert(&mut self, entry: Entry<E>) {
        let t = entry.at.as_picos();
        if t >= self.horizon() {
            self.overflow.push(entry);
            if self.overflow.len() > 4 * (self.in_wheel + 16) {
                // The horizon is too tight for the pending population:
                // rebuild the wheel around what is actually queued.
                self.rebuild();
            }
            return;
        }
        // Events at or before the wheel's clock (a schedule-in-the-past,
        // legal for this queue) join the cursor bucket, which pop always
        // scans first.
        let k = (t.saturating_sub(self.base) / self.width) as usize;
        let idx = (self.cursor + k) % NBUCKETS;
        self.buckets[idx].push(entry);
        self.in_wheel += 1;
    }

    /// Re-centers the wheel at the earliest pending event and re-widths
    /// the buckets so the whole population fits the horizon, then
    /// redistributes every event. Amortized: triggered only when the
    /// overflow heap outgrows the wheel by 4x.
    fn rebuild(&mut self) {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len());
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        entries.extend(std::mem::take(&mut self.overflow));
        self.in_wheel = 0;
        self.cursor = 0;
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for e in &entries {
            lo = lo.min(e.at.as_picos());
            hi = hi.max(e.at.as_picos());
        }
        if entries.is_empty() {
            lo = 0;
            hi = 0;
        }
        let span = hi - lo;
        let mut width = INITIAL_WIDTH;
        while width * (NBUCKETS as u64 - 1) < span && width < (1 << 62) {
            width <<= 1;
        }
        self.width = width;
        self.base = lo - lo % width;
        for e in entries {
            self.insert(e);
        }
    }

    /// Advances cursor/base to the next non-empty bucket (or jumps the
    /// wheel to the overflow population when the wheel drains), migrating
    /// overflow events that come inside the horizon. No-op when the
    /// cursor bucket is already occupied or the queue is empty.
    fn advance(&mut self) {
        if !self.buckets[self.cursor].is_empty() {
            return;
        }
        if self.in_wheel > 0 {
            while self.buckets[self.cursor].is_empty() {
                self.cursor = (self.cursor + 1) % NBUCKETS;
                self.base = self.base.saturating_add(self.width);
                self.migrate();
            }
            return;
        }
        if self.overflow.is_empty() {
            return;
        }
        // Wheel empty, overflow not: jump the clock to the earliest
        // far-future event instead of stepping bucket by bucket.
        let earliest = self.overflow.peek().expect("checked non-empty").at;
        let t = earliest.as_picos();
        self.base = t - t % self.width;
        self.migrate();
        debug_assert!(self.in_wheel > 0);
    }

    /// Pulls overflow events that now fall inside the horizon into the
    /// wheel.
    fn migrate(&mut self) {
        let horizon = self.horizon();
        while let Some(top) = self.overflow.peek() {
            if top.at.as_picos() >= horizon {
                break;
            }
            let entry = self.overflow.pop().expect("peeked");
            let k = (entry.at.as_picos().saturating_sub(self.base) / self.width) as usize;
            let idx = (self.cursor + k) % NBUCKETS;
            self.buckets[idx].push(entry);
            self.in_wheel += 1;
        }
    }

    /// Index of the earliest `(time, seq)` entry in the cursor bucket.
    fn min_in_cursor(&self) -> Option<usize> {
        let bucket = &self.buckets[self.cursor];
        let mut best: Option<usize> = None;
        for (i, e) in bucket.iter().enumerate() {
            match best {
                None => best = Some(i),
                Some(b) => {
                    if (e.at, e.seq) < (bucket[b].at, bucket[b].seq) {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&mut self) -> Option<Ps> {
        self.advance();
        self.min_in_cursor()
            .map(|i| self.buckets[self.cursor][i].at)
    }

    /// Removes and returns the next `(time, event)` pair.
    pub fn pop(&mut self) -> Option<(Ps, E)> {
        self.advance();
        let i = self.min_in_cursor()?;
        let entry = self.buckets[self.cursor].swap_remove(i);
        self.in_wheel -= 1;
        Some((entry.at, entry.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_wheel + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.in_wheel = 0;
        self.overflow.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(Ps, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (Ps, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.schedule(at, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Ps::from_nanos(3), 3u32);
        q.schedule(Ps::from_nanos(1), 1u32);
        q.schedule(Ps::from_nanos(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(Ps::from_nanos(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Ps::from_nanos(9), ());
        assert_eq!(q.peek_time(), Some(Ps::from_nanos(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn extend_schedules_all() {
        let mut q = EventQueue::new();
        q.extend([(Ps::from_nanos(2), 'b'), (Ps::from_nanos(1), 'a')]);
        assert_eq!(q.pop().map(|(_, e)| e), Some('a'));
        assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
    }

    #[test]
    fn pops_are_monotonically_nondecreasing() {
        crate::check::cases(64, 0x0EEE, |g| {
            let times = g.vec(1, 200, |g| g.u64(0, 1_000_000));
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(Ps::from_picos(*t), i);
            }
            let mut last = Ps::ZERO;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
            }
        });
    }

    /// The reference semantics: the binary-heap queue this implementation
    /// replaced, kept as a test oracle.
    struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        seq: u64,
    }

    impl<E> HeapQueue<E> {
        fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }

        fn schedule(&mut self, at: Ps, event: E) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry { at, seq, event });
        }

        fn pop(&mut self) -> Option<(Ps, E)> {
            self.heap.pop().map(|e| (e.at, e.event))
        }
    }

    /// The calendar queue's pop sequence is bit-identical to the heap's
    /// `(time, seq)` order under random interleavings of schedules and
    /// pops — including bursts of same-timestamp ties, far-future spikes
    /// (exercising the overflow heap and wheel rebuilds), and
    /// schedule-after-pop patterns that move the wheel's clock.
    #[test]
    fn matches_heap_order_under_random_streams() {
        crate::check::cases(128, 0xCA1E_17DA, |g| {
            let mut wheel = EventQueue::new();
            let mut heap = HeapQueue::new();
            let ops = g.usize(1, 400);
            let mut id = 0u64;
            for _ in 0..ops {
                if g.bool() || wheel.is_empty() {
                    // Burst of schedules: same-timestamp ties are common
                    // (narrow ranges), spikes occasionally land far out.
                    let burst = g.usize(1, 8);
                    for _ in 0..burst {
                        let t = match g.u64(0, 10) {
                            0..=5 => g.u64(0, 10_000),         // dense near past/now
                            6..=8 => g.u64(0, 2_000_000),      // mid horizon
                            _ => g.u64(0, 40_000_000_000_000), // far future
                        };
                        wheel.schedule(Ps::from_picos(t), id);
                        heap.schedule(Ps::from_picos(t), id);
                        id += 1;
                    }
                } else {
                    let (wt, we) = wheel.pop().expect("non-empty");
                    let (ht, he) = heap.pop().expect("mirrored");
                    assert_eq!((wt, we), (ht, he));
                }
            }
            assert_eq!(wheel.peek_time(), heap.heap.peek().map(|e| e.at));
            loop {
                match (wheel.pop(), heap.pop()) {
                    (None, None) => break,
                    (w, h) => assert_eq!(w, h),
                }
            }
        });
    }

    /// Exact-tie bursts at a single timestamp drain in scheduling order
    /// even when they straddle a wheel rebuild.
    #[test]
    fn ties_survive_rebuilds() {
        let mut q = EventQueue::new();
        for i in 0..50u32 {
            q.schedule(Ps::from_millis(3), i);
        }
        // Far-future spike forces the overflow heap into play.
        for i in 50..300u32 {
            q.schedule(Ps::from_millis(3), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..300).collect::<Vec<_>>());
    }
}
