//! Deterministic event queue.
//!
//! A thin wrapper over a binary heap that orders events by time and breaks
//! ties by insertion order, so that two events scheduled for the same
//! picosecond always fire in the order they were scheduled. Determinism of
//! event delivery is what makes every experiment in this workspace exactly
//! reproducible run to run.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Ps;

/// A time-ordered, FIFO-stable event queue.
///
/// # Examples
///
/// ```
/// use heteropipe_sim::{EventQueue, Ps};
///
/// let mut q = EventQueue::new();
/// q.schedule(Ps::from_nanos(5), "late");
/// q.schedule(Ps::from_nanos(1), "early");
/// q.schedule(Ps::from_nanos(5), "late-but-second");
/// assert_eq!(q.pop(), Some((Ps::from_nanos(1), "early")));
/// assert_eq!(q.pop(), Some((Ps::from_nanos(5), "late")));
/// assert_eq!(q.pop(), Some((Ps::from_nanos(5), "late-but-second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Ps,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Ps, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Ps> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the next `(time, event)` pair.
    pub fn pop(&mut self) -> Option<(Ps, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(Ps, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (Ps, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.schedule(at, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Ps::from_nanos(3), 3u32);
        q.schedule(Ps::from_nanos(1), 1u32);
        q.schedule(Ps::from_nanos(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(Ps::from_nanos(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Ps::from_nanos(9), ());
        assert_eq!(q.peek_time(), Some(Ps::from_nanos(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn extend_schedules_all() {
        let mut q = EventQueue::new();
        q.extend([(Ps::from_nanos(2), 'b'), (Ps::from_nanos(1), 'a')]);
        assert_eq!(q.pop().map(|(_, e)| e), Some('a'));
        assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
    }

    #[test]
    fn pops_are_monotonically_nondecreasing() {
        crate::check::cases(64, 0x0EEE, |g| {
            let times = g.vec(1, 200, |g| g.u64(0, 1_000_000));
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(Ps::from_picos(*t), i);
            }
            let mut last = Ps::ZERO;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
            }
        });
    }
}
