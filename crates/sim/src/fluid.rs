//! Max-min-fair fluid bandwidth network.
//!
//! The `heteropipe` study models memory-system contention at *task*
//! granularity rather than per-request: each executing pipeline stage drains
//! a known number of off-chip bytes through one or more shared bandwidth
//! resources (a PCIe 2.0 link, a DDR3 or GDDR5 memory system, an on-chip
//! switch). While several stages execute concurrently — asynchronous copy
//! streams overlapping GPU kernels, or chunked producer-consumer stages on a
//! heterogeneous processor — they share each resource max-min fairly.
//!
//! [`FluidNet`] implements the classic *progressive filling* algorithm: all
//! active flows increase their rate together until either a flow reaches its
//! own rate cap (a stage that is compute- or latency-bound cannot consume
//! bandwidth faster than it executes) or a resource saturates (freezing every
//! flow crossing it). Between rate recomputations flow progress is linear, so
//! completions can be scheduled exactly — this is a fluid approximation of
//! packet-level fair queueing that is deterministic and costs O(flows ×
//! resources) per flow arrival or departure.

use std::fmt;

use crate::time::Ps;

/// Identifies a bandwidth resource registered with a [`FluidNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(usize);

/// Identifies an active flow within a [`FluidNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

/// Description of a flow to start: how many bytes to move, an optional rate
/// cap, and which resources it crosses.
///
/// # Examples
///
/// ```
/// use heteropipe_sim::fluid::FlowSpec;
///
/// // 1 MiB that can drain at most 2 GB/s regardless of link headroom.
/// let spec = FlowSpec::new(1048576.0).rate_cap(2.0e9);
/// assert_eq!(spec.bytes(), 1048576.0);
/// ```
#[derive(Debug, Clone)]
pub struct FlowSpec {
    bytes: f64,
    max_rate: f64,
    resources: Vec<ResourceId>,
}

impl FlowSpec {
    /// A flow moving `bytes` bytes, initially uncapped and crossing no
    /// resource (it would complete instantly; add constraints with
    /// [`over`](Self::over), [`rate_cap`](Self::rate_cap), or
    /// [`min_duration`](Self::min_duration)).
    pub fn new(bytes: f64) -> Self {
        assert!(bytes.is_finite() && bytes >= 0.0, "flow bytes must be >= 0");
        FlowSpec {
            bytes,
            max_rate: f64::INFINITY,
            resources: Vec::new(),
        }
    }

    /// A flow that is a pure delay of `d` with no bandwidth demand.
    pub fn delay(d: Ps) -> Self {
        FlowSpec::new(0.0).min_duration(d)
    }

    /// Adds a resource this flow must cross.
    pub fn over(mut self, r: ResourceId) -> Self {
        self.resources.push(r);
        self
    }

    /// Caps the flow's service rate (bytes per second), e.g. because the
    /// issuing component is compute-bound and cannot demand bandwidth faster.
    pub fn rate_cap(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "rate cap must be positive");
        self.max_rate = self.max_rate.min(bytes_per_sec);
        self
    }

    /// Forces the flow to take at least `d` even under zero contention, by
    /// capping its rate at `bytes / d`. A zero-byte flow becomes a pure
    /// delay.
    pub fn min_duration(mut self, d: Ps) -> Self {
        let secs = d.as_secs_f64();
        if secs <= 0.0 {
            return self;
        }
        if self.bytes == 0.0 {
            // Represent a pure delay as one synthetic byte at the matching
            // rate; it crosses no resources so it never contends.
            self.bytes = 1.0;
            self.max_rate = self.max_rate.min(1.0 / secs);
        } else {
            self.max_rate = self.max_rate.min(self.bytes / secs);
        }
        self
    }

    /// The byte count this spec will move.
    pub fn bytes(&self) -> f64 {
        self.bytes
    }
}

#[derive(Debug, Clone)]
struct Resource {
    name: String,
    capacity: f64,
    served_bytes: f64,
}

#[derive(Debug, Clone)]
struct Flow {
    id: FlowId,
    remaining: f64,
    max_rate: f64,
    resources: Vec<ResourceId>,
    rate: f64,
}

/// A set of bandwidth resources and the flows currently sharing them.
///
/// Time never advances implicitly: callers drive the clock by asking for the
/// [`next_completion`](Self::next_completion) and then
/// [`retire`](Self::retire)-ing the finished flow, or by
/// [`start_flow`](Self::start_flow)-ing new work at a given instant. All
/// instants passed in must be monotonically non-decreasing.
#[derive(Debug, Clone)]
pub struct FluidNet {
    now: Ps,
    resources: Vec<Resource>,
    flows: Vec<Flow>,
    next_flow: u64,
}

impl FluidNet {
    /// Creates an empty network at time zero.
    pub fn new() -> Self {
        FluidNet {
            now: Ps::ZERO,
            resources: Vec::new(),
            flows: Vec::new(),
            next_flow: 0,
        }
    }

    /// Registers a bandwidth resource with `capacity` bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn add_resource(&mut self, name: &str, capacity: f64) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive, got {capacity}"
        );
        self.resources.push(Resource {
            name: name.to_owned(),
            capacity,
            served_bytes: 0.0,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Current simulated time of the network.
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes served by a resource so far (for utilization reporting).
    pub fn served_bytes(&self, r: ResourceId) -> f64 {
        self.resources[r.0].served_bytes
    }

    /// The registered name of a resource.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.0].name
    }

    /// Starts a flow at time `at` (advancing the network there first) and
    /// returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the network's current time or if the
    /// spec names a resource from a different network.
    pub fn start_flow(&mut self, at: Ps, spec: FlowSpec) -> FlowId {
        self.advance_to(at);
        for r in &spec.resources {
            assert!(r.0 < self.resources.len(), "unknown resource {r:?}");
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.push(Flow {
            id,
            remaining: spec.bytes,
            max_rate: spec.max_rate,
            resources: spec.resources,
            rate: 0.0,
        });
        self.recompute_rates();
        id
    }

    /// Earliest `(time, flow)` completion among active flows, if any.
    ///
    /// Ties are broken by flow start order, keeping the simulation
    /// deterministic.
    pub fn next_completion(&self) -> Option<(Ps, FlowId)> {
        let mut best: Option<(Ps, FlowId)> = None;
        for f in &self.flows {
            let t = self.completion_time(f);
            match best {
                None => best = Some((t, f.id)),
                Some((bt, bid)) => {
                    if t < bt || (t == bt && f.id < bid) {
                        best = Some((t, f.id));
                    }
                }
            }
        }
        best
    }

    /// Retires flow `id` at time `at`, which must be at or after the time
    /// reported by [`next_completion`](Self::next_completion) for it.
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown or has not finished by `at`.
    pub fn retire(&mut self, at: Ps, id: FlowId) {
        self.advance_to(at);
        let idx = self
            .flows
            .iter()
            .position(|f| f.id == id)
            .unwrap_or_else(|| panic!("retire of unknown flow {id:?}"));
        // Tolerance: linear advance in f64 can leave a sliver of a byte.
        let leftover = self.flows[idx].remaining;
        assert!(
            leftover <= 1.0,
            "flow {id:?} retired with {leftover} bytes remaining at {at}"
        );
        self.flows.swap_remove(idx);
        self.recompute_rates();
    }

    fn completion_time(&self, f: &Flow) -> Ps {
        if f.remaining <= f64::EPSILON {
            return self.now;
        }
        if f.rate <= 0.0 {
            return Ps::MAX;
        }
        // Round up by one picosecond so that by the reported time the flow
        // has fully drained despite f64 rounding.
        self.now + Ps::from_secs_f64(f.remaining / f.rate) + Ps::from_picos(1)
    }

    fn advance_to(&mut self, t: Ps) {
        assert!(t >= self.now, "time moved backwards: {t} < {}", self.now);
        let dt = (t - self.now).as_secs_f64();
        if dt > 0.0 {
            for f in &mut self.flows {
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
                for r in &f.resources {
                    self.resources[r.0].served_bytes += moved;
                }
            }
        }
        self.now = t;
    }

    /// Progressive-filling max-min fair rate allocation.
    fn recompute_rates(&mut self) {
        let nr = self.resources.len();
        let mut cap_left: Vec<f64> = self.resources.iter().map(|r| r.capacity).collect();
        let mut frozen: Vec<bool> = self.flows.iter().map(|f| f.remaining <= 0.0).collect();
        for f in &mut self.flows {
            f.rate = 0.0;
        }
        loop {
            // Count unfrozen flows per resource.
            let mut users = vec![0usize; nr];
            let mut any = false;
            for (f, &fr) in self.flows.iter().zip(&frozen) {
                if fr {
                    continue;
                }
                any = true;
                for r in &f.resources {
                    users[r.0] += 1;
                }
            }
            if !any {
                break;
            }
            // Largest equal increment every unfrozen flow can take.
            let mut delta = f64::INFINITY;
            for (i, &u) in users.iter().enumerate() {
                if u > 0 {
                    delta = delta.min(cap_left[i] / u as f64);
                }
            }
            for (f, &fr) in self.flows.iter().zip(&frozen) {
                if !fr {
                    delta = delta.min(f.max_rate - f.rate);
                }
            }
            if !delta.is_finite() {
                // Flows with no resources and no rate cap: complete
                // instantly. Mark them served.
                for (f, fr) in self.flows.iter_mut().zip(frozen.iter_mut()) {
                    if !*fr && f.resources.is_empty() && f.max_rate.is_infinite() {
                        f.remaining = 0.0;
                        *fr = true;
                    }
                }
                continue;
            }
            // Apply the increment and freeze whatever became binding.
            let mut saturated = vec![false; nr];
            for (i, &u) in users.iter().enumerate() {
                if u > 0 {
                    cap_left[i] -= delta * u as f64;
                    if cap_left[i] <= self.resources[i].capacity * 1e-12 {
                        cap_left[i] = 0.0;
                        saturated[i] = true;
                    }
                }
            }
            let mut progressed = false;
            for (f, fr) in self.flows.iter_mut().zip(frozen.iter_mut()) {
                if *fr {
                    continue;
                }
                f.rate += delta;
                if delta > 0.0 {
                    progressed = true;
                }
                let rate_bound = f.rate >= f.max_rate * (1.0 - 1e-12);
                let res_bound = f.resources.iter().any(|r| saturated[r.0]);
                if rate_bound || res_bound {
                    *fr = true;
                }
            }
            if !progressed {
                // Defensive: zero increment with nothing newly frozen would
                // loop forever; freeze everything remaining.
                for fr in frozen.iter_mut() {
                    *fr = true;
                }
            }
        }
    }
}

impl Default for FluidNet {
    fn default() -> Self {
        FluidNet::new()
    }
}

impl fmt::Display for FluidNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FluidNet(t={}, {} flows, {} resources)",
            self.now,
            self.flows.len(),
            self.resources.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_takes_bytes_over_capacity() {
        let mut net = FluidNet::new();
        let link = net.add_resource("link", 1.0e9);
        net.start_flow(Ps::ZERO, FlowSpec::new(1.0e6).over(link));
        let (t, _) = net.next_completion().unwrap();
        assert!(approx(t.as_secs_f64(), 1.0e-3, 1e-6), "{t}");
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FluidNet::new();
        let link = net.add_resource("link", 1.0e9);
        let a = net.start_flow(Ps::ZERO, FlowSpec::new(1.0e6).over(link));
        let b = net.start_flow(Ps::ZERO, FlowSpec::new(1.0e6).over(link));
        // Both at 0.5 GB/s: each takes 2 ms.
        let (t1, first) = net.next_completion().unwrap();
        assert!(approx(t1.as_secs_f64(), 2.0e-3, 1e-6));
        assert_eq!(first, a);
        net.retire(t1, a);
        let (t2, second) = net.next_completion().unwrap();
        assert_eq!(second, b);
        assert!(t2 >= t1 && t2 <= t1 + Ps::from_nanos(10));
    }

    #[test]
    fn late_arrival_slows_residual_work() {
        let mut net = FluidNet::new();
        let link = net.add_resource("link", 1.0e9);
        let a = net.start_flow(Ps::ZERO, FlowSpec::new(2.0e6).over(link));
        // After 1 ms, a has 1 MB left; b arrives with 1 MB. They split the
        // link and both finish 2 ms later.
        let arrival = Ps::from_millis(1);
        let b = net.start_flow(arrival, FlowSpec::new(1.0e6).over(link));
        let (t, f) = net.next_completion().unwrap();
        assert!(approx(t.as_secs_f64(), 3.0e-3, 1e-6), "{t}");
        assert_eq!(f, a);
        net.retire(t, a);
        let (t2, f2) = net.next_completion().unwrap();
        assert_eq!(f2, b);
        assert!(t2 >= t && t2 <= t + Ps::from_nanos(10));
    }

    #[test]
    fn rate_cap_binds_before_capacity() {
        let mut net = FluidNet::new();
        let link = net.add_resource("link", 10.0e9);
        let capped = net.start_flow(Ps::ZERO, FlowSpec::new(1.0e6).over(link).rate_cap(1.0e9));
        let (t, f) = net.next_completion().unwrap();
        assert_eq!(f, capped);
        assert!(approx(t.as_secs_f64(), 1.0e-3, 1e-6));
    }

    #[test]
    fn capped_flow_leaves_headroom_for_others() {
        let mut net = FluidNet::new();
        let link = net.add_resource("link", 3.0e9);
        // Capped flow takes 1 GB/s; the greedy flow should get the other 2.
        net.start_flow(Ps::ZERO, FlowSpec::new(10.0e6).over(link).rate_cap(1.0e9));
        let greedy = net.start_flow(Ps::ZERO, FlowSpec::new(2.0e6).over(link));
        let (t, f) = net.next_completion().unwrap();
        assert_eq!(f, greedy);
        assert!(approx(t.as_secs_f64(), 1.0e-3, 1e-5), "{t}");
    }

    #[test]
    fn pure_delay_flow() {
        let mut net = FluidNet::new();
        let d = net.start_flow(Ps::ZERO, FlowSpec::delay(Ps::from_micros(42)));
        let (t, f) = net.next_completion().unwrap();
        assert_eq!(f, d);
        assert!(approx(t.as_secs_f64(), 42.0e-6, 1e-6));
        net.retire(t, d);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn min_duration_floors_fast_flows() {
        let mut net = FluidNet::new();
        let link = net.add_resource("link", 100.0e9);
        // 1 KB over a 100 GB/s link would take 10 ns; the floor holds it to
        // 1 us.
        net.start_flow(
            Ps::ZERO,
            FlowSpec::new(1024.0)
                .over(link)
                .min_duration(Ps::from_micros(1)),
        );
        let (t, _) = net.next_completion().unwrap();
        assert!(approx(t.as_secs_f64(), 1.0e-6, 1e-6), "{t}");
    }

    #[test]
    fn multi_resource_flow_bound_by_tightest() {
        let mut net = FluidNet::new();
        let fast = net.add_resource("fast", 10.0e9);
        let slow = net.add_resource("slow", 1.0e9);
        net.start_flow(Ps::ZERO, FlowSpec::new(1.0e6).over(fast).over(slow));
        let (t, _) = net.next_completion().unwrap();
        assert!(approx(t.as_secs_f64(), 1.0e-3, 1e-6));
    }

    #[test]
    fn served_bytes_accumulate() {
        let mut net = FluidNet::new();
        let link = net.add_resource("link", 1.0e9);
        let f = net.start_flow(Ps::ZERO, FlowSpec::new(5.0e5).over(link));
        let (t, _) = net.next_completion().unwrap();
        net.retire(t, f);
        assert!(approx(net.served_bytes(link), 5.0e5, 1e-9));
        assert_eq!(net.resource_name(link), "link");
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn rejects_time_reversal() {
        let mut net = FluidNet::new();
        net.start_flow(Ps::from_millis(5), FlowSpec::delay(Ps::from_micros(1)));
        net.start_flow(Ps::from_millis(4), FlowSpec::delay(Ps::from_micros(1)));
    }

    #[test]
    fn zero_byte_flow_without_duration_completes_now() {
        let mut net = FluidNet::new();
        let f = net.start_flow(Ps::from_nanos(3), FlowSpec::new(0.0));
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert_eq!(t, Ps::from_nanos(3));
    }

    /// Under any mix of flows over one link, no completion is earlier
    /// than bytes/capacity (can't beat the link) and the link is never
    /// oversubscribed (sum of all served bytes <= capacity * makespan).
    #[test]
    fn conservation_and_capacity() {
        crate::check::cases(64, 0xF1D0, |g| {
            let specs = g.vec(1, 12, |g| (g.f64(1.0e3, 1.0e7), g.u64(0, 1_000_000)));
            let mut net = FluidNet::new();
            let link = net.add_resource("link", 1.0e9);
            let mut total = 0.0;
            let mut last_start = Ps::ZERO;
            for (bytes, start_ns) in &specs {
                let at = last_start.max(Ps::from_nanos(*start_ns));
                last_start = at;
                net.start_flow(at, FlowSpec::new(*bytes).over(link));
                total += *bytes;
            }
            let mut end = Ps::ZERO;
            while let Some((t, id)) = net.next_completion() {
                net.retire(t, id);
                end = t;
            }
            assert!(approx(net.served_bytes(link), total, 1e-6));
            // Link can't have moved more bytes than capacity * elapsed.
            let max_bytes = 1.0e9 * end.as_secs_f64();
            assert!(net.served_bytes(link) <= max_bytes * (1.0 + 1e-6) + 2.0);
        });
    }
}
