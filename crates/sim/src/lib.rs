//! # heteropipe-sim
//!
//! Discrete-event simulation kernel underpinning the `heteropipe`
//! heterogeneous CPU-GPU processor study.
//!
//! The crate provides four substrates that the rest of the workspace builds
//! on:
//!
//! * [`time`] — picosecond-resolution simulated time ([`Ps`]) and clock
//!   domains ([`ClockDomain`]) for the 3.5 GHz CPU and 700 MHz GPU cores of
//!   the paper's Table I.
//! * [`queue`] — a deterministic event queue ([`EventQueue`]) with stable
//!   FIFO ordering among simultaneous events.
//! * [`fluid`] — a max-min-fair fluid bandwidth network ([`FluidNet`]) used
//!   to model contention on PCIe links, DRAM channels, and on-chip
//!   interconnect at task granularity.
//! * [`stats`] — counters, histograms, and component activity timelines
//!   ([`Timeline`]) from which run-time breakdowns (paper Figs. 3 and 6) are
//!   derived.
//!
//! # Example
//!
//! ```
//! use heteropipe_sim::{Ps, fluid::{FluidNet, FlowSpec}};
//!
//! let mut net = FluidNet::new();
//! let link = net.add_resource("pcie", 8.0e9); // 8 GB/s
//! let f = net.start_flow(Ps::ZERO, FlowSpec::new(8.0e6).over(link));
//! let (t, done) = net.next_completion().expect("one active flow");
//! assert_eq!(done, f);
//! // 8 MB at 8 GB/s = 1 ms (plus a one-picosecond rounding guard).
//! assert!((t.as_secs_f64() - 1.0e-3).abs() < 1.0e-9);
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod fluid;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use fluid::{FlowId, FluidNet, ResourceId};
pub use queue::EventQueue;
pub use rng::SplitMix64;
pub use stats::{Counter, Histogram, Timeline};
pub use time::{ClockDomain, Ps};
