//! Statistics: counters, histograms, and component activity timelines.
//!
//! The paper's run-time figures (Figs. 3 and 6) break a benchmark's region
//! of interest down by *which combination of components was active*: copy
//! engine only, CPU only, GPU only, or overlaps thereof. [`Timeline`]
//! records busy intervals per component and computes that exact breakdown
//! with a sweep over interval boundaries.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::Ps;

/// A named monotonic counter.
///
/// # Examples
///
/// ```
/// use heteropipe_sim::Counter;
///
/// let mut c = Counter::new("offchip_reads");
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with the given name.
    pub fn new(name: &str) -> Self {
        Counter {
            name: name.to_owned(),
            value: 0,
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)`, with bucket 0 holding the
/// value 0 and 1. Used for reuse-distance and latency distributions where
/// order-of-magnitude shape matters more than exact quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = if v <= 1 {
            0
        } else {
            64 - (v - 1).leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Records `n` samples of the same value in one step. Equivalent to
    /// calling [`record`](Self::record) `n` times, but O(1): used to
    /// rebuild a histogram from an exposition's bucket counts, where a
    /// bucket may hold millions of samples. Sums saturate rather than
    /// overflow.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = if v <= 1 {
            0
        } else {
            64 - (v - 1).leading_zeros() as usize
        };
        self.buckets[b] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples (used by the Prometheus exposition's `_sum`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Iterates non-empty `(bucket_upper_bound, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i >= 64 { u64::MAX } else { 1u64 << i }, c))
    }

    /// The bucket upper bound at quantile `p` in `[0, 1]`: the smallest
    /// bucket boundary below which at least `p` of the samples fall (zero
    /// when empty). Resolution is the power-of-two bucket width, which is
    /// enough for the order-of-magnitude latency reporting this histogram
    /// backs (p50/p99 server percentiles, reuse distances).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i >= 64 {
                    self.max
                } else {
                    (1u64 << i).min(self.max)
                };
            }
        }
        self.max
    }

    /// Accumulates another histogram's samples into this one (used to
    /// combine per-thread latency recordings).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Identifies a component registered with a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(usize);

impl ComponentId {
    /// The component's bit in an [`ActivitySet`] mask.
    pub fn bit(self) -> ActivitySet {
        ActivitySet(1 << self.0)
    }
}

/// A set of components, as a bitmask over [`ComponentId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ActivitySet(u32);

impl ActivitySet {
    /// The empty set (no component active).
    pub const EMPTY: ActivitySet = ActivitySet(0);

    /// Whether `c` is in the set.
    pub fn contains(self, c: ComponentId) -> bool {
        self.0 & (1 << c.0) != 0
    }

    /// The set with `c` added.
    pub fn with(self, c: ComponentId) -> ActivitySet {
        ActivitySet(self.0 | (1 << c.0))
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of components in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Raw mask value (stable across runs; bit `i` is the `i`-th registered
    /// component).
    pub fn mask(self) -> u32 {
        self.0
    }
}

/// Busy-interval timeline for a small set of components.
///
/// # Examples
///
/// ```
/// use heteropipe_sim::{Timeline, Ps};
///
/// let mut tl = Timeline::new();
/// let cpu = tl.add_component("cpu");
/// let gpu = tl.add_component("gpu");
/// tl.record(cpu, Ps::ZERO, Ps::from_millis(2));
/// tl.record(gpu, Ps::from_millis(1), Ps::from_millis(3));
/// assert_eq!(tl.busy(cpu), Ps::from_millis(2));
/// assert_eq!(tl.span(), Ps::from_millis(3));
/// // 1 ms CPU-only, 1 ms overlapped, 1 ms GPU-only.
/// let b = tl.breakdown();
/// assert_eq!(b.get(cpu.bit()), Ps::from_millis(1));
/// assert_eq!(b.get(cpu.bit().with(gpu)), Ps::from_millis(1));
/// assert_eq!(b.get(gpu.bit()), Ps::from_millis(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    labels: Vec<String>,
    intervals: Vec<Vec<(Ps, Ps)>>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Registers a component (at most 32 per timeline).
    pub fn add_component(&mut self, label: &str) -> ComponentId {
        assert!(
            self.labels.len() < 32,
            "timeline supports at most 32 components"
        );
        self.labels.push(label.to_owned());
        self.intervals.push(Vec::new());
        ComponentId(self.labels.len() - 1)
    }

    /// The label a component was registered with.
    pub fn label(&self, c: ComponentId) -> &str {
        &self.labels[c.0]
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.labels.len()
    }

    /// Records a busy interval `[start, end)` for `c`. Zero-length intervals
    /// are ignored; intervals may overlap and arrive in any order.
    pub fn record(&mut self, c: ComponentId, start: Ps, end: Ps) {
        assert!(end >= start, "interval ends before it starts");
        if end > start {
            self.intervals[c.0].push((start, end));
        }
    }

    /// Total busy time of `c` (union of its intervals).
    pub fn busy(&self, c: ComponentId) -> Ps {
        let mut iv = self.intervals[c.0].clone();
        iv.sort();
        let mut total = Ps::ZERO;
        let mut cur: Option<(Ps, Ps)> = None;
        for (s, e) in iv {
            match cur {
                None => cur = Some((s, e)),
                Some((cs, ce)) => {
                    if s <= ce {
                        cur = Some((cs, ce.max(e)));
                    } else {
                        total += ce - cs;
                        cur = Some((s, e));
                    }
                }
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce - cs;
        }
        total
    }

    /// End of the last recorded interval across all components (the
    /// makespan when activity starts at time zero).
    pub fn span(&self) -> Ps {
        self.intervals
            .iter()
            .flatten()
            .map(|&(_, e)| e)
            .max()
            .unwrap_or(Ps::ZERO)
    }

    /// Exclusive activity breakdown: for every combination of
    /// simultaneously-active components, the total time that exact
    /// combination (and no other component) was active.
    pub fn breakdown(&self) -> Breakdown {
        // Sweep line over all interval boundaries.
        #[derive(Clone, Copy)]
        enum Edge {
            Open,
            Close,
        }
        let mut events: Vec<(Ps, usize, Edge)> = Vec::new();
        for (i, iv) in self.intervals.iter().enumerate() {
            for &(s, e) in iv {
                events.push((s, i, Edge::Open));
                events.push((e, i, Edge::Close));
            }
        }
        events.sort_by_key(|&(t, i, ref e)| (t, matches!(e, Edge::Open), i));
        let mut active = vec![0u32; self.labels.len()];
        let mut mask: u32 = 0;
        let mut last = Ps::ZERO;
        let mut out: BTreeMap<ActivitySet, Ps> = BTreeMap::new();
        for (t, i, edge) in events {
            if t > last && mask != 0 {
                *out.entry(ActivitySet(mask)).or_insert(Ps::ZERO) += t - last;
            }
            last = t;
            match edge {
                Edge::Open => {
                    active[i] += 1;
                    mask |= 1 << i;
                }
                Edge::Close => {
                    active[i] -= 1;
                    if active[i] == 0 {
                        mask &= !(1 << i);
                    }
                }
            }
        }
        Breakdown { slices: out }
    }
}

/// The result of [`Timeline::breakdown`]: time per exact activity set.
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    slices: BTreeMap<ActivitySet, Ps>,
}

impl Breakdown {
    /// Time during which exactly the set `s` was active.
    pub fn get(&self, s: ActivitySet) -> Ps {
        self.slices.get(&s).copied().unwrap_or(Ps::ZERO)
    }

    /// Iterates `(activity set, duration)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (ActivitySet, Ps)> + '_ {
        self.slices.iter().map(|(&s, &d)| (s, d))
    }

    /// Total time any component was active.
    pub fn total(&self) -> Ps {
        self.slices.values().copied().sum()
    }

    /// Total time during which `c` was active (alone or overlapped).
    pub fn active_time(&self, c: ComponentId) -> Ps {
        self.slices
            .iter()
            .filter(|(s, _)| s.contains(c))
            .map(|(_, &d)| d)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        c.add(10);
        c.incr();
        assert_eq!(c.get(), 11);
        assert_eq!(c.name(), "x");
        assert_eq!(c.to_string(), "x=11");
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 100, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - (1_000_110.0 / 7.0)).abs() < 1e-9);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        // 0 and 1 share bucket 0; 2 is in bucket (1,2]; 3 and 4 in (2,4].
        assert_eq!(buckets[0], (1, 2));
        assert_eq!(buckets[1], (2, 1));
        assert_eq!(buckets[2], (4, 2));
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0, "empty histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        // Bucketed upper bounds: p50 of 1..=100 lands in the (32,64] bucket.
        assert_eq!(h.percentile(0.5), 64);
        assert_eq!(h.percentile(0.99), 100, "top bucket clamps to max");
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(1.0), 100);
        let mut single = Histogram::new();
        single.record(7);
        assert_eq!(single.percentile(0.5), 7);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new();
        let mut loop_h = Histogram::new();
        for (v, n) in [(0u64, 3u64), (1, 2), (2, 5), (100, 7), (4096, 4)] {
            bulk.record_n(v, n);
            for _ in 0..n {
                loop_h.record(v);
            }
        }
        bulk.record_n(42, 0); // no-op
        assert_eq!(bulk, loop_h);

        // Sums saturate instead of overflowing on extreme values.
        let mut extreme = Histogram::new();
        extreme.record_n(u64::MAX, 3);
        assert_eq!(extreme.count(), 3);
        assert_eq!(extreme.sum(), u64::MAX);
        assert_eq!(extreme.iter().collect::<Vec<_>>(), vec![(u64::MAX, 3)]);
    }

    #[test]
    fn histogram_merge_combines_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 200);
        assert!((a.mean() - (306.0 / 5.0)).abs() < 1e-9);
        let mut all = Histogram::new();
        for v in [1u64, 2, 3, 100, 200] {
            all.record(v);
        }
        assert_eq!(a.percentile(0.5), all.percentile(0.5));
    }

    #[test]
    fn histogram_merge_edge_cases() {
        // Merging an empty histogram is a no-op, in both directions.
        let mut a = Histogram::new();
        a.record(5);
        a.merge(&Histogram::new());
        assert_eq!((a.count(), a.max(), a.sum()), (1, 5, 5));
        let mut target = Histogram::new();
        target.merge(&a);
        assert_eq!(target.count(), 1, "merge into empty adopts the samples");
        assert_eq!(target.percentile(0.5), 5);

        // Disjoint ranges: the merged distribution keeps its low median
        // while the tail comes entirely from the other histogram.
        let mut low = Histogram::new();
        let mut high = Histogram::new();
        for _ in 0..90 {
            low.record(1);
        }
        for _ in 0..10 {
            high.record(1_000_000);
        }
        low.merge(&high);
        assert_eq!(low.count(), 100);
        assert_eq!(low.sum(), 90 + 10 * 1_000_000);
        assert_eq!(low.percentile(0.5), 1, "median stays in the low range");
        assert_eq!(low.percentile(1.0), 1_000_000);
        assert_eq!(low.max(), 1_000_000);
    }

    #[test]
    fn busy_merges_overlapping_intervals() {
        let mut tl = Timeline::new();
        let c = tl.add_component("cpu");
        tl.record(c, Ps::from_nanos(0), Ps::from_nanos(10));
        tl.record(c, Ps::from_nanos(5), Ps::from_nanos(15));
        tl.record(c, Ps::from_nanos(20), Ps::from_nanos(25));
        assert_eq!(tl.busy(c), Ps::from_nanos(20));
        assert_eq!(tl.span(), Ps::from_nanos(25));
    }

    #[test]
    fn breakdown_three_components() {
        let mut tl = Timeline::new();
        let a = tl.add_component("copy");
        let b = tl.add_component("cpu");
        let c = tl.add_component("gpu");
        tl.record(a, Ps::from_nanos(0), Ps::from_nanos(4));
        tl.record(b, Ps::from_nanos(2), Ps::from_nanos(6));
        tl.record(c, Ps::from_nanos(5), Ps::from_nanos(9));
        let bd = tl.breakdown();
        assert_eq!(bd.get(a.bit()), Ps::from_nanos(2));
        assert_eq!(bd.get(a.bit().with(b)), Ps::from_nanos(2));
        assert_eq!(bd.get(b.bit()), Ps::from_nanos(1));
        assert_eq!(bd.get(b.bit().with(c)), Ps::from_nanos(1));
        assert_eq!(bd.get(c.bit()), Ps::from_nanos(3));
        assert_eq!(bd.total(), Ps::from_nanos(9));
        assert_eq!(bd.active_time(b), Ps::from_nanos(4));
    }

    #[test]
    fn zero_length_intervals_ignored() {
        let mut tl = Timeline::new();
        let c = tl.add_component("x");
        tl.record(c, Ps::from_nanos(5), Ps::from_nanos(5));
        assert_eq!(tl.busy(c), Ps::ZERO);
        assert_eq!(tl.breakdown().total(), Ps::ZERO);
    }

    #[test]
    fn activity_set_ops() {
        let mut tl = Timeline::new();
        let a = tl.add_component("a");
        let b = tl.add_component("b");
        let s = a.bit().with(b);
        assert!(s.contains(a) && s.contains(b));
        assert_eq!(s.len(), 2);
        assert!(!ActivitySet::EMPTY.contains(a));
        assert!(ActivitySet::EMPTY.is_empty());
        assert_eq!(tl.label(a), "a");
        assert_eq!(tl.component_count(), 2);
        assert_eq!(s.mask(), 0b11);
    }

    /// The breakdown's per-component active time always equals the
    /// component's merged busy time, and the breakdown total never
    /// exceeds the span.
    #[test]
    fn breakdown_consistent_with_busy() {
        crate::check::cases(64, 0x57A75, |g| {
            let iv_a = g.vec(0, 20, |g| (g.u64(0, 1000), g.u64(1, 100)));
            let iv_b = g.vec(0, 20, |g| (g.u64(0, 1000), g.u64(1, 100)));
            let mut tl = Timeline::new();
            let a = tl.add_component("a");
            let b = tl.add_component("b");
            for (s, len) in iv_a {
                tl.record(a, Ps::from_nanos(s), Ps::from_nanos(s + len));
            }
            for (s, len) in iv_b {
                tl.record(b, Ps::from_nanos(s), Ps::from_nanos(s + len));
            }
            let bd = tl.breakdown();
            assert_eq!(bd.active_time(a), tl.busy(a));
            assert_eq!(bd.active_time(b), tl.busy(b));
            assert!(bd.total() <= tl.span());
        });
    }
}
