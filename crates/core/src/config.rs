//! System configurations (the paper's Table I).
//!
//! Two systems share identical CPU cores, GPU SMs, and cache geometries and
//! differ only in connectivity and memory:
//!
//! * **Discrete GPU system** — CPU chip with 2-channel DDR3-1600 (24 GB/s
//!   peak), GPU chip with 4-channel GDDR5 (179 GB/s peak), PCIe 2.0 x16
//!   (8 GB/s) between them, no CPU-GPU cache coherence, explicit copies.
//! * **Heterogeneous CPU-GPU processor** — one chip, CPU and GPU cores
//!   sharing the 4-channel GDDR5 through a high-bandwidth 12-port switch,
//!   cache coherent, no copies, GPU page faults handled by the CPU.

use std::fmt;

use heteropipe_cpu::CpuConfig;
use heteropipe_gpu::GpuConfig;
use heteropipe_mem::dram::DramConfig;
use heteropipe_mem::hierarchy::HierarchyConfig;
use heteropipe_mem::pcie::PcieConfig;
use heteropipe_mem::xbar::InterconnectConfig;

/// Which of the two Table I systems a run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Separate CPU and GPU chips joined by PCIe; benchmarks run their
    /// original *copy* versions.
    DiscreteGpu,
    /// Single-chip heterogeneous processor; benchmarks run their
    /// *limited-copy* versions (elidable copies removed).
    Heterogeneous,
}

impl Platform {
    /// Both platforms, discrete first (the paper's left/right bar order).
    pub const BOTH: [Platform; 2] = [Platform::DiscreteGpu, Platform::Heterogeneous];
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::DiscreteGpu => write!(f, "discrete"),
            Platform::Heterogeneous => write!(f, "heterogeneous"),
        }
    }
}

/// Full parameterization of one simulated system.
///
/// # Examples
///
/// ```
/// use heteropipe::SystemConfig;
///
/// let d = SystemConfig::discrete();
/// let h = SystemConfig::heterogeneous();
/// assert!(d.pcie.is_some() && h.pcie.is_none());
/// assert!(h.hierarchy.coherent_probes);
/// // Both share Table I's compute: 56 + 358.4 GFLOP/s.
/// assert_eq!(d.peak_flops_total(), h.peak_flops_total());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Which system shape this is.
    pub platform: Platform,
    /// CPU cores (Table I: 4x 4-wide OoO x86 at 3.5 GHz).
    pub cpu: CpuConfig,
    /// GPU (Table I: 16 Fermi-like SMs at 700 MHz).
    pub gpu: GpuConfig,
    /// Cache geometry and coherence connectivity.
    pub hierarchy: HierarchyConfig,
    /// CPU-side memory (discrete only; `None` on the heterogeneous chip).
    pub cpu_mem: Option<DramConfig>,
    /// GPU-side / shared memory.
    pub gpu_mem: DramConfig,
    /// PCIe link (discrete only).
    pub pcie: Option<PcieConfig>,
    /// On-chip interconnect joining L2s and memory controllers.
    pub interconnect: InterconnectConfig,
    /// Whether shared allocations keep cache-line alignment (the paper
    /// notes an aligned allocator would avoid the `*` benchmarks' extra
    /// accesses; flipping this is the alignment ablation).
    pub aligned_allocator: bool,
    /// Rate cap for residual copies executed as on-chip memcpy on the
    /// heterogeneous processor, bytes per second.
    pub memcpy_rate: f64,
    /// Off-chip classifier spill window: reuse up to this many pipeline
    /// stages later counts as a spill rather than long-range reuse (the
    /// paper's definition is 1 = the next stage).
    pub spill_window: u32,
}

impl SystemConfig {
    /// The Table I discrete GPU system.
    pub fn discrete() -> Self {
        SystemConfig {
            platform: Platform::DiscreteGpu,
            cpu: CpuConfig::paper(),
            gpu: GpuConfig::paper(),
            hierarchy: HierarchyConfig::paper_discrete(),
            cpu_mem: Some(DramConfig::ddr3_1600_2ch()),
            gpu_mem: DramConfig::gddr5_4ch(),
            pcie: Some(PcieConfig::gen2_x16()),
            interconnect: InterconnectConfig::cpu_6port(),
            aligned_allocator: true,
            memcpy_rate: 20.0e9,
            spill_window: 1,
        }
    }

    /// The Table I heterogeneous CPU-GPU processor. Shared allocations are
    /// *not* line-aligned by default, reproducing the paper's misalignment
    /// observation for the `*` benchmarks.
    pub fn heterogeneous() -> Self {
        SystemConfig {
            platform: Platform::Heterogeneous,
            cpu: CpuConfig::paper(),
            gpu: GpuConfig::paper(),
            hierarchy: HierarchyConfig::paper_heterogeneous(),
            cpu_mem: None,
            gpu_mem: DramConfig::gddr5_4ch(),
            pcie: None,
            interconnect: InterconnectConfig::hetero_12port(),
            aligned_allocator: false,
            memcpy_rate: 20.0e9,
            spill_window: 1,
        }
    }

    /// The config for a platform.
    pub fn for_platform(platform: Platform) -> Self {
        match platform {
            Platform::DiscreteGpu => SystemConfig::discrete(),
            Platform::Heterogeneous => SystemConfig::heterogeneous(),
        }
    }

    /// Effective (achievable) bandwidth of the memory CPU stages drain,
    /// bytes/s.
    pub fn cpu_mem_bw(&self) -> f64 {
        self.cpu_mem.unwrap_or(self.gpu_mem).effective_bw()
    }

    /// Effective bandwidth of the memory GPU kernels drain, bytes/s.
    pub fn gpu_mem_bw(&self) -> f64 {
        self.gpu_mem.effective_bw()
    }

    /// Total peak FLOP rate of the chip(s): `F_cpu + F_gpu` of Eq. 2.
    pub fn peak_flops_total(&self) -> f64 {
        self.cpu.peak_flops_total() + self.gpu.peak_flops_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_matches_table1() {
        let c = SystemConfig::discrete();
        assert_eq!(c.platform, Platform::DiscreteGpu);
        assert!(c.pcie.is_some());
        assert_eq!(c.cpu_mem.unwrap().peak_bw(), 24.0e9);
        assert_eq!(c.gpu_mem.peak_bw(), 179.0e9);
        assert!(!c.hierarchy.coherent_probes);
        assert!(c.aligned_allocator);
    }

    #[test]
    fn heterogeneous_matches_table1() {
        let c = SystemConfig::heterogeneous();
        assert!(c.pcie.is_none());
        assert!(c.cpu_mem.is_none());
        assert!(c.hierarchy.coherent_probes);
        // CPU and GPU share the GDDR5.
        assert_eq!(c.cpu_mem_bw(), c.gpu_mem_bw());
        assert!(!c.aligned_allocator);
    }

    #[test]
    fn peak_flops_sum() {
        let c = SystemConfig::discrete();
        assert!((c.peak_flops_total() - (56.0e9 + 358.4e9)).abs() < 1e6);
    }

    #[test]
    fn platform_display_and_order() {
        assert_eq!(Platform::BOTH[0].to_string(), "discrete");
        assert_eq!(Platform::BOTH[1].to_string(), "heterogeneous");
        assert_eq!(
            SystemConfig::for_platform(Platform::Heterogeneous).platform,
            Platform::Heterogeneous
        );
    }
}
