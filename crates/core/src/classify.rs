//! Off-chip memory access classification (the paper's §V-C / Fig. 9).
//!
//! Every off-chip transaction is classified by its relationship to the
//! previous off-chip event on the same cache line, measured in pipeline
//! stages:
//!
//! * **Required** — compulsory (first fetch / final writeback) and
//!   long-range reuse spanning multiple pipeline stages.
//! * **W-R spill** — data written back by one stage and fetched by the next:
//!   a producer-consumer hand-off that failed to stay in cache.
//! * **R-R spill** — data read by consecutive stages (shared input) that
//!   had to be refetched.
//! * **R-R contention** — re-fetch of data already read *within the same
//!   stage*: the stage's working set exceeds cache capacity.
//! * **W-R contention** — a writeback whose data is read again in the same
//!   stage: the line left chip before its uses finished.
//!
//! Writebacks are attributed when their matching re-fetch arrives (the pair
//! shares a class); unmatched writebacks at the end of the region of
//! interest are final output writes and count as required.

use std::collections::HashMap;

use heteropipe_mem::LineAddr;

/// The Fig. 9 access classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Compulsory and long-range reuse: cannot be removed without major
    /// restructuring.
    Required,
    /// Producer-consumer spill to the next stage.
    WrSpill,
    /// Shared-input re-fetch in the next stage.
    RrSpill,
    /// Same-stage read-read capacity contention.
    RrContention,
    /// Same-stage writeback-then-read contention.
    WrContention,
}

impl AccessClass {
    /// All classes in the paper's plotting order.
    pub const ALL: [AccessClass; 5] = [
        AccessClass::Required,
        AccessClass::WrSpill,
        AccessClass::RrSpill,
        AccessClass::RrContention,
        AccessClass::WrContention,
    ];

    /// Stable dense index.
    pub fn index(self) -> usize {
        match self {
            AccessClass::Required => 0,
            AccessClass::WrSpill => 1,
            AccessClass::RrSpill => 2,
            AccessClass::RrContention => 3,
            AccessClass::WrContention => 4,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::Required => "required",
            AccessClass::WrSpill => "w-r spill",
            AccessClass::RrSpill => "r-r spill",
            AccessClass::RrContention => "r-r contention",
            AccessClass::WrContention => "w-r contention",
        }
    }
}

/// Counts per access class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    counts: [u64; 5],
}

impl ClassCounts {
    /// Count in one class.
    pub fn get(&self, c: AccessClass) -> u64 {
        self.counts[c.index()]
    }

    /// The raw per-class counts in [`AccessClass::ALL`] order (for
    /// serialization).
    pub fn counts(&self) -> [u64; 5] {
        self.counts
    }

    /// Rebuilds a tally from counts produced by [`counts`](Self::counts).
    pub fn from_counts(counts: [u64; 5]) -> ClassCounts {
        ClassCounts { counts }
    }

    /// Total classified transactions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of the total in class `c` (0 when empty).
    pub fn fraction(&self, c: AccessClass) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(c) as f64 / t as f64
        }
    }

    fn add(&mut self, c: AccessClass, n: u64) {
        self.counts[c.index()] += n;
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &ClassCounts) {
        for i in 0..5 {
            self.counts[i] += other.counts[i];
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LineState {
    /// Stage of the last off-chip event on this line.
    stage: u32,
    /// Whether the last event was a writeback.
    was_writeback: bool,
    /// Writebacks not yet paired with a re-fetch.
    pending_writebacks: u32,
    /// Stage of the most recent fetch (for R-R distance when a writeback
    /// intervened).
    last_fetch_stage: i64,
}

/// Streaming classifier over the off-chip interface.
///
/// Feed it every off-chip fetch and writeback in execution order via
/// [`fetch`](Self::fetch) / [`writeback`](Self::writeback), then call
/// [`finish`](Self::finish).
///
/// # Examples
///
/// ```
/// use heteropipe::{AccessClass, OffchipClassifier};
/// use heteropipe_mem::LineAddr;
///
/// let mut c = OffchipClassifier::new();
/// c.writeback(LineAddr(7), 3); // producer stage spills the line
/// c.fetch(LineAddr(7), 4);     // consumer stage fetches it right back
/// let counts = c.finish();
/// assert_eq!(counts.get(AccessClass::WrSpill), 2); // the pair
/// ```
#[derive(Debug, Default)]
pub struct OffchipClassifier {
    lines: HashMap<u64, LineState>,
    counts: ClassCounts,
    /// Maximum stage distance still counted as a spill (paper: 1 = next
    /// stage).
    spill_window: u32,
}

impl OffchipClassifier {
    /// A classifier with the paper's next-stage spill window.
    pub fn new() -> Self {
        OffchipClassifier {
            lines: HashMap::new(),
            counts: ClassCounts::default(),
            spill_window: 1,
        }
    }

    /// A classifier with a custom spill window (reuse up to `window` stages
    /// later counts as a spill).
    pub fn with_spill_window(window: u32) -> Self {
        OffchipClassifier {
            spill_window: window,
            ..Self::new()
        }
    }

    /// Records an off-chip fetch of `line` by the stage numbered `stage`.
    pub fn fetch(&mut self, line: LineAddr, stage: u32) {
        let state = self.lines.entry(line.0).or_insert(LineState {
            stage,
            was_writeback: false,
            pending_writebacks: 0,
            last_fetch_stage: -1,
        });
        let class = if state.last_fetch_stage < 0 && !state.was_writeback && state.stage == stage {
            // Fresh entry: compulsory.
            None
        } else {
            let dist = stage.saturating_sub(state.stage);
            Some(if state.was_writeback {
                if dist == 0 {
                    AccessClass::WrContention
                } else if dist <= self.spill_window {
                    AccessClass::WrSpill
                } else {
                    AccessClass::Required
                }
            } else if dist == 0 {
                AccessClass::RrContention
            } else if dist <= self.spill_window {
                AccessClass::RrSpill
            } else {
                AccessClass::Required
            })
        };
        match class {
            None => self.counts.add(AccessClass::Required, 1),
            Some(c) => {
                self.counts.add(c, 1);
                // Pair one pending writeback with this fetch: it shares the
                // fetch's class.
                if state.pending_writebacks > 0 {
                    state.pending_writebacks -= 1;
                    self.counts.add(c, 1);
                }
            }
        }
        state.stage = stage;
        state.was_writeback = false;
        state.last_fetch_stage = stage as i64;
    }

    /// Records an off-chip writeback of `line` by the stage numbered
    /// `stage`. Its class is decided by the next fetch of the line (or
    /// `finish`, if none comes).
    pub fn writeback(&mut self, line: LineAddr, stage: u32) {
        let state = self.lines.entry(line.0).or_insert(LineState {
            stage,
            was_writeback: true,
            pending_writebacks: 0,
            last_fetch_stage: -1,
        });
        state.stage = stage;
        state.was_writeback = true;
        state.pending_writebacks += 1;
    }

    /// Closes the ROI: unmatched writebacks are final output writes
    /// (required). Returns the totals.
    pub fn finish(mut self) -> ClassCounts {
        for state in self.lines.values() {
            self.counts
                .add(AccessClass::Required, state.pending_writebacks as u64);
        }
        self.counts
    }

    /// Classified counts so far (not including unmatched writebacks).
    pub fn counts(&self) -> ClassCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn first_fetch_is_compulsory() {
        let mut c = OffchipClassifier::new();
        c.fetch(line(1), 0);
        let counts = c.finish();
        assert_eq!(counts.get(AccessClass::Required), 1);
        assert_eq!(counts.total(), 1);
    }

    #[test]
    fn same_stage_refetch_is_rr_contention() {
        let mut c = OffchipClassifier::new();
        c.fetch(line(1), 2);
        c.fetch(line(1), 2);
        let counts = c.finish();
        assert_eq!(counts.get(AccessClass::RrContention), 1);
        assert_eq!(counts.get(AccessClass::Required), 1);
    }

    #[test]
    fn next_stage_refetch_is_rr_spill() {
        let mut c = OffchipClassifier::new();
        c.fetch(line(1), 2);
        c.fetch(line(1), 3);
        assert_eq!(c.finish().get(AccessClass::RrSpill), 1);
    }

    #[test]
    fn long_range_refetch_is_required() {
        let mut c = OffchipClassifier::new();
        c.fetch(line(1), 0);
        c.fetch(line(1), 5);
        assert_eq!(c.finish().get(AccessClass::Required), 2);
    }

    #[test]
    fn producer_consumer_writeback_pair_is_wr_spill() {
        let mut c = OffchipClassifier::new();
        c.writeback(line(1), 4); // producer spills
        c.fetch(line(1), 5); // consumer re-fetches next stage
        let counts = c.finish();
        // Both the writeback and the fetch count as W-R spill.
        assert_eq!(counts.get(AccessClass::WrSpill), 2);
        assert_eq!(counts.total(), 2);
    }

    #[test]
    fn same_stage_writeback_read_is_wr_contention() {
        let mut c = OffchipClassifier::new();
        c.fetch(line(1), 3);
        c.writeback(line(1), 3);
        c.fetch(line(1), 3);
        let counts = c.finish();
        assert_eq!(counts.get(AccessClass::WrContention), 2);
        assert_eq!(counts.get(AccessClass::Required), 1); // the first fetch
    }

    #[test]
    fn final_writeback_is_required() {
        let mut c = OffchipClassifier::new();
        c.fetch(line(1), 0);
        c.writeback(line(1), 9);
        let counts = c.finish();
        assert_eq!(counts.get(AccessClass::Required), 2);
        assert_eq!(counts.total(), 2);
    }

    #[test]
    fn writeback_without_prior_fetch_then_long_gap() {
        let mut c = OffchipClassifier::new();
        c.writeback(line(1), 0); // GPU-produced data spilled
        c.fetch(line(1), 7); // consumed much later
        let counts = c.finish();
        assert_eq!(counts.get(AccessClass::Required), 2);
    }

    #[test]
    fn spill_window_widens_spills() {
        let mut strict = OffchipClassifier::new();
        strict.writeback(line(1), 0);
        strict.fetch(line(1), 3);
        assert_eq!(strict.finish().get(AccessClass::WrSpill), 0);

        let mut wide = OffchipClassifier::with_spill_window(3);
        wide.writeback(line(1), 0);
        wide.fetch(line(1), 3);
        assert_eq!(wide.finish().get(AccessClass::WrSpill), 2);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut c = OffchipClassifier::new();
        for s in 0..4 {
            for l in 0..100 {
                c.fetch(line(l), s);
            }
        }
        let counts = c.finish();
        let sum: f64 = AccessClass::ALL.iter().map(|&a| counts.fraction(a)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Streaming 100 lines across 4 stages: 100 compulsory, 300 spills.
        assert_eq!(counts.get(AccessClass::RrSpill), 300);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ClassCounts::default();
        a.add(AccessClass::WrSpill, 5);
        let mut b = ClassCounts::default();
        b.add(AccessClass::WrSpill, 3);
        b.add(AccessClass::Required, 2);
        a.merge(&b);
        assert_eq!(a.get(AccessClass::WrSpill), 8);
        assert_eq!(a.total(), 10);
    }

    /// Every event is classified exactly once: total classified equals
    /// fetches + writebacks.
    #[test]
    fn conservation() {
        heteropipe_sim::check::cases(64, 0xC1A55, |g| {
            let events = g.vec(1, 500, |g| (g.u64(0, 50), g.u32(0, 8), g.bool()));
            let mut c = OffchipClassifier::new();
            let mut last_stage = 0u32;
            let mut n = 0u64;
            for (l, stage_jump, is_wb) in events {
                let stage = last_stage.max(stage_jump % 8 + last_stage);
                last_stage = stage;
                if is_wb {
                    c.writeback(line(l), stage);
                } else {
                    c.fetch(line(l), stage);
                }
                n += 1;
            }
            let counts = c.finish();
            assert_eq!(counts.total(), n);
        });
    }
}
