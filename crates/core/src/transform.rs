//! Pipeline optimization transforms beyond copy elimination — the §VI
//! research directions, implemented as source-to-source rewrites of the
//! benchmark IR:
//!
//! * [`fuse_adjacent_kernels`] — GPU-GPU kernel fusion [36]: merge a
//!   producer kernel with the consumer kernel that follows it, so the
//!   intermediate data is consumed in the same stage (at cache speed when
//!   it fits) instead of spilling between stages.
//! * [`migrate_cpu_stages_to_gpu`] / [`auto_migrate`] — compute migration:
//!   rewrite serial CPU stages as wide GPU kernels (with atomic overhead);
//!   the `auto` variant migrates only where the bounds models predict a
//!   win.
//! * [`suggest_chunks`] — concurrent-footprint estimation: pick the chunk
//!   count for [`Organization::ChunkedParallel`] so each producer-consumer
//!   hand-off fits in the GPU-shared L2 (the paper's "estimate concurrent
//!   memory footprint to place data in available cache").
//!
//! [`Organization::ChunkedParallel`]: crate::organize::Organization

use heteropipe_workloads::{ComputeStage, ExecKind, Pipeline, Stage};

use crate::config::SystemConfig;

/// Fuses each chunkable GPU kernel into its immediate GPU consumer when the
/// consumer's only new input is the producer's output (no copy or CPU stage
/// between them). Returns the rewritten pipeline and how many fusions were
/// applied.
///
/// Fused stages concatenate work and access patterns; the consumer's reads
/// of the intermediate now land in the same pipeline stage, where the
/// functional caches service them on chip if the intermediate fits — the
/// mechanism by which fusion removes the paper's W-R spills.
pub fn fuse_adjacent_kernels(pipeline: &Pipeline) -> (Pipeline, usize) {
    let mut p = pipeline.clone();
    let mut fused = 0usize;
    let mut i = 0;
    while i + 1 < p.stages.len() {
        let can_fuse = match (&p.stages[i], &p.stages[i + 1]) {
            (Stage::Compute(a), Stage::Compute(b)) => {
                a.exec == ExecKind::Gpu
                    && b.exec == ExecKind::Gpu
                    && a.chunkable
                    && b.chunkable
                    && consumes_output_of(b, a)
                    && a.scratch_per_cta + b.scratch_per_cta <= 48 * 1024
            }
            _ => false,
        };
        if can_fuse {
            let b = match p.stages.remove(i + 1) {
                Stage::Compute(b) => b,
                Stage::Copy(_) => unreachable!("checked above"),
            };
            let a = match &mut p.stages[i] {
                Stage::Compute(a) => a,
                Stage::Copy(_) => unreachable!("checked above"),
            };
            a.name = format!("{}+{}", a.name, b.name);
            a.threads = a.threads.max(b.threads);
            a.instructions += b.instructions;
            a.flops += b.flops;
            a.scratch_per_cta += b.scratch_per_cta;
            a.patterns.extend(b.patterns);
            // The fused kernel produces and consumes each tile together:
            // its patterns interleave, which is where fusion's cache
            // benefit comes from.
            a.interleave_patterns = true;
            fused += 1;
            // Do not advance: the merged kernel may fuse again with the
            // next stage (kernel chains collapse fully).
        } else {
            i += 1;
        }
    }
    if fused > 0 {
        p.name = format!("{}+fused", p.name);
    }
    (p, fused)
}

/// A consumer is fusable with a producer only if it consumes the
/// producer's outputs *elementwise* (chunk-aligned reads): an all-to-all
/// read (a `reads_all` gather over the whole intermediate, like an
/// iterative solver's next sweep) needs a global barrier and cannot live
/// inside one kernel.
fn consumes_output_of(consumer: &ComputeStage, producer: &ComputeStage) -> bool {
    let mut consumes = false;
    for w in producer.patterns.iter().filter(|w| w.kind.is_write()) {
        for r in consumer.patterns.iter().filter(|r| !r.kind.is_write()) {
            if r.buf == w.buf {
                if !r.follows_chunk {
                    return false; // needs a barrier: not fusable
                }
                consumes = true;
            }
        }
    }
    consumes
}

/// Rewrites every CPU compute stage as a wide GPU kernel (the paper's §V-B
/// manual kmeans/strmclstr transformation: matrix-vector and reduction work
/// moved into kernels with atomics). Instruction counts inflate ~30% for
/// atomic traffic; memory patterns are unchanged.
pub fn migrate_cpu_stages_to_gpu(pipeline: &Pipeline) -> Pipeline {
    migrate_where(pipeline, |_| true)
}

/// Migrates only the CPU stages the bounds models predict will win on the
/// GPU: enough work to amortize a kernel launch, even after the atomic
/// overhead, at the configured FLOP/issue rates. Control slivers (the
/// convergence checks) stay on the CPU. Returns the rewritten pipeline and
/// the number of stages migrated.
pub fn auto_migrate(pipeline: &Pipeline, config: &SystemConfig) -> (Pipeline, usize) {
    let cpu_rate = config.cpu.issue_width * config.cpu.clock.freq_hz();
    let gpu_rate = config.gpu.peak_issue_rate();
    let launch = config.cpu.kernel_launch.as_secs_f64();
    let mut migrated = 0usize;
    let p = migrate_where(pipeline, |c| {
        let cpu_secs = c.instructions as f64 / cpu_rate;
        let gpu_secs = c.instructions as f64 * 1.3 / gpu_rate + launch;
        let win = gpu_secs < cpu_secs;
        if win {
            migrated += 1;
        }
        win
    });
    (p, migrated)
}

fn migrate_where(pipeline: &Pipeline, mut pick: impl FnMut(&ComputeStage) -> bool) -> Pipeline {
    let mut p = pipeline.clone();
    let mut any = false;
    for stage in &mut p.stages {
        if let Stage::Compute(c) = stage {
            if c.exec == ExecKind::Cpu && pick(c) {
                c.exec = ExecKind::Gpu;
                // Spread the serial work across a wide grid; atomics cost
                // ~30% extra instructions.
                let instr = (c.instructions as f64 * 1.3) as u64;
                c.threads = (instr / 24).max(4096);
                c.threads_per_cta = 256;
                c.instructions = instr;
                c.name = format!("{}_on_gpu", c.name);
                any = true;
            }
        }
    }
    if any {
        p.name = format!("{}+migrated", p.name);
    }
    p
}

/// Picks a chunk count for chunked producer-consumer execution such that
/// the largest inter-stage intermediate fits in half the GPU-shared L2
/// (leaving the other half for the stages' own streaming), clamped to
/// `[2, 64]`. Returns 4 (the paper's validated minimum stream width) when
/// no producer-consumer intermediate exists.
pub fn suggest_chunks(pipeline: &Pipeline, config: &SystemConfig) -> u32 {
    let budget = (config.hierarchy.gpu_l2.capacity_bytes() / 2).max(1);
    let mut worst: u64 = 0;
    let stages: Vec<&ComputeStage> = pipeline
        .stages
        .iter()
        .filter_map(Stage::as_compute)
        .collect();
    for pair in stages.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if !(a.chunkable && b.chunkable) {
            continue;
        }
        // Bytes handed from a to b.
        let handed: u64 = a
            .patterns
            .iter()
            .filter(|w| w.kind.is_write())
            .filter(|w| {
                b.patterns
                    .iter()
                    .any(|r| !r.kind.is_write() && r.buf == w.buf && r.follows_chunk)
            })
            .map(|w| pipeline.buffer(w.buf).bytes)
            .sum();
        worst = worst.max(handed);
    }
    if worst == 0 {
        return 4;
    }
    (worst.div_ceil(budget) as u32).clamp(2, 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organize::Organization;
    use crate::run::run;
    use heteropipe_workloads::{registry, Pattern, PipelineBuilder, Scale};

    fn producer_consumer_pipeline() -> Pipeline {
        let mut b = PipelineBuilder::new("test/pc");
        let input = b.host("input", 4 << 20);
        let mid = b.gpu_temp("intermediate", 4 << 20); // exceeds the 1 MiB L2
        let out = b.result("out", 4 << 20);
        b.h2d(input);
        b.gpu("produce", 1 << 16, 20.0, 10.0)
            .reads(input, Pattern::Stream { passes: 1 })
            .writes(mid, Pattern::Stream { passes: 1 });
        b.gpu("consume", 1 << 16, 20.0, 10.0)
            .reads(mid, Pattern::Stream { passes: 1 })
            .writes(out, Pattern::Stream { passes: 1 });
        b.d2h(out);
        b.build()
    }

    #[test]
    fn fusion_merges_gpu_chains() {
        let p = producer_consumer_pipeline();
        let (fused, n) = fuse_adjacent_kernels(&p);
        assert_eq!(n, 1);
        assert_eq!(fused.compute_stages(), 1);
        let k = fused.stages.iter().find_map(Stage::as_compute).unwrap();
        assert_eq!(k.name, "produce+consume");
        assert_eq!(
            k.instructions,
            2 * p
                .stages
                .iter()
                .filter_map(Stage::as_compute)
                .next()
                .unwrap()
                .instructions
        );
        assert_eq!(fused.validate(), Ok(()));
    }

    #[test]
    fn fusion_skips_unrelated_kernels() {
        let mut b = PipelineBuilder::new("test/unrelated");
        let x = b.host("x", 1 << 20);
        let y = b.host("y", 1 << 20);
        b.gpu("a", 4096, 4.0, 0.0)
            .reads(x, Pattern::Stream { passes: 1 });
        b.gpu("b", 4096, 4.0, 0.0)
            .reads(y, Pattern::Stream { passes: 1 });
        let p = b.build();
        let (_, n) = fuse_adjacent_kernels(&p);
        assert_eq!(n, 0, "no producer-consumer relation, no fusion");
    }

    #[test]
    fn fusion_removes_offchip_spills() {
        let p = producer_consumer_pipeline();
        let (fused, _) = fuse_adjacent_kernels(&p);
        let cfg = SystemConfig::heterogeneous();
        let before = run(&p, &cfg, Organization::Serial, false);
        let after = run(&fused, &cfg, Organization::Serial, false);
        assert!(
            after.offchip_fetches < before.offchip_fetches,
            "fusion should keep the intermediate on chip: {} vs {}",
            after.offchip_fetches,
            before.offchip_fetches
        );
        assert!(after.roi <= before.roi);
    }

    #[test]
    fn auto_migrate_skips_control_slivers() {
        let p = registry::find("lonestar/bfs")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let (m, migrated) = auto_migrate(&p, &SystemConfig::heterogeneous());
        // The convergence checks are tiny: none should migrate.
        assert_eq!(migrated, 0);
        assert_eq!(m.name, p.name);
    }

    #[test]
    fn auto_migrate_takes_heavy_cpu_stages() {
        let p = registry::find("rodinia/dwt")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let (m, migrated) = auto_migrate(&p, &SystemConfig::heterogeneous());
        assert!(
            migrated >= 2,
            "dwt's pack/unpack should migrate: {migrated}"
        );
        assert!(m.name.ends_with("+migrated"));
        assert_eq!(m.validate(), Ok(()));
        // And it should actually be faster on the heterogeneous processor.
        let cfg = SystemConfig::heterogeneous();
        let before = run(&p, &cfg, Organization::Serial, false);
        let after = run(&m, &cfg, Organization::Serial, false);
        assert!(
            after.roi.as_secs_f64() < 0.8 * before.roi.as_secs_f64(),
            "{} vs {}",
            after.roi,
            before.roi
        );
    }

    #[test]
    fn full_migration_matches_validate_module_semantics() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let m = migrate_cpu_stages_to_gpu(&p);
        assert!(m
            .stages
            .iter()
            .filter_map(Stage::as_compute)
            .all(|c| c.exec == ExecKind::Gpu));
    }

    #[test]
    fn suggest_chunks_scales_with_intermediate_size() {
        let cfg = SystemConfig::heterogeneous();
        let small = producer_consumer_pipeline();
        // 4 MiB intermediate over the 512 KiB budget: 8 chunks.
        assert_eq!(suggest_chunks(&small, &cfg), 8);

        let mut b = PipelineBuilder::new("test/big-mid");
        let input = b.host("input", 4 << 20);
        let mid = b.gpu_temp("intermediate", 8 << 20);
        b.gpu("produce", 1 << 16, 4.0, 0.0)
            .reads(input, Pattern::Stream { passes: 1 })
            .writes(mid, Pattern::Stream { passes: 1 });
        b.gpu("consume", 1 << 16, 4.0, 0.0)
            .reads(mid, Pattern::Stream { passes: 1 })
            .writes(input, Pattern::Stream { passes: 1 });
        let big = b.build();
        // 8 MiB over 512 KiB budget: 16 chunks.
        assert_eq!(suggest_chunks(&big, &cfg), 16);
    }

    #[test]
    fn suggest_chunks_defaults_without_intermediates() {
        let mut b = PipelineBuilder::new("test/flat");
        let x = b.host("x", 1 << 20);
        b.gpu("k", 4096, 4.0, 0.0)
            .reads(x, Pattern::Stream { passes: 1 });
        let p = b.build();
        assert_eq!(suggest_chunks(&p, &SystemConfig::heterogeneous()), 4);
    }

    #[test]
    fn suggested_chunks_perform_well_for_kmeans() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::new(0.5))
            .unwrap();
        let cfg = SystemConfig::heterogeneous();
        let n = suggest_chunks(&p, &cfg);
        assert!((2..=64).contains(&n));
        let serial = run(&p, &cfg, Organization::Serial, false);
        let chunked = run(&p, &cfg, Organization::ChunkedParallel { chunks: n }, false);
        assert!(
            chunked.roi < serial.roi,
            "{} vs {}",
            chunked.roi,
            serial.roi
        );
    }
}
