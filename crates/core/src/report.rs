//! Run results: everything the paper's figures are derived from.

use heteropipe_sim::Ps;

use crate::classify::ClassCounts;
use crate::config::Platform;
use crate::footprint::TouchSet;
use crate::organize::Organization;

/// Busy time per component over the region of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComponentTimes {
    /// Copy engine (PCIe DMA or residual memcpy).
    pub copy: Ps,
    /// CPU cores (stages, launches, fault handling).
    pub cpu: Ps,
    /// GPU SMs.
    pub gpu: Ps,
}

impl ComponentTimes {
    /// The `P`, `C`, `G` of the paper's Eq. 1/2 as fractions of `roi`.
    pub fn portions(&self, roi: Ps) -> (f64, f64, f64) {
        (
            self.copy.fraction_of(roi),
            self.cpu.fraction_of(roi),
            self.gpu.fraction_of(roi),
        )
    }
}

/// Time during which exactly one combination of components was active
/// ("copy", "cpu+gpu", ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExclusiveSlice {
    /// `+`-joined component names, alphabetical.
    pub components: String,
    /// Duration of that exact activity combination.
    pub time: Ps,
}

/// Everything measured over one benchmark execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Benchmark name (`suite/bench`).
    pub benchmark: String,
    /// System it ran on.
    pub platform: Platform,
    /// Organization it ran under.
    pub organization: Organization,
    /// Region-of-interest run time.
    pub roi: Ps,
    /// Per-component busy time.
    pub busy: ComponentTimes,
    /// Exclusive activity breakdown (Fig. 3 / Fig. 6 bars).
    pub exclusive: Vec<ExclusiveSlice>,
    /// Line accesses issued per component, indexed by
    /// `Component::index()` (copy, cpu, gpu) — Fig. 5.
    pub accesses: [u64; 3],
    /// Off-chip line fetches.
    pub offchip_fetches: u64,
    /// Off-chip line writebacks.
    pub offchip_writebacks: u64,
    /// Total off-chip bytes (the `M` of Eq. 3).
    pub offchip_bytes: u64,
    /// Off-chip access classification (Fig. 9).
    pub classes: ClassCounts,
    /// Footprint by exact component subset (Fig. 4).
    pub footprint: Vec<(TouchSet, u64)>,
    /// Total distinct bytes touched.
    pub total_footprint: u64,
    /// GPU page faults taken (heterogeneous processor only).
    pub faults: u64,
    /// Launch/setup time not overlapped by GPU or copy activity — the
    /// `C_serial` of Eq. 1, measured exactly as the paper describes.
    pub c_serial: Ps,
    /// FLOPs retired on the CPU.
    pub cpu_flops: u64,
    /// FLOPs retired on the GPU.
    pub gpu_flops: u64,
    /// Coherent cache-to-cache transfers serviced (heterogeneous only).
    pub remote_hits: u64,
    /// Whether achieved off-chip bandwidth ran near the memory's limit
    /// (the `*` marker of Fig. 9).
    pub bw_limited: bool,
}

impl RunReport {
    /// GPU utilization: busy fraction of the ROI (the §II metric: kmeans
    /// baseline 18% rising to 80%).
    pub fn gpu_utilization(&self) -> f64 {
        self.busy.gpu.fraction_of(self.roi)
    }

    /// Total line accesses across components.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// The FLOP opportunity cost: the fraction of available FLOPs unused
    /// because a core type was idle (§II's footnote 1), given peak rates.
    pub fn flop_opportunity_cost(&self, cpu_peak: f64, gpu_peak: f64) -> f64 {
        let roi = self.roi.as_secs_f64();
        if roi <= 0.0 {
            return 0.0;
        }
        let available = (cpu_peak + gpu_peak) * roi;
        let used_window =
            cpu_peak * self.busy.cpu.as_secs_f64() + gpu_peak * self.busy.gpu.as_secs_f64();
        (1.0 - used_window / available).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portions_fraction_of_roi() {
        let ct = ComponentTimes {
            copy: Ps::from_millis(5),
            cpu: Ps::from_millis(3),
            gpu: Ps::from_millis(2),
        };
        let (p, c, g) = ct.portions(Ps::from_millis(10));
        assert!((p - 0.5).abs() < 1e-12);
        assert!((c - 0.3).abs() < 1e-12);
        assert!((g - 0.2).abs() < 1e-12);
    }

    fn dummy_report() -> RunReport {
        RunReport {
            benchmark: "test/x".into(),
            platform: Platform::DiscreteGpu,
            organization: Organization::Serial,
            roi: Ps::from_millis(10),
            busy: ComponentTimes {
                copy: Ps::from_millis(5),
                cpu: Ps::from_millis(3),
                gpu: Ps::from_millis(2),
            },
            exclusive: Vec::new(),
            accesses: [10, 20, 70],
            offchip_fetches: 50,
            offchip_writebacks: 10,
            offchip_bytes: 60 * 128,
            classes: ClassCounts::default(),
            footprint: Vec::new(),
            total_footprint: 0,
            faults: 0,
            c_serial: Ps::ZERO,
            cpu_flops: 0,
            gpu_flops: 0,
            remote_hits: 0,
            bw_limited: false,
        }
    }

    #[test]
    fn utilization_and_totals() {
        let r = dummy_report();
        assert!((r.gpu_utilization() - 0.2).abs() < 1e-12);
        assert_eq!(r.total_accesses(), 100);
    }

    #[test]
    fn opportunity_cost_bounds() {
        let r = dummy_report();
        let cost = r.flop_opportunity_cost(56.0e9, 358.4e9);
        assert!(cost > 0.0 && cost < 1.0);
        // Fully-busy GPU and CPU would have zero cost.
        let mut full = dummy_report();
        full.busy.cpu = Ps::from_millis(10);
        full.busy.gpu = Ps::from_millis(10);
        assert!(full.flop_opportunity_cost(56.0e9, 358.4e9).abs() < 1e-12);
    }
}
