//! Memory footprint tracking by component set (the paper's Fig. 4).
//!
//! Records which of {copy engine, CPU, GPU} touched each cache line over the
//! region of interest, then reports bytes per exact component subset. The
//! copy version's large "copy-touched" portions and the limited-copy
//! version's shrunken footprint both fall out of this map.

use std::collections::HashMap;

use heteropipe_mem::access::Component;
use heteropipe_mem::{LineAddr, LINE_BYTES};

/// Which components touched a line (bitmask over [`Component`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TouchSet(u8);

impl TouchSet {
    /// The empty set.
    pub const EMPTY: TouchSet = TouchSet(0);

    /// The set containing exactly `c`.
    pub fn of(c: Component) -> TouchSet {
        TouchSet(1 << c.index())
    }

    /// This set with `c` added.
    pub fn with(self, c: Component) -> TouchSet {
        TouchSet(self.0 | (1 << c.index()))
    }

    /// Whether `c` is in the set.
    pub fn contains(self, c: Component) -> bool {
        self.0 & (1 << c.index()) != 0
    }

    /// The raw component bitmask (for serialization).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds a set from a raw bitmask produced by [`bits`](Self::bits).
    pub fn from_bits(bits: u8) -> TouchSet {
        TouchSet(bits)
    }

    /// All seven non-empty subsets, in a stable report order: single
    /// components first, then pairs, then all three.
    pub fn all_subsets() -> [TouchSet; 7] {
        let c = TouchSet::of(Component::Copy);
        let p = TouchSet::of(Component::Cpu);
        let g = TouchSet::of(Component::Gpu);
        [
            c,
            p,
            g,
            c.with(Component::Cpu),
            c.with(Component::Gpu),
            p.with(Component::Gpu),
            c.with(Component::Cpu).with(Component::Gpu),
        ]
    }

    /// A label like "Copy+GPU".
    pub fn label(self) -> String {
        let mut parts = Vec::new();
        for c in Component::ALL {
            if self.contains(c) {
                parts.push(c.to_string());
            }
        }
        if parts.is_empty() {
            "none".to_owned()
        } else {
            parts.join("+")
        }
    }
}

/// Accumulates line touches per component.
#[derive(Debug, Default)]
pub struct FootprintTracker {
    lines: HashMap<u64, TouchSet>,
}

impl FootprintTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        FootprintTracker::default()
    }

    /// Records that `component` touched `line`.
    pub fn touch(&mut self, component: Component, line: LineAddr) {
        let e = self.lines.entry(line.0).or_insert(TouchSet::EMPTY);
        *e = e.with(component);
    }

    /// Total distinct bytes touched by anyone.
    pub fn total_bytes(&self) -> u64 {
        self.lines.len() as u64 * LINE_BYTES
    }

    /// Bytes touched by exactly the subset `s` (and no other component).
    pub fn bytes_exactly(&self, s: TouchSet) -> u64 {
        self.lines.values().filter(|&&t| t == s).count() as u64 * LINE_BYTES
    }

    /// Bytes touched by `c` (alone or with others).
    pub fn bytes_touched_by(&self, c: Component) -> u64 {
        self.lines.values().filter(|t| t.contains(c)).count() as u64 * LINE_BYTES
    }

    /// The full exact-subset breakdown in [`TouchSet::all_subsets`] order.
    pub fn breakdown(&self) -> Vec<(TouchSet, u64)> {
        TouchSet::all_subsets()
            .into_iter()
            .map(|s| (s, self.bytes_exactly(s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touches_accumulate_per_line() {
        let mut f = FootprintTracker::new();
        f.touch(Component::Copy, LineAddr(1));
        f.touch(Component::Gpu, LineAddr(1));
        f.touch(Component::Cpu, LineAddr(2));
        assert_eq!(f.total_bytes(), 2 * LINE_BYTES);
        let copy_gpu = TouchSet::of(Component::Copy).with(Component::Gpu);
        assert_eq!(f.bytes_exactly(copy_gpu), LINE_BYTES);
        assert_eq!(f.bytes_exactly(TouchSet::of(Component::Cpu)), LINE_BYTES);
        assert_eq!(f.bytes_touched_by(Component::Gpu), LINE_BYTES);
    }

    #[test]
    fn breakdown_partitions_total() {
        let mut f = FootprintTracker::new();
        for i in 0..100 {
            f.touch(Component::Copy, LineAddr(i));
        }
        for i in 0..60 {
            f.touch(Component::Gpu, LineAddr(i));
        }
        for i in 0..10 {
            f.touch(Component::Cpu, LineAddr(i));
        }
        let total: u64 = f.breakdown().into_iter().map(|(_, b)| b).sum();
        assert_eq!(total, f.total_bytes());
        // 40 lines copy-only, 50 copy+gpu, 10 all three.
        assert_eq!(
            f.bytes_exactly(TouchSet::of(Component::Copy)),
            40 * LINE_BYTES
        );
    }

    #[test]
    fn labels() {
        assert_eq!(TouchSet::of(Component::Copy).label(), "Copy");
        assert_eq!(
            TouchSet::of(Component::Cpu).with(Component::Gpu).label(),
            "CPU+GPU"
        );
        assert_eq!(TouchSet::EMPTY.label(), "none");
        assert_eq!(TouchSet::all_subsets().len(), 7);
    }

    #[test]
    fn idempotent_touch() {
        let mut f = FootprintTracker::new();
        for _ in 0..5 {
            f.touch(Component::Gpu, LineAddr(7));
        }
        assert_eq!(f.total_bytes(), LINE_BYTES);
    }
}
