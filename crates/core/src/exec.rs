//! Experiment execution: the seam between the experiment drivers and
//! whatever actually runs each simulation.
//!
//! Every driver in [`crate::experiments`] describes its work as
//! [`JobSpec`]s and hands them to an [`Executor`]. The in-crate
//! [`DirectExecutor`] simply calls [`crate::run::run`] (in parallel for
//! batches); the `heteropipe-engine` crate layers a content-addressed
//! result cache and run metrics on top of the same trait. Keeping the trait
//! here (rather than in the engine) lets the drivers stay engine-agnostic
//! without a dependency cycle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use heteropipe_workloads::Pipeline;

use crate::config::SystemConfig;
use crate::organize::Organization;
use crate::report::RunReport;
use crate::run::run;

/// One simulation to execute: the full run key.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec<'a> {
    /// The lowered-from pipeline.
    pub pipeline: &'a Pipeline,
    /// The system to run it on.
    pub config: &'a SystemConfig,
    /// The schedule to run it under.
    pub organization: Organization,
    /// Whether the benchmark suffers allocation misalignment (Fig. 5 `*`).
    pub misalignment_sensitive: bool,
}

/// A failed job: which batch index failed and the panic it failed with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Index of the job within its batch.
    pub index: usize,
    /// The panic payload, rendered.
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} failed: {}", self.index, self.message)
    }
}

impl std::error::Error for JobError {}

/// Something that can execute simulation jobs.
pub trait Executor: Sync {
    /// Executes one job.
    fn execute(&self, job: &JobSpec<'_>) -> RunReport;

    /// Executes a batch. Results come back in job order; a job that panics
    /// yields an `Err` carrying its index and message instead of tearing
    /// down the batch.
    fn execute_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<Result<RunReport, JobError>> {
        par_map(jobs, 1, |j| self.execute(j))
    }
}

/// The plain executor: runs every job directly, batches fanned out over a
/// bounded work-queue of OS threads.
#[derive(Debug, Clone)]
pub struct DirectExecutor {
    jobs: usize,
}

impl DirectExecutor {
    /// An executor using all available parallelism for batches.
    pub fn new() -> Self {
        DirectExecutor {
            jobs: default_parallelism(),
        }
    }

    /// An executor running at most `jobs` simulations concurrently
    /// (minimum 1).
    pub fn with_jobs(jobs: usize) -> Self {
        DirectExecutor { jobs: jobs.max(1) }
    }
}

impl Default for DirectExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor for DirectExecutor {
    fn execute(&self, job: &JobSpec<'_>) -> RunReport {
        run(
            job.pipeline,
            job.config,
            job.organization,
            job.misalignment_sensitive,
        )
    }

    fn execute_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<Result<RunReport, JobError>> {
        par_map(jobs, self.jobs, |j| self.execute(j))
    }
}

/// The parallelism [`DirectExecutor::new`] uses: one worker per available
/// hardware thread.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Applies `f` to every item over a work-queue of at most `jobs` worker
/// threads. Results are returned in item order regardless of completion
/// order; a panicking `f` becomes an `Err` for that item only.
pub fn par_map<T: Sync, R: Send>(
    items: &[T],
    jobs: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<Result<R, JobError>> {
    let n = items.len();
    let workers = jobs.max(1).min(n.max(1));
    let results: Mutex<Vec<Option<Result<R, JobError>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);

    let work = |_worker: usize| loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&items[i]))).map_err(
            |payload| JobError {
                index: i,
                message: panic_message(payload),
            },
        );
        results.lock().unwrap()[i] = Some(out);
    };

    if workers <= 1 {
        work(0);
    } else {
        std::thread::scope(|s| {
            for w in 0..workers {
                s.spawn(move || work(w));
            }
        });
    }

    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("work-queue visited every item"))
        .collect()
}

/// Renders a caught panic payload (from `std::panic::catch_unwind`) as a
/// best-effort message string. Shared by [`par_map`] and callers that run
/// their own `catch_unwind` (the engine's per-attempt panic isolation).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe_workloads::{registry, Scale};

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 3, 8] {
            let out = par_map(&items, jobs, |&x| x * 2);
            let vals: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(vals, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_captures_panics_per_item() {
        let items = vec![1u64, 2, 3, 4];
        let out = par_map(&items, 2, |&x| {
            if x == 3 {
                panic!("item three exploded");
            }
            x
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1], Ok(2));
        let err = out[2].as_ref().unwrap_err();
        assert_eq!(err.index, 2);
        assert!(err.message.contains("item three exploded"), "{err}");
        assert_eq!(out[3], Ok(4));
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        let one = par_map(&[7u64], 4, |&x| x + 1);
        assert_eq!(one, vec![Ok(8)]);
    }

    #[test]
    fn direct_executor_matches_run() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = JobSpec {
            pipeline: &p,
            config: &cfg,
            organization: Organization::Serial,
            misalignment_sensitive: false,
        };
        let exec = DirectExecutor::with_jobs(2);
        let direct = exec.execute(&spec);
        let expected = run(&p, &cfg, Organization::Serial, false);
        assert_eq!(direct, expected);
        let batch = exec.execute_batch(&[spec, spec]);
        assert_eq!(batch.len(), 2);
        for r in batch {
            assert_eq!(r.unwrap(), expected);
        }
    }
}
