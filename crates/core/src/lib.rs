//! # heteropipe
//!
//! A reproduction of *"GPU Computing Pipeline Inefficiencies and
//! Optimization Opportunities in Heterogeneous CPU-GPU Processors"*
//! (Hestness, Keckler, Wood — IISWC 2015) as a Rust library.
//!
//! The study runs 46 GPU computing benchmarks on two simulated systems —
//! a discrete GPU system with explicit PCIe memory copies and a
//! cache-coherent heterogeneous CPU-GPU processor without them — and
//! quantifies where bulk-synchronous GPU software pipelines waste cores and
//! caches. This crate provides:
//!
//! * [`config`] — the Table I system configurations.
//! * [`organize`] — lowering benchmark pipelines onto platforms and
//!   organizations (serial, async copy streams, chunked producer-consumer).
//! * [`run`] — the hybrid functional/analytical system runner.
//! * [`classify`] — the off-chip access taxonomy (spills, contention).
//! * [`footprint`] — footprint tracking by component set.
//! * [`models`] — the Eq. 1 component-overlap and Eq. 2-4 migrated-compute
//!   analytical models.
//! * [`experiments`] — one driver per paper table/figure.
//! * [`render`] — plain-text tables, stacked bars, CSV.
//!
//! # Quickstart
//!
//! ```
//! use heteropipe::{run, Organization, SystemConfig};
//! use heteropipe_workloads::{registry, Scale};
//!
//! let kmeans = registry::find("rodinia/kmeans").unwrap()
//!     .pipeline(Scale::TEST).unwrap();
//! let discrete = run::run(&kmeans, &SystemConfig::discrete(),
//!                         Organization::Serial, false);
//! let hetero = run::run(&kmeans, &SystemConfig::heterogeneous(),
//!                       Organization::Serial, false);
//! assert!(hetero.roi < discrete.roi); // removing copies helps kmeans
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod config;
pub mod exec;
pub mod experiments;
pub mod footprint;
pub mod models;
pub mod organize;
pub mod render;
pub mod report;
pub mod run;
pub mod trace;
pub mod transform;

pub use classify::{AccessClass, ClassCounts, OffchipClassifier};
pub use config::{Platform, SystemConfig};
pub use exec::{DirectExecutor, Executor, JobError, JobSpec};
pub use footprint::{FootprintTracker, TouchSet};
pub use models::{component_overlap, estimates, migrated_compute, Estimates};
pub use organize::{lower, Organization, Server, Task, TaskBody, TaskGraph};
pub use report::{ComponentTimes, ExclusiveSlice, RunReport};
pub use transform::{
    auto_migrate, fuse_adjacent_kernels, migrate_cpu_stages_to_gpu, suggest_chunks,
};
