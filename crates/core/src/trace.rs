//! Task-level execution traces and Chrome-trace export.
//!
//! [`run_traced`](crate::run::run_traced) records one [`TaskSpan`] per
//! executed task; [`to_chrome_json`] serializes them in the Chrome tracing
//! (`chrome://tracing` / Perfetto) JSON array format, with one row per
//! component, so a run's copy/CPU/GPU interleaving can be inspected
//! visually. The format is hand-rolled (a flat array of complete events) to
//! stay within the workspace's dependency budget.

use std::fmt::Write as _;

use heteropipe_sim::Ps;

use crate::organize::Server;

/// One executed task's placement in time.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpan {
    /// Stage name from the pipeline ("distance_assign_0", "copy", ...).
    pub name: String,
    /// Which component ran it.
    pub server: Server,
    /// Chunk `(i, n)`.
    pub chunk: (u32, u32),
    /// Start time.
    pub start: Ps,
    /// End time.
    pub end: Ps,
}

impl TaskSpan {
    /// The span's duration.
    pub fn duration(&self) -> Ps {
        self.end.saturating_sub(self.start)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes spans as a Chrome tracing JSON array (complete "X" events,
/// microsecond timestamps, one thread id per component).
///
/// # Examples
///
/// ```
/// use heteropipe::trace::{to_chrome_json, TaskSpan};
/// use heteropipe::Server;
/// use heteropipe_sim::Ps;
///
/// let spans = vec![TaskSpan {
///     name: "kernel".into(),
///     server: Server::Gpu,
///     chunk: (0, 1),
///     start: Ps::ZERO,
///     end: Ps::from_micros(5),
/// }];
/// let json = to_chrome_json("demo", &spans);
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.contains("\"dur\":5"));
/// ```
pub fn to_chrome_json(run_name: &str, spans: &[TaskSpan]) -> String {
    let mut out = String::from("[\n");
    let tid = |s: Server| match s {
        Server::Copy => 0,
        Server::Cpu => 1,
        Server::Gpu => 2,
    };
    for (label, t) in [("copy-engine", 0), ("cpu", 1), ("gpu", 2)] {
        let _ = writeln!(
            out,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{t},\"args\":{{\"name\":\"{label}\"}}}},"
        );
    }
    for (i, s) in spans.iter().enumerate() {
        let name = if s.chunk.1 > 1 {
            format!("{} [{}/{}]", s.name, s.chunk.0 + 1, s.chunk.1)
        } else {
            s.name.clone()
        };
        let _ = write!(
            out,
            "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            escape(&name),
            escape(run_name),
            tid(s.server),
            s.start.as_micros_f64(),
            s.duration().as_micros_f64().max(0.001),
        );
        out.push_str(if i + 1 == spans.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, server: Server, start_us: u64, end_us: u64) -> TaskSpan {
        TaskSpan {
            name: name.into(),
            server,
            chunk: (0, 1),
            start: Ps::from_micros(start_us),
            end: Ps::from_micros(end_us),
        }
    }

    #[test]
    fn duration_is_end_minus_start() {
        let s = span("x", Server::Cpu, 3, 10);
        assert_eq!(s.duration(), Ps::from_micros(7));
    }

    #[test]
    fn json_is_wellformed_array() {
        let spans = vec![
            span("h2d", Server::Copy, 0, 5),
            span("kernel", Server::Gpu, 5, 25),
        ];
        let json = to_chrome_json("test", &spans);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("thread_name").count(), 3);
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn chunked_tasks_are_labelled() {
        let mut s = span("k", Server::Gpu, 0, 1);
        s.chunk = (2, 8);
        let json = to_chrome_json("t", &[s]);
        assert!(json.contains("k [3/8]"));
    }

    #[test]
    fn names_are_escaped() {
        let s = span("weird\"name", Server::Cpu, 0, 1);
        let json = to_chrome_json("t", &[s]);
        assert!(json.contains("weird\\\"name"));
    }

    #[test]
    fn real_run_produces_a_trace() {
        use crate::{run, Organization, SystemConfig};
        use heteropipe_workloads::{registry, Scale};
        let p = registry::find("rodinia/backprop")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let (report, spans) =
            run::run_traced(&p, &SystemConfig::discrete(), Organization::Serial, false);
        assert_eq!(
            spans.len(),
            p.stages.len(),
            "serial run: one span per stage"
        );
        // Spans are within the ROI and non-overlapping per server.
        for s in &spans {
            assert!(s.end <= report.roi);
        }
        let json = to_chrome_json(&report.benchmark, &spans);
        assert!(json.contains("layerforward"));
    }
}
