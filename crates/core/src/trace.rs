//! Task-level execution traces and Chrome-trace export.
//!
//! [`run_traced`](crate::run::run_traced) records one [`TaskSpan`] per
//! executed task; [`to_chrome_json`] serializes them in the Chrome tracing
//! (`chrome://tracing` / Perfetto) JSON array format, with one row per
//! component, so a run's copy/CPU/GPU interleaving can be inspected
//! visually. Rendering goes through the shared event builder in
//! `heteropipe-obs` (which also escapes the full JSON control-character
//! range, not just quotes and backslashes); [`span_events`] exposes the
//! individually rendered events so the engine can splice a run's simulated
//! component timeline into its job-lifecycle traces.

use heteropipe_obs::TraceBuilder;
use heteropipe_sim::Ps;

use crate::organize::Server;

/// One executed task's placement in time.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpan {
    /// Stage name from the pipeline ("distance_assign_0", "copy", ...).
    pub name: String,
    /// Which component ran it.
    pub server: Server,
    /// Chunk `(i, n)`.
    pub chunk: (u32, u32),
    /// Start time.
    pub start: Ps,
    /// End time.
    pub end: Ps,
}

impl TaskSpan {
    /// The span's duration.
    pub fn duration(&self) -> Ps {
        self.end.saturating_sub(self.start)
    }
}

/// Renders spans as individual Chrome-trace event objects on pid 1:
/// three `thread_name` metadata rows (copy-engine / cpu / gpu), then one
/// complete "X" event per span with `cat` set to `run_name`. Callers that
/// want a standalone file use [`to_chrome_json`]; the engine keeps these
/// events and merges them with its own wall-clock phases.
pub fn span_events(run_name: &str, spans: &[TaskSpan]) -> Vec<String> {
    let tid = |s: Server| match s {
        Server::Copy => 0,
        Server::Cpu => 1,
        Server::Gpu => 2,
    };
    let mut b = TraceBuilder::new();
    for (label, t) in [("copy-engine", 0), ("cpu", 1), ("gpu", 2)] {
        b.thread_name(1, t, label);
    }
    for s in spans {
        let name = if s.chunk.1 > 1 {
            format!("{} [{}/{}]", s.name, s.chunk.0 + 1, s.chunk.1)
        } else {
            s.name.clone()
        };
        b.complete(
            1,
            tid(s.server),
            &name,
            run_name,
            s.start.as_micros_f64(),
            s.duration().as_micros_f64().max(0.001),
        );
    }
    b.into_events()
}

/// Serializes spans as a Chrome tracing JSON array (complete "X" events,
/// microsecond timestamps, one thread id per component).
///
/// # Examples
///
/// ```
/// use heteropipe::trace::{to_chrome_json, TaskSpan};
/// use heteropipe::Server;
/// use heteropipe_sim::Ps;
///
/// let spans = vec![TaskSpan {
///     name: "kernel".into(),
///     server: Server::Gpu,
///     chunk: (0, 1),
///     start: Ps::ZERO,
///     end: Ps::from_micros(5),
/// }];
/// let json = to_chrome_json("demo", &spans);
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.contains("\"dur\":5"));
/// ```
pub fn to_chrome_json(run_name: &str, spans: &[TaskSpan]) -> String {
    let mut b = TraceBuilder::new();
    for e in span_events(run_name, spans) {
        b.push_raw(e);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, server: Server, start_us: u64, end_us: u64) -> TaskSpan {
        TaskSpan {
            name: name.into(),
            server,
            chunk: (0, 1),
            start: Ps::from_micros(start_us),
            end: Ps::from_micros(end_us),
        }
    }

    #[test]
    fn duration_is_end_minus_start() {
        let s = span("x", Server::Cpu, 3, 10);
        assert_eq!(s.duration(), Ps::from_micros(7));
    }

    #[test]
    fn json_is_wellformed_array() {
        let spans = vec![
            span("h2d", Server::Copy, 0, 5),
            span("kernel", Server::Gpu, 5, 25),
        ];
        let json = to_chrome_json("test", &spans);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("thread_name").count(), 3);
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn empty_span_list_is_still_wellformed() {
        let json = to_chrome_json("t", &[]);
        assert_eq!(json.matches("thread_name").count(), 3);
        assert!(!json.contains(",\n]"), "no trailing comma after metadata");
    }

    #[test]
    fn chunked_tasks_are_labelled() {
        let mut s = span("k", Server::Gpu, 0, 1);
        s.chunk = (2, 8);
        let json = to_chrome_json("t", &[s]);
        assert!(json.contains("k [3/8]"));
    }

    #[test]
    fn names_are_escaped() {
        let s = span("weird\"name", Server::Cpu, 0, 1);
        let json = to_chrome_json("t", &[s]);
        assert!(json.contains("weird\\\"name"));
    }

    /// Control characters in stage names must not survive raw into the
    /// JSON output (the old escaper only handled `\` and `"`).
    #[test]
    fn control_characters_are_escaped() {
        let s = span("tab\there\nand\u{1}bell\u{7}", Server::Gpu, 0, 1);
        let json = to_chrome_json("run\rname", &[s]);
        assert!(
            !json.chars().any(|c| (c as u32) < 0x20 && c != '\n'),
            "only the array's own newlines may appear unescaped"
        );
        assert!(json.contains("tab\\there\\nand\\u0001bell\\u0007"));
        assert!(json.contains("run\\rname"));
    }

    #[test]
    fn span_events_match_joined_export() {
        let spans = vec![span("h2d", Server::Copy, 0, 5)];
        let events = span_events("t", &spans);
        assert_eq!(events.len(), 4, "3 metadata rows + 1 span");
        let json = to_chrome_json("t", &spans);
        for e in &events {
            assert!(json.contains(e.as_str()), "event {e} present in export");
        }
    }

    #[test]
    fn real_run_produces_a_trace() {
        use crate::{run, Organization, SystemConfig};
        use heteropipe_workloads::{registry, Scale};
        let p = registry::find("rodinia/backprop")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let (report, spans) =
            run::run_traced(&p, &SystemConfig::discrete(), Organization::Serial, false);
        assert_eq!(
            spans.len(),
            p.stages.len(),
            "serial run: one span per stage"
        );
        // Spans are within the ROI and non-overlapping per server.
        for s in &spans {
            assert!(s.end <= report.roi);
        }
        let json = to_chrome_json(&report.benchmark, &spans);
        assert!(json.contains("layerforward"));
    }
}
