//! Lowering a benchmark pipeline onto a platform and organization.
//!
//! This is the porting step the paper performs on real benchmarks, made
//! explicit:
//!
//! * **Copy elimination** — on the heterogeneous processor, elidable copies
//!   vanish (CUDA-library interception plus manual fixes); non-elidable
//!   copies become on-chip memcpys (the "limited-copy" residue).
//! * **Kernel fission + asynchronous streams** ([`Organization::AsyncStreams`])
//!   — on the discrete system, chunk each `[H2D*, kernel, D2H*]` group so
//!   transfers overlap execution (§II's 3-wide stream organization).
//! * **Chunked producer-consumer** ([`Organization::ChunkedParallel`]) — on
//!   the heterogeneous processor, chunk every data-parallel stage and
//!   synchronize chunk-wise through memory ("data ready" flags), letting
//!   consumers start while producers still run and letting small chunks pass
//!   through cache (§II's "Parallel" and "Parallel + Cache").
//!
//! The result is a task DAG with data dependencies; execution order within a
//! component is decided by the runner's serial servers.

use std::collections::HashMap;
use std::fmt;

use heteropipe_mem::{AddrRange, AddressSpace, Allocator};
use heteropipe_workloads::{BufferId, BufferInit, CopyDir, ExecKind, Pipeline, Stage};

use crate::config::{Platform, SystemConfig};

/// How the benchmark's stages are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Organization {
    /// Bulk-synchronous, exactly as written: one stage at a time.
    Serial,
    /// Kernel fission + asynchronous copy streams (discrete system).
    AsyncStreams {
        /// Stream width (the paper validates 3-4).
        streams: u32,
    },
    /// Chunked producer-consumer with in-memory signals (heterogeneous
    /// processor).
    ChunkedParallel {
        /// Chunks per data-parallel stage.
        chunks: u32,
    },
}

impl fmt::Display for Organization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Organization::Serial => write!(f, "serial"),
            Organization::AsyncStreams { streams } => write!(f, "async-streams({streams})"),
            Organization::ChunkedParallel { chunks } => write!(f, "chunked-parallel({chunks})"),
        }
    }
}

/// A buffer's physical materialization on a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedBuffer {
    /// CPU-space instance (discrete) or the single shared instance
    /// (heterogeneous).
    pub host: Option<AddrRange>,
    /// GPU-space instance (discrete only).
    pub dev: Option<AddrRange>,
}

impl ResolvedBuffer {
    /// The range CPU stages and the host side of copies use.
    pub fn cpu_range(&self) -> AddrRange {
        self.host
            .or(self.dev)
            .expect("buffer materialized somewhere")
    }

    /// The range GPU kernels and the device side of copies use.
    pub fn gpu_range(&self) -> AddrRange {
        self.dev
            .or(self.host)
            .expect("buffer materialized somewhere")
    }
}

/// Which serial server executes a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Server {
    /// The CPU cores.
    Cpu,
    /// The GPU.
    Gpu,
    /// The copy engine (PCIe DMA, or the memcpy path for residual copies).
    Copy,
}

/// Index of a task in a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// What a task does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskBody {
    /// Execute (a chunk of) the compute stage at `stage` in the original
    /// pipeline.
    Compute {
        /// Index into `Pipeline::stages`.
        stage: usize,
    },
    /// Perform (a chunk of) a PCIe DMA copy.
    DmaCopy {
        /// Index into `Pipeline::stages`.
        stage: usize,
    },
    /// Perform a residual copy as an on-chip memcpy (heterogeneous only).
    SharedMemcpy {
        /// Index into `Pipeline::stages`.
        stage: usize,
    },
}

impl TaskBody {
    /// The original pipeline stage index.
    pub fn stage(&self) -> usize {
        match *self {
            TaskBody::Compute { stage }
            | TaskBody::DmaCopy { stage }
            | TaskBody::SharedMemcpy { stage } => stage,
        }
    }
}

/// One schedulable unit.
#[derive(Debug, Clone)]
pub struct Task {
    /// Position in the graph (also the deterministic tie-break priority).
    pub id: TaskId,
    /// What to do.
    pub body: TaskBody,
    /// This task's chunk `(i, n)` of its stage.
    pub chunk: (u32, u32),
    /// Post-elision sequential stage number, shared by all chunks of one
    /// stage — the classifier's pipeline-stage clock.
    pub seq_stage: u32,
    /// Tasks that must complete first.
    pub deps: Vec<TaskId>,
}

impl Task {
    /// Which server runs this task (GPU kernels on the GPU, compute stages
    /// on the CPU, all copies on the copy engine).
    pub fn server(&self, pipeline: &Pipeline) -> Server {
        match self.body {
            TaskBody::Compute { stage } => {
                match pipeline.stages[stage]
                    .as_compute()
                    .expect("compute stage")
                    .exec
                {
                    ExecKind::Cpu => Server::Cpu,
                    ExecKind::Gpu => Server::Gpu,
                }
            }
            TaskBody::DmaCopy { .. } | TaskBody::SharedMemcpy { .. } => Server::Copy,
        }
    }
}

/// The lowered form of a pipeline: resolved buffers plus the task DAG.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    /// One entry per pipeline buffer.
    pub buffers: Vec<ResolvedBuffer>,
    /// The tasks in creation (priority) order.
    pub tasks: Vec<Task>,
    /// Number of surviving (post-elision) stages.
    pub stage_count: u32,
}

/// One recorded access for dependency tracking: who, from which stage,
/// which chunk, and whether the access followed the stage's chunking.
#[derive(Debug, Clone, Copy)]
struct AccessRecord {
    task: TaskId,
    stage: usize,
    chunk_i: u32,
    chunk_n: u32,
    follows: bool,
}

impl AccessRecord {
    /// Whether an access to chunk `(i, n)` with `follows` chunking is
    /// guaranteed disjoint from this record (same chunk grid, different
    /// chunk).
    fn disjoint_from(&self, i: u32, n: u32, follows: bool) -> bool {
        self.follows && follows && self.chunk_n == n && self.chunk_i != i
    }
}

/// Tracks, per (buffer, side), the current writing stage's chunks and the
/// readers of that data, for chunk-aware dependency edges. When a new stage
/// starts writing the buffer, the previous writers and readers become the
/// hazard set it must wait for.
#[derive(Default)]
struct BufTrack {
    writers: Vec<AccessRecord>,
    readers: Vec<AccessRecord>,
}

/// The memory side a dependency is tracked on (host and device copies of a
/// mirrored buffer are distinct data in the discrete system).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Side {
    Host,
    Dev,
}

/// Lowers `pipeline` for `config` under `org`.
///
/// `misalignment_sensitive` is the benchmark's Fig. 5 `*` flag: on the
/// heterogeneous processor with the default (non-aligning) allocator, its
/// shared buffers lose line alignment.
///
/// # Examples
///
/// ```
/// use heteropipe::{lower, Organization, SystemConfig};
/// use heteropipe_workloads::{registry, Scale};
///
/// let p = registry::find("rodinia/kmeans").unwrap()
///     .pipeline(Scale::TEST).unwrap();
/// // Copy elision: the heterogeneous lowering has fewer tasks.
/// let d = lower(&p, &SystemConfig::discrete(), Organization::Serial, false);
/// let h = lower(&p, &SystemConfig::heterogeneous(), Organization::Serial, false);
/// assert!(h.tasks.len() < d.tasks.len());
/// ```
///
/// # Panics
///
/// Panics if the organization is invalid for the platform (async streams
/// need a copy engine; chunked producer-consumer needs coherent shared
/// memory).
pub fn lower(
    pipeline: &Pipeline,
    config: &SystemConfig,
    org: Organization,
    misalignment_sensitive: bool,
) -> TaskGraph {
    match (config.platform, org) {
        (Platform::DiscreteGpu, Organization::ChunkedParallel { .. }) => {
            panic!("chunked producer-consumer requires the heterogeneous processor")
        }
        (Platform::Heterogeneous, Organization::AsyncStreams { .. }) => {
            panic!("asynchronous copy streams require the discrete system")
        }
        _ => {}
    }

    // --- Buffer resolution -------------------------------------------------
    let mut alloc = Allocator::new();
    let buffers: Vec<ResolvedBuffer> = pipeline
        .buffers
        .iter()
        .map(|b| match config.platform {
            Platform::DiscreteGpu => {
                let host = (b.mirrored || b.init == BufferInit::Host)
                    .then(|| alloc.alloc(AddressSpace::Cpu, b.bytes, true));
                let dev = Some(alloc.alloc(AddressSpace::Gpu, b.bytes, true));
                ResolvedBuffer { host, dev }
            }
            Platform::Heterogeneous => {
                let aligned = config.aligned_allocator || !misalignment_sensitive || !b.mirrored;
                ResolvedBuffer {
                    host: Some(alloc.alloc(AddressSpace::Cpu, b.bytes, aligned)),
                    dev: None,
                }
            }
        })
        .collect();

    // --- Stage selection (copy elision) ------------------------------------
    let hetero = config.platform == Platform::Heterogeneous;
    let surviving: Vec<usize> = pipeline
        .stages
        .iter()
        .enumerate()
        .filter(|(_, s)| match s {
            Stage::Copy(c) => !(hetero && c.elidable),
            Stage::Compute(_) => true,
        })
        .map(|(i, _)| i)
        .collect();

    let mut builder = GraphBuilder {
        pipeline,
        hetero,
        tasks: Vec::new(),
        track: HashMap::new(),
        seq_of_stage: HashMap::new(),
        seq: 0,
        serial_chain: matches!(org, Organization::Serial),
        last_task: None,
    };

    match org {
        Organization::Serial => {
            for &s in &surviving {
                builder.add_chunk(s, 0, 1);
            }
        }
        Organization::ChunkedParallel { chunks } => {
            for &s in &surviving {
                let n = match &pipeline.stages[s] {
                    Stage::Compute(c) if c.chunkable => chunks,
                    _ => 1,
                };
                for i in 0..n {
                    builder.add_chunk(s, i, n);
                }
            }
        }
        Organization::AsyncStreams { streams } => {
            // Detect fission groups and emit their chunks *interleaved*
            // (chunk-major), the order a stream queue would see, so the
            // serial copy engine services stream i's transfers before
            // stream i+1's.
            let mut i = 0;
            while i < surviving.len() {
                match fission_group(pipeline, &surviving[i..]) {
                    Some(len) => {
                        for chunk in 0..streams {
                            for &s in &surviving[i..i + len] {
                                builder.add_chunk(s, chunk, streams);
                            }
                        }
                        i += len;
                    }
                    None => {
                        builder.add_chunk(surviving[i], 0, 1);
                        i += 1;
                    }
                }
            }
        }
    }

    let tasks = builder.tasks;
    let stage_count = builder.seq;
    TaskGraph {
        buffers,
        tasks,
        stage_count,
    }
}

/// If `rest` starts with a fissionable group, returns its stage count.
/// A group is `[H2D copies feeding K][K: chunkable GPU kernel][D2H copies
/// reading K's outputs][optional chunkable CPU consumer of those outputs]`
/// — at least one copy must be present for fission to buy anything. The
/// trailing CPU consumer is chunked too: the paper's §V-A validation chunks
/// the consumer code so it processes each streamed chunk as it lands.
fn fission_group(pipeline: &Pipeline, rest: &[usize]) -> Option<usize> {
    let mut idx = 0;
    let mut h2d_bufs = Vec::new();
    while idx < rest.len() {
        match &pipeline.stages[rest[idx]] {
            Stage::Copy(c) if c.dir == CopyDir::H2D => {
                h2d_bufs.push(c.buf);
                idx += 1;
            }
            _ => break,
        }
    }
    let kernel = match pipeline.stages.get(*rest.get(idx)?)? {
        Stage::Compute(c) if c.exec == ExecKind::Gpu && c.chunkable => c,
        _ => return None,
    };
    // The H2Ds must feed the kernel (or there must be trailing D2Hs).
    let kernel_reads: Vec<BufferId> = kernel.patterns.iter().map(|p| p.buf).collect();
    if !h2d_bufs.iter().all(|b| kernel_reads.contains(b)) {
        return None;
    }
    let kernel_writes: Vec<BufferId> = kernel
        .patterns
        .iter()
        .filter(|p| p.kind.is_write())
        .map(|p| p.buf)
        .collect();
    let mut end = idx + 1;
    let mut d2h_bufs = Vec::new();
    while end < rest.len() {
        match &pipeline.stages[rest[end]] {
            Stage::Copy(c) if c.dir == CopyDir::D2H && kernel_writes.contains(&c.buf) => {
                d2h_bufs.push(c.buf);
                end += 1;
            }
            _ => break,
        }
    }
    if h2d_bufs.is_empty() && end == idx + 1 {
        return None; // no copies to overlap
    }
    // A chunkable CPU stage consuming the streamed-back outputs joins the
    // group so it can process chunks as they arrive.
    if !d2h_bufs.is_empty() {
        if let Some(&s) = rest.get(end) {
            if let Stage::Compute(c) = &pipeline.stages[s] {
                let consumes_stream = c
                    .patterns
                    .iter()
                    .any(|p| !p.kind.is_write() && d2h_bufs.contains(&p.buf));
                if c.exec == ExecKind::Cpu && c.chunkable && consumes_stream {
                    end += 1;
                }
            }
        }
    }
    Some(end)
}

struct GraphBuilder<'a> {
    pipeline: &'a Pipeline,
    hetero: bool,
    tasks: Vec<Task>,
    track: HashMap<(BufferId, Side), BufTrack>,
    seq_of_stage: HashMap<usize, u32>,
    seq: u32,
    serial_chain: bool,
    last_task: Option<TaskId>,
}

impl GraphBuilder<'_> {
    /// Appends chunk `i` of `n` of pipeline stage `stage`, wiring data
    /// dependencies against the current tracking state. Chunks of one stage
    /// never depend on each other (they are the same logical kernel).
    fn add_chunk(&mut self, stage: usize, i: u32, n: u32) {
        let n = n.max(1);
        let seq_stage = *self.seq_of_stage.entry(stage).or_insert_with(|| {
            let s = self.seq;
            self.seq += 1;
            s
        });
        // (buffer, side, is_write, follows_chunk) access list for deps.
        let (body, accesses): (TaskBody, Vec<(BufferId, Side, bool, bool)>) =
            match &self.pipeline.stages[stage] {
                Stage::Copy(c) => {
                    let body = if self.hetero {
                        TaskBody::SharedMemcpy { stage }
                    } else {
                        TaskBody::DmaCopy { stage }
                    };
                    let (src, dst) = match c.dir {
                        CopyDir::H2D => (Side::Host, Side::Dev),
                        CopyDir::D2H => (Side::Dev, Side::Host),
                    };
                    let acc = if self.hetero {
                        vec![
                            (c.buf, Side::Host, false, true),
                            (c.buf, Side::Host, true, true),
                        ]
                    } else {
                        vec![(c.buf, src, false, true), (c.buf, dst, true, true)]
                    };
                    (body, acc)
                }
                Stage::Compute(c) => {
                    let side = if self.hetero || c.exec == ExecKind::Cpu {
                        Side::Host
                    } else {
                        Side::Dev
                    };
                    let acc = c
                        .patterns
                        .iter()
                        .map(|p| (p.buf, side, p.kind.is_write(), p.follows_chunk))
                        .collect();
                    (TaskBody::Compute { stage }, acc)
                }
            };

        let id = TaskId(self.tasks.len());
        let mut deps: Vec<TaskId> = Vec::new();
        if self.serial_chain {
            if let Some(prev) = self.last_task {
                deps.push(prev);
            }
        } else {
            for &(buf, side, is_write, follows) in &accesses {
                let t = self.track.entry((buf, side)).or_default();
                // RAW (reads) and WAW (writes) against the current writers.
                for w in &t.writers {
                    if w.stage == stage || w.disjoint_from(i, n, follows) {
                        continue;
                    }
                    deps.push(w.task);
                }
                // WAR against readers of the data being overwritten.
                if is_write {
                    for r in &t.readers {
                        if r.stage == stage || r.disjoint_from(i, n, follows) {
                            continue;
                        }
                        deps.push(r.task);
                    }
                }
            }
            deps.sort();
            deps.dedup();
            deps.retain(|d| *d != id);
        }
        self.tasks.push(Task {
            id,
            body,
            chunk: (i, n),
            seq_stage,
            deps,
        });
        self.last_task = Some(id);
        // Update tracking.
        if !self.serial_chain {
            for &(buf, side, is_write, follows) in &accesses {
                let t = self.track.entry((buf, side)).or_default();
                let rec = AccessRecord {
                    task: id,
                    stage,
                    chunk_i: i,
                    chunk_n: n,
                    follows,
                };
                if is_write {
                    // A new writing stage supersedes the previous epoch's
                    // writers and readers (their hazards were just encoded
                    // in this chunk's deps — and in its siblings', since
                    // every sibling chunk ran the dep scan against the same
                    // epoch before any sibling write landed here).
                    if !t.writers.iter().any(|w| w.stage == stage) {
                        t.writers.clear();
                        t.readers.clear();
                    }
                    t.writers.push(rec);
                } else {
                    t.readers.push(rec);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe_workloads::{Pattern, PipelineBuilder, Scale};

    fn demo_pipeline() -> Pipeline {
        let mut b = PipelineBuilder::new("test/demo");
        let input = b.host("in", 1 << 20);
        let out = b.result("out", 1 << 20);
        b.h2d(input);
        b.gpu("k", 1 << 16, 8.0, 4.0)
            .reads(input, Pattern::Stream { passes: 1 })
            .writes(out, Pattern::Stream { passes: 1 });
        b.d2h(out);
        b.cpu("post", 1 << 14, 10.0, 2.0)
            .reads(out, Pattern::Stream { passes: 1 });
        b.build()
    }

    #[test]
    fn serial_discrete_is_a_chain() {
        let p = demo_pipeline();
        let g = lower(&p, &SystemConfig::discrete(), Organization::Serial, false);
        assert_eq!(g.tasks.len(), 4);
        assert_eq!(g.stage_count, 4);
        for (i, t) in g.tasks.iter().enumerate() {
            if i == 0 {
                assert!(t.deps.is_empty());
            } else {
                assert_eq!(t.deps, vec![TaskId(i - 1)]);
            }
        }
    }

    #[test]
    fn hetero_serial_drops_elidable_copies() {
        let p = demo_pipeline();
        let g = lower(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            false,
        );
        // Only the two compute stages survive.
        assert_eq!(g.tasks.len(), 2);
        assert!(g
            .tasks
            .iter()
            .all(|t| matches!(t.body, TaskBody::Compute { .. })));
        // One shared instance per buffer.
        for b in &g.buffers {
            assert!(b.host.is_some());
            assert!(b.dev.is_none());
        }
    }

    #[test]
    fn discrete_mirrors_buffers() {
        let p = demo_pipeline();
        let g = lower(&p, &SystemConfig::discrete(), Organization::Serial, false);
        for b in &g.buffers {
            assert!(b.host.is_some());
            assert!(b.dev.is_some());
            assert_ne!(b.cpu_range().start(), b.gpu_range().start());
        }
    }

    #[test]
    fn async_streams_chunks_the_fission_group() {
        let p = demo_pipeline();
        let g = lower(
            &p,
            &SystemConfig::discrete(),
            Organization::AsyncStreams { streams: 3 },
            false,
        );
        // h2d, kernel, d2h, and the consuming cpu stage: 3 chunks each.
        assert_eq!(g.tasks.len(), 12);
        // Kernel chunk i depends on h2d chunk i only.
        let kernels: Vec<&Task> = g
            .tasks
            .iter()
            .filter(|t| matches!(t.body, TaskBody::Compute { stage: 1 }))
            .collect();
        assert_eq!(kernels.len(), 3);
        for (i, k) in kernels.iter().enumerate() {
            assert_eq!(k.deps.len(), 1, "kernel chunk deps: {:?}", k.deps);
            let dep = &g.tasks[k.deps[0].0];
            assert!(matches!(dep.body, TaskBody::DmaCopy { stage: 0 }));
            assert_eq!(dep.chunk.0 as usize, i);
        }
    }

    #[test]
    fn chunked_parallel_links_producer_consumer_chunks() {
        let p = demo_pipeline();
        let g = lower(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::ChunkedParallel { chunks: 4 },
            false,
        );
        // 4 kernel chunks + 4 cpu chunks.
        assert_eq!(g.tasks.len(), 8);
        let consumers: Vec<&Task> = g
            .tasks
            .iter()
            .filter(|t| matches!(t.body, TaskBody::Compute { stage: 3 }))
            .collect();
        assert_eq!(consumers.len(), 4);
        for (i, c) in consumers.iter().enumerate() {
            assert_eq!(c.deps.len(), 1);
            let dep = &g.tasks[c.deps[0].0];
            assert_eq!(
                dep.chunk.0 as usize, i,
                "consumer {i} pairs with producer {i}"
            );
        }
    }

    #[test]
    fn sticky_copies_become_memcpy_on_hetero() {
        let mut b = PipelineBuilder::new("test/sticky");
        let buf = b.host("x", 1 << 16);
        b.sticky_copy(buf, CopyDir::H2D, None);
        b.gpu("k", 4096, 4.0, 0.0)
            .reads(buf, Pattern::Stream { passes: 1 });
        let p = b.build();
        let g = lower(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            false,
        );
        assert_eq!(g.tasks.len(), 2);
        assert!(matches!(g.tasks[0].body, TaskBody::SharedMemcpy { .. }));
    }

    #[test]
    fn misaligned_buffers_only_when_flagged() {
        let p = demo_pipeline();
        let aligned = lower(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            false,
        );
        let misaligned = lower(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            true,
        );
        assert!(aligned.buffers[0].cpu_range().start().is_line_aligned());
        assert!(!misaligned.buffers[0].cpu_range().start().is_line_aligned());
    }

    #[test]
    #[should_panic(expected = "heterogeneous")]
    fn chunked_parallel_rejected_on_discrete() {
        let p = demo_pipeline();
        let _ = lower(
            &p,
            &SystemConfig::discrete(),
            Organization::ChunkedParallel { chunks: 2 },
            false,
        );
    }

    #[test]
    #[should_panic(expected = "discrete")]
    fn async_streams_rejected_on_hetero() {
        let p = demo_pipeline();
        let _ = lower(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::AsyncStreams { streams: 2 },
            false,
        );
    }

    #[test]
    fn real_benchmark_lowers_on_both_platforms() {
        let kmeans = heteropipe_workloads::registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let d = lower(
            &kmeans,
            &SystemConfig::discrete(),
            Organization::Serial,
            false,
        );
        let h = lower(
            &kmeans,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            false,
        );
        assert!(d.tasks.len() > h.tasks.len(), "elision removes tasks");
        // DAG sanity: all deps point backwards.
        for t in d.tasks.iter().chain(h.tasks.iter()) {
            for dep in &t.deps {
                assert!(dep.0 < t.id.0);
            }
        }
    }
}
