//! The paper's analytical models (§V).
//!
//! * [`component_overlap`] — Eq. 1: the Amdahl-style estimate of run time if
//!   copy, CPU, and GPU activity were overlapped (kernel fission + streams
//!   on the discrete system, in-memory signals on the heterogeneous
//!   processor):
//!
//!   ```text
//!   R_co = C_serial + max(C - C_serial, P, G)
//!   ```
//!
//! * [`migrated_compute`] — Eq. 2-4: the optimistic estimate of run time if
//!   all compute phases were distributed across CPU and GPU cores, bounded
//!   by aggregate FLOP rate and achievable memory bandwidth:
//!
//!   ```text
//!   R_mc_core = (C·F_cpu + G·F_gpu) / (F_cpu + F_gpu)
//!   R_mc_BW   = M / BW_mem
//!   R_mc      = max(P, R_mc_core, R_mc_BW)
//!   ```
//!
//! All times are absolute ([`Ps`]); the paper plots them normalized to the
//! baseline copy run time.

use heteropipe_sim::Ps;

use crate::config::SystemConfig;
use crate::report::RunReport;

/// Eq. 1: component-overlap run-time estimate.
///
/// # Examples
///
/// ```
/// use heteropipe::{run, component_overlap, Organization, SystemConfig};
/// use heteropipe_workloads::{registry, Scale};
///
/// let p = registry::find("rodinia/backprop").unwrap()
///     .pipeline(Scale::TEST).unwrap();
/// let serial = run::run(&p, &SystemConfig::discrete(), Organization::Serial, false);
/// // Overlap can never beat the busiest single component, nor lose to the
/// // serial schedule.
/// let est = component_overlap(&serial);
/// assert!(est <= serial.roi);
/// assert!(est >= serial.busy.copy.max(serial.busy.cpu).max(serial.busy.gpu));
/// ```
pub fn component_overlap(report: &RunReport) -> Ps {
    let c = report.busy.cpu;
    let p = report.busy.copy;
    let g = report.busy.gpu;
    let c_serial = report.c_serial.min(c);
    c_serial + (c - c_serial).max(p).max(g)
}

/// Eq. 2-4: migrated-compute run-time estimate.
///
/// `M` is the report's off-chip byte count and `BW_mem` the system's
/// achievable memory bandwidth (the paper's ~82% of peak).
pub fn migrated_compute(report: &RunReport, config: &SystemConfig) -> Ps {
    let f_cpu = config.cpu.peak_flops_total();
    let f_gpu = config.gpu.peak_flops_total();
    let c = report.busy.cpu.as_secs_f64();
    let g = report.busy.gpu.as_secs_f64();
    // Eq. 2: work currently on each core type redistributed across both.
    let r_core = (c * f_cpu + g * f_gpu) / (f_cpu + f_gpu);
    // Eq. 3: off-chip traffic over achievable bandwidth.
    let r_bw = report.offchip_bytes as f64 / config.gpu_mem_bw();
    // Eq. 4.
    let r = report.busy.copy.as_secs_f64().max(r_core).max(r_bw);
    Ps::from_secs_f64(r)
}

/// Both estimates, normalized to a baseline run time (how the paper plots
/// Figs. 7 and 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimates {
    /// Eq. 1 estimate relative to the baseline (1.0 = no gain).
    pub overlap_rel: f64,
    /// Eq. 2-4 estimate relative to the baseline.
    pub migrate_rel: f64,
}

/// Computes both normalized estimates for `report` against `baseline_roi`.
pub fn estimates(report: &RunReport, config: &SystemConfig, baseline_roi: Ps) -> Estimates {
    Estimates {
        overlap_rel: component_overlap(report).fraction_of(baseline_roi),
        migrate_rel: migrated_compute(report, config).fraction_of(baseline_roi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::ClassCounts;
    use crate::config::Platform;
    use crate::organize::Organization;
    use crate::report::ComponentTimes;

    fn report(copy_ms: u64, cpu_ms: u64, gpu_ms: u64, c_serial_ms: u64) -> RunReport {
        RunReport {
            benchmark: "test/x".into(),
            platform: Platform::DiscreteGpu,
            organization: Organization::Serial,
            roi: Ps::from_millis(copy_ms + cpu_ms + gpu_ms),
            busy: ComponentTimes {
                copy: Ps::from_millis(copy_ms),
                cpu: Ps::from_millis(cpu_ms),
                gpu: Ps::from_millis(gpu_ms),
            },
            exclusive: Vec::new(),
            accesses: [0; 3],
            offchip_fetches: 0,
            offchip_writebacks: 0,
            offchip_bytes: 0,
            classes: ClassCounts::default(),
            footprint: Vec::new(),
            total_footprint: 0,
            faults: 0,
            c_serial: Ps::from_millis(c_serial_ms),
            cpu_flops: 0,
            gpu_flops: 0,
            remote_hits: 0,
            bw_limited: false,
        }
    }

    #[test]
    fn overlap_is_bound_by_largest_component() {
        let r = report(5, 3, 8, 0);
        assert_eq!(component_overlap(&r), Ps::from_millis(8));
    }

    #[test]
    fn overlap_adds_serial_launch_time() {
        let r = report(2, 4, 8, 1);
        // 1 + max(3, 2, 8) = 9.
        assert_eq!(component_overlap(&r), Ps::from_millis(9));
    }

    #[test]
    fn overlap_never_exceeds_serial_sum() {
        for (p, c, g, s) in [(5, 5, 5, 2), (0, 10, 1, 0), (7, 0, 3, 0)] {
            let r = report(p, c, g, s);
            assert!(component_overlap(&r) <= r.roi);
        }
    }

    #[test]
    fn migrate_weights_by_flop_rate() {
        let cfg = SystemConfig::discrete();
        // All work on the CPU: migrating it across CPU+GPU shrinks it by
        // roughly F_cpu / (F_cpu + F_gpu).
        let r = report(0, 100, 0, 0);
        let est = migrated_compute(&r, &cfg);
        let expect = 0.1 * 56.0 / (56.0 + 358.4);
        assert!((est.as_secs_f64() - expect).abs() / expect < 1e-6, "{est}");
    }

    #[test]
    fn migrate_bounded_by_bandwidth() {
        let cfg = SystemConfig::discrete();
        let mut r = report(0, 1, 1, 0);
        r.offchip_bytes = 1_468_000_000; // ~10 ms at 146.8 GB/s
        let est = migrated_compute(&r, &cfg);
        assert!((est.as_millis_f64() - 10.0).abs() < 0.2, "{est}");
    }

    #[test]
    fn migrate_bounded_by_copies() {
        let cfg = SystemConfig::discrete();
        let r = report(50, 1, 1, 0);
        assert_eq!(migrated_compute(&r, &cfg), Ps::from_millis(50));
    }

    #[test]
    fn estimates_normalize() {
        let cfg = SystemConfig::discrete();
        let r = report(5, 3, 8, 0);
        let e = estimates(&r, &cfg, Ps::from_millis(16));
        assert!((e.overlap_rel - 0.5).abs() < 1e-9);
        assert!(e.migrate_rel <= e.overlap_rel + 1e-12);
    }
}
