//! The system runner: executes a lowered task graph on a configured system.
//!
//! Execution is hybrid functional/analytical (DESIGN.md §2): when a task
//! starts, its memory accesses are driven through the functional cache
//! hierarchy (producing hit/miss/writeback tallies, page faults, footprint
//! touches, and off-chip classification events), its intrinsic duration is
//! computed by the CPU/GPU bounds models, and its off-chip traffic becomes a
//! flow in the fluid bandwidth network where concurrent tasks contend for
//! PCIe and DRAM bandwidth. Each component (CPU, GPU, copy engine) is a
//! serial server that picks the lowest-id ready task, so bulk-synchronous,
//! streamed, and chunked organizations all execute deterministically.

use std::cell::RefCell;
use std::collections::BTreeSet;

use heteropipe_cpu::{CpuModel, LevelCounts, StageWork};
use heteropipe_gpu::{GpuModel, Occupancy};
use heteropipe_mem::access::Component;
use heteropipe_mem::{
    AccessKind, AddrRange, ChipHierarchy, LineAddr, PageTable, ServiceLevel, LINE_BYTES,
};
use heteropipe_sim::fluid::{FlowId, FlowSpec};
use heteropipe_sim::{FluidNet, Ps, SplitMix64, Timeline};
use heteropipe_workloads::{BufferInit, ComputeStage, CopyDir, ExecKind, Pipeline, Stage};

use crate::classify::{ClassCounts, OffchipClassifier};
use crate::config::{Platform, SystemConfig};
use crate::footprint::{FootprintTracker, TouchSet};
use crate::organize::{lower, Organization, Server, Task, TaskBody, TaskGraph};
use crate::report::{ComponentTimes, ExclusiveSlice, RunReport};
use crate::trace::TaskSpan;

/// Profiler slot for the event-loop's next-completion pop, registered
/// once per process (wall-clock attribution only; never affects results).
fn event_pop_phase() -> heteropipe_obs::profile::PhaseId {
    static P: std::sync::OnceLock<heteropipe_obs::profile::PhaseId> = std::sync::OnceLock::new();
    *P.get_or_init(|| heteropipe_obs::profile::phase("sim.event_pop"))
}

/// Executes `pipeline` on `config` under `org` and reports everything the
/// experiments need.
///
/// `misalignment_sensitive` is the benchmark's Fig. 5 `*` flag (see
/// [`lower`]).
///
/// # Examples
///
/// ```
/// use heteropipe::{run, Organization, SystemConfig};
/// use heteropipe_workloads::{registry, Scale};
///
/// let p = registry::find("rodinia/hotspot").unwrap()
///     .pipeline(Scale::TEST).unwrap();
/// let r = run::run(&p, &SystemConfig::discrete(), Organization::Serial, false);
/// assert!(r.busy.gpu > heteropipe_sim::Ps::ZERO);
/// assert_eq!(r.classes.total(), r.offchip_fetches + r.offchip_writebacks);
/// ```
pub fn run(
    pipeline: &Pipeline,
    config: &SystemConfig,
    org: Organization,
    misalignment_sensitive: bool,
) -> RunReport {
    run_traced(pipeline, config, org, misalignment_sensitive).0
}

/// Like [`run`], but also returns the per-task execution spans for
/// inspection or Chrome-trace export (see [`crate::trace`]).
pub fn run_traced(
    pipeline: &Pipeline,
    config: &SystemConfig,
    org: Organization,
    misalignment_sensitive: bool,
) -> (RunReport, Vec<TaskSpan>) {
    let graph = lower(pipeline, config, org, misalignment_sensitive);
    Runner::new(pipeline, &graph, config, org).execute()
}

struct Resources {
    cpu_mem: heteropipe_sim::ResourceId,
    gpu_mem: heteropipe_sim::ResourceId,
    pcie: Option<heteropipe_sim::ResourceId>,
}

/// Pooled per-run state — the run "arena". Every growable buffer a run
/// needs is checked out of a thread-local pool when the run starts and
/// returned (cleared, capacity intact) when the report is built, so
/// repeated runs on one thread — the engine's job workers, every sweep —
/// reuse a single set of allocations instead of growing and freeing
/// thousands of per-pattern line buffers and bookkeeping vectors per job.
#[derive(Default)]
struct RunArena {
    /// Pool of pattern line buffers (`Pattern::emit` targets).
    line_bufs: Vec<Vec<LineAddr>>,
    /// Fused-kernel pattern staging for the interleaved tile walk.
    interleaved: Vec<(AccessKind, Vec<LineAddr>)>,
    /// Tile cursors for the interleaved walk.
    offsets: Vec<usize>,
    /// `(component, start, end)` busy intervals.
    busy: Vec<(Component, Ps, Ps)>,
    /// Kernel-launch / DMA-setup intervals.
    launches: Vec<(Ps, Ps)>,
    /// Unmet-dependency counts per task.
    indegree: Vec<usize>,
    /// Reverse dependency lists per task.
    dependents: Vec<Vec<usize>>,
}

thread_local! {
    static ARENA: RefCell<RunArena> = RefCell::new(RunArena::default());
}

impl RunArena {
    /// Checks the thread's arena out of the pool (empty on first use).
    fn take() -> RunArena {
        ARENA.with(|a| std::mem::take(&mut *a.borrow_mut()))
    }

    /// Returns the arena to the pool: one sweep of `clear()`s keeps every
    /// buffer's capacity for the next run.
    fn put_back(mut self) {
        for b in &mut self.line_bufs {
            b.clear();
        }
        while let Some((_, mut b)) = self.interleaved.pop() {
            b.clear();
            self.line_bufs.push(b);
        }
        self.offsets.clear();
        self.busy.clear();
        self.launches.clear();
        self.indegree.clear();
        for d in &mut self.dependents {
            d.clear();
        }
        ARENA.with(|a| *a.borrow_mut() = self);
    }

    /// A cleared line buffer from the pool (fresh if the pool is dry).
    fn line_buf(&mut self) -> Vec<LineAddr> {
        let mut b = self.line_bufs.pop().unwrap_or_default();
        b.clear();
        b
    }
}

struct FuncResult {
    counts: LevelCounts,
    /// Scattered first-touch faults (full handler round trip each).
    faults_full: u64,
    /// Sequential first-touch faults (batched by handler fault-around).
    faults_batched: u64,
    /// Line accesses from row-buffer-friendly (sequential) patterns.
    seq_accesses: u64,
    /// Line accesses from random (gather/neighbour) patterns.
    rnd_accesses: u64,
}

impl FuncResult {
    /// Fraction of the stage's traffic that is row-buffer friendly.
    fn sequential_fraction(&self) -> f64 {
        let total = self.seq_accesses + self.rnd_accesses;
        if total == 0 {
            1.0
        } else {
            self.seq_accesses as f64 / total as f64
        }
    }
}

struct Runner<'a> {
    pipeline: &'a Pipeline,
    graph: &'a TaskGraph,
    config: &'a SystemConfig,
    org: Organization,
    cpu: CpuModel,
    gpu: GpuModel,
    hierarchy: ChipHierarchy,
    pagetable: PageTable,
    net: FluidNet,
    res: Resources,
    footprint: FootprintTracker,
    classifier: OffchipClassifier,
    accesses: [u64; 3],
    offchip_fetches: u64,
    offchip_writebacks: u64,
    cpu_flops: u64,
    gpu_flops: u64,
    faults: u64,
    arena: RunArena,
    spans: Vec<TaskSpan>,
    sm_cursor: u64,
}

impl<'a> Runner<'a> {
    fn new(
        pipeline: &'a Pipeline,
        graph: &'a TaskGraph,
        config: &'a SystemConfig,
        org: Organization,
    ) -> Self {
        let mut net = FluidNet::new();
        let gpu_mem = net.add_resource("gpu_mem", config.gpu_mem_bw());
        let cpu_mem = match config.cpu_mem {
            Some(m) => net.add_resource("cpu_mem", m.effective_bw()),
            None => gpu_mem,
        };
        let pcie = config
            .pcie
            .map(|p| net.add_resource("pcie", p.effective_bw()));

        // Page table: CPU-initialized data is mapped when the ROI starts; in
        // the discrete system the GPU allocator pre-maps all device ranges.
        let mut pagetable = PageTable::new();
        for (spec, resolved) in pipeline.buffers.iter().zip(&graph.buffers) {
            if spec.init == BufferInit::Host {
                if let Some(h) = resolved.host {
                    pagetable.map_range(h);
                }
            }
            if config.platform == Platform::DiscreteGpu {
                if let Some(d) = resolved.dev {
                    pagetable.map_range(d);
                }
                if let Some(h) = resolved.host {
                    pagetable.map_range(h);
                }
            }
        }

        Runner {
            pipeline,
            graph,
            config,
            org,
            cpu: CpuModel::new(config.cpu),
            gpu: GpuModel::new(config.gpu),
            hierarchy: ChipHierarchy::new(config.hierarchy),
            pagetable,
            net,
            res: Resources {
                cpu_mem,
                gpu_mem,
                pcie,
            },
            footprint: FootprintTracker::new(),
            classifier: OffchipClassifier::with_spill_window(config.spill_window),
            accesses: [0; 3],
            offchip_fetches: 0,
            offchip_writebacks: 0,
            cpu_flops: 0,
            gpu_flops: 0,
            faults: 0,
            arena: RunArena::take(),
            spans: Vec::new(),
            sm_cursor: 0,
        }
    }

    fn execute(mut self) -> (RunReport, Vec<TaskSpan>) {
        let n = self.graph.tasks.len();
        let mut indegree = std::mem::take(&mut self.arena.indegree);
        indegree.clear();
        indegree.extend(self.graph.tasks.iter().map(|t| t.deps.len()));
        let mut dependents = std::mem::take(&mut self.arena.dependents);
        for d in &mut dependents {
            d.clear();
        }
        dependents.resize_with(n, Vec::new);
        for t in &self.graph.tasks {
            for d in &t.deps {
                dependents[d.0].push(t.id.0);
            }
        }
        let mut ready: [BTreeSet<usize>; 3] = [BTreeSet::new(), BTreeSet::new(), BTreeSet::new()];
        let server_of = |t: &Task, p: &Pipeline| match t.server(p) {
            Server::Copy => 0usize,
            Server::Cpu => 1,
            Server::Gpu => 2,
        };
        for (i, t) in self.graph.tasks.iter().enumerate() {
            if indegree[i] == 0 {
                ready[server_of(t, self.pipeline)].insert(i);
            }
        }
        // (task, flow, start) currently running per server.
        let mut running: [Option<(usize, FlowId, Ps)>; 3] = [None, None, None];
        let mut now = Ps::ZERO;
        let mut completed = 0usize;

        while completed < n {
            // Dispatch on every idle server.
            for s in 0..3 {
                if running[s].is_none() {
                    if let Some(&tid) = ready[s].iter().next() {
                        ready[s].remove(&tid);
                        let flow = self.start_task(tid, now);
                        running[s] = Some((tid, flow, now));
                    }
                }
            }
            // Advance to the next completion. The pop is profiled (this is
            // the event-queue cost ROADMAP's calendar-queue item targets);
            // the profiler only accumulates wall-time counters, so results
            // stay deterministic.
            let (t, flow) =
                heteropipe_obs::profile::time(event_pop_phase(), || self.net.next_completion())
                    .expect("deadlock: tasks pending but nothing running");
            self.net.retire(t, flow);
            now = t;
            let s = (0..3)
                .find(|&s| matches!(running[s], Some((_, f, _)) if f == flow))
                .expect("completed flow belongs to a server");
            let (tid, _, start) = running[s].take().unwrap();
            self.finish_task(tid, start, now);
            completed += 1;
            for &dep in &dependents[tid] {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    let task = &self.graph.tasks[dep];
                    ready[server_of(task, self.pipeline)].insert(dep);
                }
            }
        }

        self.arena.indegree = indegree;
        self.arena.dependents = dependents;
        let spans = std::mem::take(&mut self.spans);
        (self.report(now), spans)
    }

    /// Runs the functional pass and opens the task's flow.
    fn start_task(&mut self, tid: usize, now: Ps) -> FlowId {
        let task = &self.graph.tasks[tid];
        match task.body {
            TaskBody::Compute { stage } => {
                let c = self.pipeline.stages[stage].as_compute().expect("compute");
                let func = self.compute_functional(task, c);
                let (i, nch) = task.chunk;
                let _ = i;
                let frac = 1.0 / nch as f64;
                // SIMT lanes diverge on the random-access fraction of the
                // kernel's traffic (a gather warp serializes its lanes).
                let rnd_frac = 1.0 - func.sequential_fraction();
                let work = StageWork {
                    instructions: (c.instructions as f64 * frac) as u64,
                    flops: (c.flops as f64 * frac) as u64,
                    mem: func.counts,
                    threads: if c.exec == ExecKind::Cpu {
                        c.threads
                    } else {
                        ((c.threads as f64 * frac) as u64).max(1)
                    },
                    simd_efficiency: 1.0 - 0.45 * rnd_frac,
                };
                let (intrinsic, mem_res, launch) = match c.exec {
                    ExecKind::Cpu => {
                        self.cpu_flops += work.flops;
                        (self.cpu.stage_time(&work), self.res.cpu_mem, Ps::ZERO)
                    }
                    ExecKind::Gpu => {
                        self.gpu_flops += work.flops;
                        let occ =
                            Occupancy::of(self.gpu.config(), c.threads_per_cta, c.scratch_per_cta);
                        let kernel = self.gpu.kernel_time(&work, occ)
                            + self
                                .gpu
                                .fault_stall_split(func.faults_full, func.faults_batched);
                        // Fissioned chunks after the first are enqueued
                        // asynchronously: only a small per-launch sliver.
                        let launch = if task.chunk.0 == 0 {
                            self.config.cpu.kernel_launch
                        } else {
                            self.config.cpu.kernel_launch / 8
                        };
                        (kernel, self.res.gpu_mem, launch)
                    }
                };
                if launch > Ps::ZERO {
                    self.arena.launches.push((now, now + launch));
                    self.arena.busy.push((Component::Cpu, now, now + launch));
                }
                let bytes = func.counts.offchip_transactions() as f64 * LINE_BYTES as f64;
                // Row-buffer locality bounds the bandwidth this stage can
                // actually draw from its memory.
                let dram = match c.exec {
                    ExecKind::Cpu => self.config.cpu_mem.unwrap_or(self.config.gpu_mem),
                    ExecKind::Gpu => self.config.gpu_mem,
                };
                let bw_cap = dram.effective_bw_for(func.sequential_fraction());
                let spec = FlowSpec::new(bytes)
                    .over(mem_res)
                    .rate_cap(bw_cap)
                    .min_duration(launch + intrinsic);
                self.net.start_flow(now, spec)
            }
            TaskBody::DmaCopy { stage } => {
                let bytes = self.copy_functional(task, stage);
                // Queued DMA descriptors after the first chunk are cheap.
                let full = self.config.pcie.expect("discrete has pcie").setup_latency();
                let setup = if task.chunk.0 == 0 { full } else { full / 5 };
                self.arena.launches.push((now, now + setup));
                self.arena.busy.push((Component::Cpu, now, now + setup));
                let transfer = self
                    .config
                    .pcie
                    .expect("discrete has pcie")
                    .transfer_time(bytes);
                let mut spec = FlowSpec::new(bytes as f64)
                    .over(self.res.pcie.expect("discrete has pcie"))
                    .over(self.res.cpu_mem)
                    .over(self.res.gpu_mem)
                    .min_duration(setup + transfer);
                if bytes == 0 {
                    spec = FlowSpec::delay(setup);
                }
                self.net.start_flow(now, spec)
            }
            TaskBody::SharedMemcpy { stage } => {
                let bytes = self.copy_functional(task, stage);
                let spec = FlowSpec::new(2.0 * bytes as f64)
                    .over(self.res.gpu_mem)
                    .rate_cap(self.config.memcpy_rate);
                self.net.start_flow(now, spec)
            }
        }
    }

    fn finish_task(&mut self, tid: usize, start: Ps, end: Ps) {
        let task = &self.graph.tasks[tid];
        let component = match task.server(self.pipeline) {
            Server::Copy => Component::Copy,
            Server::Cpu => Component::Cpu,
            Server::Gpu => Component::Gpu,
        };
        // The launch/setup sliver at the head of GPU and DMA tasks is CPU
        // time (already recorded); the engine itself is busy afterwards.
        let head = match task.body {
            TaskBody::Compute { stage } => {
                match self.pipeline.stages[stage]
                    .as_compute()
                    .expect("compute")
                    .exec
                {
                    ExecKind::Gpu if task.chunk.0 == 0 => self.config.cpu.kernel_launch,
                    ExecKind::Gpu => self.config.cpu.kernel_launch / 8,
                    ExecKind::Cpu => Ps::ZERO,
                }
            }
            TaskBody::DmaCopy { .. } => {
                let full = self.config.pcie.expect("discrete has pcie").setup_latency();
                if task.chunk.0 == 0 {
                    full
                } else {
                    full / 5
                }
            }
            TaskBody::SharedMemcpy { .. } => Ps::ZERO,
        };
        let body_start = (start + head).min(end);
        self.arena.busy.push((component, body_start, end));
        self.spans.push(TaskSpan {
            name: match &self.pipeline.stages[task.body.stage()] {
                Stage::Compute(c) => c.name.clone(),
                Stage::Copy(c) => format!("{} {}", c.dir, self.pipeline.buffer(c.buf).name),
            },
            server: task.server(self.pipeline),
            chunk: task.chunk,
            start,
            end,
        });
        if let TaskBody::Compute { stage } = task.body {
            let c = self.pipeline.stages[stage].as_compute().expect("compute");
            // GPU L1s flush at kernel boundaries (write-evict L1s hold only
            // clean data, so the flush is silent).
            if c.exec == ExecKind::Gpu && task.chunk.0 + 1 == task.chunk.1 {
                self.hierarchy.flush_gpu_l1s();
            }
        }
    }

    /// Drives one compute task's access patterns through the caches.
    fn compute_functional(&mut self, task: &Task, c: &ComputeStage) -> FuncResult {
        let (chunk_i, chunk_n) = task.chunk;
        let mut counts = LevelCounts::default();
        let mut faults_full = 0u64;
        let faults_batched = 0u64;
        let hetero = self.config.platform == Platform::Heterogeneous;
        let stage_seq = task.seq_stage;

        let mut seq_accesses = 0u64;
        let mut rnd_accesses = 0u64;

        // Fused kernels interleave their patterns tile-wise: emit each
        // pattern separately, then walk them round-robin in 64-line tiles
        // so a produced tile is consumed while still cache-resident.
        let mut interleaved = std::mem::take(&mut self.arena.interleaved);

        for (pi, p) in c.patterns.iter().enumerate() {
            let resolved = &self.graph.buffers[p.buf.0];
            let full = match c.exec {
                ExecKind::Cpu => resolved.cpu_range(),
                ExecKind::Gpu => resolved.gpu_range(),
            };
            let elem = self.pipeline.buffers[p.buf.0].elem_bytes;
            let (range, pattern) = if chunk_n > 1 && p.follows_chunk {
                (
                    full.chunks(chunk_n as u64)[chunk_i as usize],
                    p.pattern.chunked(1.0 / chunk_n as f64),
                )
            } else if chunk_n > 1 {
                (full, p.pattern.chunked(1.0 / chunk_n as f64))
            } else {
                (full, p.pattern.clone())
            };
            let mut rng = SplitMix64::new(
                0x5EED_0000 ^ (task.body.stage() as u64) << 32 ^ (chunk_i as u64) << 16 ^ pi as u64,
            );
            let mut lines = self.arena.line_buf();
            pattern.emit(range, elem, &mut rng, &mut lines);
            let is_random = matches!(
                pattern,
                heteropipe_workloads::Pattern::Gather { .. }
                    | heteropipe_workloads::Pattern::Neighbors { .. }
            );
            if is_random {
                rnd_accesses += lines.len() as u64;
            } else {
                seq_accesses += lines.len() as u64;
            }

            if c.interleave_patterns {
                interleaved.push((p.kind, lines));
                continue;
            }

            for &line in &lines {
                match c.exec {
                    ExecKind::Cpu => {
                        self.access_cpu(line, p.kind, stage_seq, &mut counts);
                    }
                    ExecKind::Gpu => {
                        // Paper-faithful IOMMU-style faulting: every first
                        // touch is a full serialized CPU round trip
                        // (§III-D; gem5-gpu's handler does no fault-around).
                        if hetero && self.pagetable.touch(line.page()).is_fault() {
                            faults_full += 1;
                            self.clear_page_on_cpu(line, stage_seq);
                        }
                        self.sm_cursor += 1;
                        let sm =
                            ((self.sm_cursor / 4) % self.config.hierarchy.gpu_sms as u64) as u8;
                        let r = self.hierarchy.gpu_access(sm, line, p.kind);
                        self.accesses[Component::Gpu.index()] += 1;
                        self.footprint.touch(Component::Gpu, line);
                        self.tally(r, line, p.kind, stage_seq, &mut counts);
                    }
                }
            }
            lines.clear();
            self.arena.line_bufs.push(lines);
        }
        if c.interleave_patterns && !interleaved.is_empty() {
            const TILE: usize = 64;
            let mut offsets = std::mem::take(&mut self.arena.offsets);
            offsets.clear();
            offsets.resize(interleaved.len(), 0);
            let mut remaining = true;
            while remaining {
                remaining = false;
                for (idx, (kind, lines)) in interleaved.iter().enumerate() {
                    let start = offsets[idx];
                    if start >= lines.len() {
                        continue;
                    }
                    let end = (start + TILE).min(lines.len());
                    offsets[idx] = end;
                    remaining = true;
                    for &line in &lines[start..end] {
                        match c.exec {
                            ExecKind::Cpu => {
                                self.access_cpu(line, *kind, stage_seq, &mut counts);
                            }
                            ExecKind::Gpu => {
                                if hetero && self.pagetable.touch(line.page()).is_fault() {
                                    faults_full += 1;
                                    self.clear_page_on_cpu(line, stage_seq);
                                }
                                self.sm_cursor += 1;
                                let sm = ((self.sm_cursor / 4)
                                    % self.config.hierarchy.gpu_sms as u64)
                                    as u8;
                                let r = self.hierarchy.gpu_access(sm, line, *kind);
                                self.accesses[Component::Gpu.index()] += 1;
                                self.footprint.touch(Component::Gpu, line);
                                self.tally(r, line, *kind, stage_seq, &mut counts);
                            }
                        }
                    }
                }
            }
            self.arena.offsets = offsets;
        }
        // Hand the pattern buffers (and the staging vec itself) back to
        // the pool for the next task.
        while let Some((_, mut b)) = interleaved.pop() {
            b.clear();
            self.arena.line_bufs.push(b);
        }
        self.arena.interleaved = interleaved;
        self.faults += faults_full + faults_batched;
        FuncResult {
            counts,
            faults_full,
            faults_batched,
            seq_accesses,
            rnd_accesses,
        }
    }

    fn access_cpu(&mut self, line: LineAddr, kind: AccessKind, seq: u32, counts: &mut LevelCounts) {
        let r = self.hierarchy.cpu_access(0, line, kind);
        self.accesses[Component::Cpu.index()] += 1;
        self.footprint.touch(Component::Cpu, line);
        self.tally(r, line, kind, seq, counts);
    }

    /// The CPU page-fault handler clears freshly mapped pages (Linux
    /// anonymous-page behaviour), shifting accesses from GPU to CPU — the
    /// paper's srad observation.
    fn clear_page_on_cpu(&mut self, line: LineAddr, seq: u32) {
        let page = line.page();
        let mut scratch = LevelCounts::default();
        let base = page.base().line();
        for i in 0..(heteropipe_mem::PAGE_BYTES / LINE_BYTES) {
            self.access_cpu(LineAddr(base.0 + i), AccessKind::Write, seq, &mut scratch);
        }
    }

    fn tally(
        &mut self,
        r: heteropipe_mem::AccessResult,
        line: LineAddr,
        kind: AccessKind,
        seq: u32,
        counts: &mut LevelCounts,
    ) {
        match r.level {
            ServiceLevel::L1 => counts.l1_hits += 1,
            ServiceLevel::L2 => counts.l2_hits += 1,
            ServiceLevel::Remote => counts.remote_hits += 1,
            ServiceLevel::OffChip => {
                // Write misses allocate without fetching (streaming stores
                // of full coalesced lines); only read misses move data in.
                if kind.is_write() {
                    counts.l2_hits += 1; // allocation cost, no DRAM read
                } else {
                    counts.offchip += 1;
                    self.offchip_fetches += 1;
                    self.classifier.fetch(line, seq);
                }
            }
        }
        for wb in r.offchip_writebacks() {
            counts.writebacks += 1;
            self.offchip_writebacks += 1;
            self.classifier.writeback(wb, seq);
        }
    }

    /// DMA / memcpy functional pass. Returns the bytes moved.
    fn copy_functional(&mut self, task: &Task, stage: usize) -> u64 {
        let c = self.pipeline.stages[stage].as_copy().expect("copy stage");
        let spec = &self.pipeline.buffers[c.buf.0];
        let resolved = &self.graph.buffers[c.buf.0];
        let total = c.bytes.unwrap_or(spec.bytes);
        let (chunk_i, chunk_n) = task.chunk;
        let per = total / chunk_n as u64;
        let offset = per * chunk_i as u64;
        let len = if chunk_i + 1 == chunk_n {
            total - offset
        } else {
            per
        };
        let seq = task.seq_stage;

        let host = resolved.cpu_range().slice(offset, len);
        let dev = resolved.gpu_range().slice(offset, len);
        let (src, dst) = match c.dir {
            CopyDir::H2D => (host, dev),
            CopyDir::D2H => (dev, host),
        };

        if self.config.platform == Platform::Heterogeneous {
            // Residual on-chip memcpy: CPU-coherent, counted as copy
            // component traffic over the shared memory.
            for line in src.lines() {
                self.accesses[Component::Copy.index()] += 1;
                self.footprint.touch(Component::Copy, line);
                self.offchip_fetches += 1;
                self.classifier.fetch(line, seq);
            }
            for line in dst.lines() {
                self.accesses[Component::Copy.index()] += 1;
                self.footprint.touch(Component::Copy, line);
                self.offchip_writebacks += 1;
                self.classifier.writeback(line, seq);
            }
            return len;
        }

        match c.dir {
            CopyDir::H2D => {
                let flushed = self.hierarchy.dma_flush_cpu(src);
                self.record_flush(src, flushed, seq);
                self.hierarchy.dma_invalidate_gpu(dst);
            }
            CopyDir::D2H => {
                let flushed = self.hierarchy.dma_flush_gpu(src);
                self.record_flush(src, flushed, seq);
                self.hierarchy.dma_invalidate_cpu(dst);
            }
        }
        for line in src.lines() {
            self.accesses[Component::Copy.index()] += 1;
            self.footprint.touch(Component::Copy, line);
            self.offchip_fetches += 1;
            self.classifier.fetch(line, seq);
        }
        for line in dst.lines() {
            self.accesses[Component::Copy.index()] += 1;
            self.footprint.touch(Component::Copy, line);
            self.offchip_writebacks += 1;
            self.classifier.writeback(line, seq);
        }
        len
    }

    /// Dirty lines flushed ahead of a DMA read are off-chip writebacks of
    /// the first `flushed` dirty lines found in `range` (identity
    /// approximation: the classifier needs a line, and dirty lines are
    /// overwhelmingly a prefix-uniform subset of the range).
    fn record_flush(&mut self, range: AddrRange, flushed: u64, seq: u32) {
        for (i, line) in range.lines().enumerate() {
            if (i as u64) >= flushed {
                break;
            }
            self.offchip_writebacks += 1;
            self.classifier.writeback(line, seq);
        }
    }

    fn report(self, roi: Ps) -> RunReport {
        // Build the activity timeline.
        let mut tl = Timeline::new();
        let copy_c = tl.add_component("copy");
        let cpu_c = tl.add_component("cpu");
        let gpu_c = tl.add_component("gpu");
        let launch_c = tl.add_component("launch");
        for &(comp, s, e) in &self.arena.busy {
            let c = match comp {
                Component::Copy => copy_c,
                Component::Cpu => cpu_c,
                Component::Gpu => gpu_c,
            };
            tl.record(c, s, e);
        }
        for &(s, e) in &self.arena.launches {
            tl.record(launch_c, s, e);
        }
        let bd = tl.breakdown();
        let mut c_serial = Ps::ZERO;
        let mut exclusive = Vec::new();
        for (set, d) in bd.iter() {
            if set.contains(launch_c) && !set.contains(gpu_c) && !set.contains(copy_c) {
                c_serial += d;
            }
            // Exclusive slices over the three real components only.
            let mut label = Vec::new();
            for (c, name) in [(copy_c, "copy"), (cpu_c, "cpu"), (gpu_c, "gpu")] {
                if set.contains(c) {
                    label.push(name);
                }
            }
            if !label.is_empty() {
                exclusive.push(ExclusiveSlice {
                    components: label.join("+"),
                    time: d,
                });
            }
        }
        // Merge duplicate labels (sets differing only in the launch bit).
        exclusive.sort_by(|a, b| a.components.cmp(&b.components));
        exclusive.dedup_by(|b, a| {
            if a.components == b.components {
                a.time += b.time;
                true
            } else {
                false
            }
        });

        let busy = ComponentTimes {
            copy: tl.busy(copy_c),
            cpu: tl.busy(cpu_c),
            gpu: tl.busy(gpu_c),
        };
        let offchip_bytes = (self.offchip_fetches + self.offchip_writebacks) * LINE_BYTES;
        let classes: ClassCounts = self.classifier.finish();
        let footprint = self.footprint.breakdown();
        let total_footprint = self.footprint.total_bytes();
        let bw = self.config.gpu_mem_bw();
        let bw_limited = roi > Ps::ZERO && offchip_bytes as f64 / roi.as_secs_f64() > 0.70 * bw;

        let report = RunReport {
            benchmark: self.pipeline.name.clone(),
            platform: self.config.platform,
            organization: self.org,
            roi,
            busy,
            exclusive,
            accesses: self.accesses,
            offchip_fetches: self.offchip_fetches,
            offchip_writebacks: self.offchip_writebacks,
            offchip_bytes,
            classes,
            footprint,
            total_footprint,
            faults: self.faults,
            c_serial,
            cpu_flops: self.cpu_flops,
            gpu_flops: self.gpu_flops,
            remote_hits: self.hierarchy.remote_hits_cpu() + self.hierarchy.remote_hits_gpu(),
            bw_limited,
        };
        self.arena.put_back();
        report
    }
}

/// Convenience: the `(TouchSet, bytes)` breakdown type used in reports.
pub type FootprintBreakdown = Vec<(TouchSet, u64)>;

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe_workloads::{registry, Scale};

    fn kmeans() -> Pipeline {
        registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap()
    }

    #[test]
    fn serial_discrete_run_completes() {
        let p = kmeans();
        let r = run(&p, &SystemConfig::discrete(), Organization::Serial, false);
        assert!(r.roi > Ps::ZERO);
        assert!(r.busy.copy > Ps::ZERO, "copies must take time");
        assert!(r.busy.gpu > Ps::ZERO);
        assert!(r.busy.cpu > Ps::ZERO);
        assert!(r.accesses.iter().sum::<u64>() > 0);
        assert_eq!(r.faults, 0, "discrete GPU never faults");
    }

    #[test]
    fn serial_run_has_no_overlap() {
        let p = kmeans();
        let r = run(&p, &SystemConfig::discrete(), Organization::Serial, false);
        // Bulk-synchronous: busy times sum to (almost exactly) the ROI.
        let total = r.busy.copy + r.busy.cpu + r.busy.gpu;
        let ratio = total.as_secs_f64() / r.roi.as_secs_f64();
        assert!((0.95..=1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hetero_removes_copy_time_and_shrinks_footprint() {
        let p = kmeans();
        let d = run(&p, &SystemConfig::discrete(), Organization::Serial, false);
        let h = run(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            false,
        );
        assert_eq!(h.busy.copy, Ps::ZERO, "kmeans copies are all elidable");
        assert!(h.roi < d.roi, "copy removal must help kmeans");
        assert!(h.total_footprint < d.total_footprint);
        assert_eq!(h.accesses[Component::Copy.index()], 0);
    }

    #[test]
    fn async_streams_beat_serial_on_discrete() {
        // Per-chunk DMA setup is disproportionate at tiny inputs; use a
        // realistic scale.
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::new(0.5))
            .unwrap();
        let serial = run(&p, &SystemConfig::discrete(), Organization::Serial, false);
        let streamed = run(
            &p,
            &SystemConfig::discrete(),
            Organization::AsyncStreams { streams: 3 },
            false,
        );
        assert!(
            streamed.roi < serial.roi,
            "streams {} vs serial {}",
            streamed.roi,
            serial.roi
        );
    }

    #[test]
    fn chunked_parallel_beats_serial_on_hetero() {
        // Needs a non-trivial scale: at tiny inputs per-chunk kernel-launch
        // overhead swamps the overlap gain (as it would in reality).
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::new(0.5))
            .unwrap();
        let serial = run(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            false,
        );
        let chunked = run(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::ChunkedParallel { chunks: 6 },
            false,
        );
        assert!(
            chunked.roi < serial.roi,
            "chunked {} vs serial {}",
            chunked.roi,
            serial.roi
        );
    }

    #[test]
    fn srad_faults_on_hetero_only() {
        let p = registry::find("rodinia/srad")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let d = run(&p, &SystemConfig::discrete(), Organization::Serial, false);
        let h = run(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            false,
        );
        assert_eq!(d.faults, 0);
        assert!(
            h.faults > 100,
            "srad's GPU-temp planes must fault: {}",
            h.faults
        );
    }

    #[test]
    fn classifier_totals_match_offchip_traffic() {
        let p = kmeans();
        let r = run(&p, &SystemConfig::discrete(), Organization::Serial, false);
        assert_eq!(r.classes.total(), r.offchip_fetches + r.offchip_writebacks);
    }

    #[test]
    fn footprint_breakdown_covers_total() {
        let p = kmeans();
        let r = run(&p, &SystemConfig::discrete(), Organization::Serial, false);
        let sum: u64 = r.footprint.iter().map(|(_, b)| b).sum();
        assert_eq!(sum, r.total_footprint);
    }

    #[test]
    fn runs_are_deterministic() {
        let p = kmeans();
        let a = run(&p, &SystemConfig::discrete(), Organization::Serial, false);
        let b = run(&p, &SystemConfig::discrete(), Organization::Serial, false);
        assert_eq!(a.roi, b.roi);
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.classes, b.classes);
    }

    #[test]
    fn misalignment_increases_gpu_accesses() {
        let p = registry::find("rodinia/hotspot")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let aligned_cfg = {
            let mut c = SystemConfig::heterogeneous();
            c.aligned_allocator = true;
            c
        };
        let aligned = run(&p, &aligned_cfg, Organization::Serial, true);
        let misaligned = run(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            true,
        );
        assert!(
            misaligned.accesses[Component::Gpu.index()] > aligned.accesses[Component::Gpu.index()],
            "misalignment must inflate GPU accesses"
        );
    }
}
