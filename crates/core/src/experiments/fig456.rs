//! Figs. 4, 5, and 6 — per-benchmark copy vs limited-copy comparisons of
//! memory footprint, memory access counts, and run-time component activity.

use heteropipe_mem::access::Component;

use crate::experiments::characterize::{geomean, BenchPair};
use crate::footprint::TouchSet;
use crate::render::{pct, TextTable};

/// Fig. 4 row: footprint by exact component subset, both versions
/// normalized to the copy version's total.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// `suite/bench`.
    pub name: String,
    /// `(subset, fraction-of-copy-total)` for the copy version.
    pub copy: Vec<(TouchSet, f64)>,
    /// Same for the limited-copy version.
    pub limited: Vec<(TouchSet, f64)>,
    /// Limited-copy total footprint over copy total.
    pub limited_rel: f64,
}

/// Computes Fig. 4 rows from a characterization.
pub fn fig4(pairs: &[BenchPair]) -> Vec<Fig4Row> {
    pairs
        .iter()
        .map(|p| {
            let base = p.copy.total_footprint.max(1) as f64;
            let norm = |fp: &[(TouchSet, u64)]| {
                fp.iter()
                    .map(|&(s, b)| (s, b as f64 / base))
                    .collect::<Vec<_>>()
            };
            Fig4Row {
                name: p.meta.full_name(),
                copy: norm(&p.copy.footprint),
                limited: norm(&p.limited.footprint),
                limited_rel: p.limited.total_footprint as f64 / base,
            }
        })
        .collect()
}

fn fig4_table(rows: &[Fig4Row]) -> TextTable {
    let mut t = TextTable::new(&[
        "benchmark",
        "version",
        "total",
        "Copy",
        "CPU",
        "GPU",
        "Copy+CPU",
        "Copy+GPU",
        "CPU+GPU",
        "all",
    ]);
    for r in rows {
        for (tag, total, parts) in [
            ("copy", 1.0, &r.copy),
            ("limited", r.limited_rel, &r.limited),
        ] {
            let mut cells = vec![r.name.clone(), tag.to_string(), format!("{total:.2}")];
            for (_, frac) in parts {
                cells.push(pct(*frac));
            }
            t.row_owned(cells);
        }
    }
    t
}

/// Renders Fig. 4.
pub fn render_fig4(rows: &[Fig4Row]) -> String {
    format!(
        "Fig. 4 — memory footprint by component subset (normalized to copy total)\n\n{}",
        fig4_table(rows).render()
    )
}

/// Fig. 4 as CSV.
pub fn csv_fig4(rows: &[Fig4Row]) -> String {
    fig4_table(rows).to_csv()
}

/// Fig. 5 row: line accesses per component, both versions normalized to the
/// copy version's total.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// `suite/bench`, suffixed `*` when misalignment-sensitive.
    pub name: String,
    /// Copy version `(copy_engine, cpu, gpu)` fractions.
    pub copy: [f64; 3],
    /// Limited-copy fractions (of the copy version's total).
    pub limited: [f64; 3],
}

impl Fig5Row {
    /// Limited-copy total relative to copy total.
    pub fn limited_rel(&self) -> f64 {
        self.limited.iter().sum()
    }
}

/// Computes Fig. 5 rows.
pub fn fig5(pairs: &[BenchPair]) -> Vec<Fig5Row> {
    pairs
        .iter()
        .map(|p| {
            let base = p.copy.total_accesses().max(1) as f64;
            let f = |r: &crate::report::RunReport| {
                [
                    r.accesses[Component::Copy.index()] as f64 / base,
                    r.accesses[Component::Cpu.index()] as f64 / base,
                    r.accesses[Component::Gpu.index()] as f64 / base,
                ]
            };
            Fig5Row {
                name: format!(
                    "{}{}",
                    p.meta.full_name(),
                    if p.meta.misalignment_sensitive {
                        "*"
                    } else {
                        ""
                    }
                ),
                copy: f(&p.copy),
                limited: f(&p.limited),
            }
        })
        .collect()
}

fn fig5_table(rows: &[Fig5Row]) -> TextTable {
    let mut t = TextTable::new(&[
        "benchmark",
        "copy:engine",
        "copy:cpu",
        "copy:gpu",
        "lim:engine",
        "lim:cpu",
        "lim:gpu",
        "lim total",
    ]);
    for r in rows {
        t.row_owned(vec![
            r.name.clone(),
            pct(r.copy[0]),
            pct(r.copy[1]),
            pct(r.copy[2]),
            pct(r.limited[0]),
            pct(r.limited[1]),
            pct(r.limited[2]),
            format!("{:.2}", r.limited_rel()),
        ]);
    }
    t
}

/// Renders Fig. 5 with the paper's headline aggregate (total accesses
/// decline by more than 11% in the geomean).
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let gm = geomean(rows.iter().map(|r| r.limited_rel()));
    format!(
        "Fig. 5 — memory accesses by component (normalized to copy total; * = misalignment-sensitive)\n\n{}\ngeomean limited/copy total accesses: {:.3} (paper: copy accesses decline >11%)\n",
        fig5_table(rows).render(),
        gm
    )
}

/// Fig. 5 as CSV.
pub fn csv_fig5(rows: &[Fig5Row]) -> String {
    fig5_table(rows).to_csv()
}

/// Fig. 6 row: run time activity, both versions normalized to the copy
/// version's run time.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// `suite/bench`.
    pub name: String,
    /// `(label, fraction-of-copy-runtime)` exclusive slices, copy version.
    pub copy: Vec<(String, f64)>,
    /// Limited-copy slices (fractions of copy runtime).
    pub limited: Vec<(String, f64)>,
    /// Limited-copy run time over copy run time.
    pub limited_rel: f64,
    /// GPU page faults taken by the limited-copy version.
    pub faults: u64,
}

/// Computes Fig. 6 rows.
pub fn fig6(pairs: &[BenchPair]) -> Vec<Fig6Row> {
    pairs
        .iter()
        .map(|p| {
            let base = p.copy.roi;
            let slices = |r: &crate::report::RunReport| {
                r.exclusive
                    .iter()
                    .map(|s| (s.components.clone(), s.time.fraction_of(base)))
                    .collect::<Vec<_>>()
            };
            Fig6Row {
                name: p.meta.full_name(),
                copy: slices(&p.copy),
                limited: slices(&p.limited),
                limited_rel: p.limited.roi.fraction_of(base),
                faults: p.limited.faults,
            }
        })
        .collect()
}

/// The paper's §IV-C aggregate: geomean limited-copy run time relative to
/// copy (paper: ~0.93, a 7% improvement).
pub fn fig6_geomean(rows: &[Fig6Row]) -> f64 {
    geomean(rows.iter().map(|r| r.limited_rel))
}

/// The §IV-C decomposition of where the limited-copy delta comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Effects {
    /// Geomean fraction of copy-version run time spent in copies that the
    /// port removes (paper: ~11%).
    pub copy_removed: f64,
    /// Geomean limited/copy CPU busy-time ratio — below 1 when CPU stages
    /// speed up from retained caches (paper: ~6% improvement).
    pub cpu_ratio: f64,
    /// Geomean limited/copy GPU busy-time ratio — above 1 when page faults
    /// stall kernels (paper: ~9% slowdown).
    pub gpu_ratio: f64,
}

/// Computes the effect decomposition from a characterization.
pub fn fig6_effects(pairs: &[BenchPair]) -> Fig6Effects {
    Fig6Effects {
        copy_removed: geomean(pairs.iter().map(|p| {
            let removed = p
                .copy
                .busy
                .copy
                .saturating_sub(p.limited.busy.copy)
                .as_secs_f64();
            (removed / p.copy.roi.as_secs_f64()).max(1e-6)
        })),
        cpu_ratio: geomean(
            pairs.iter().map(|p| {
                p.limited.busy.cpu.as_secs_f64() / p.copy.busy.cpu.as_secs_f64().max(1e-12)
            }),
        ),
        gpu_ratio: geomean(
            pairs.iter().map(|p| {
                p.limited.busy.gpu.as_secs_f64() / p.copy.busy.gpu.as_secs_f64().max(1e-12)
            }),
        ),
    }
}

/// Renders Fig. 6 (with the §IV-C effect decomposition when `pairs` is
/// also available, via [`render_fig6_with_effects`]).
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    format!(
        "Fig. 6 — run time component activity (normalized to copy run time)\n\n{}\ngeomean limited/copy run time: {:.3} (paper: ~0.93)\n",
        fig6_table(rows).render(),
        fig6_geomean(rows)
    )
}

fn fig6_table(rows: &[Fig6Row]) -> TextTable {
    let mut t = TextTable::new(&[
        "benchmark",
        "version",
        "rel.time",
        "faults",
        "activity slices",
    ]);
    for r in rows {
        let fmt_slices = |sl: &[(String, f64)]| {
            sl.iter()
                .map(|(l, f)| format!("{l}={}", pct(*f)))
                .collect::<Vec<_>>()
                .join(" ")
        };
        t.row_owned(vec![
            r.name.clone(),
            "copy".into(),
            "1.00".into(),
            "0".into(),
            fmt_slices(&r.copy),
        ]);
        t.row_owned(vec![
            r.name.clone(),
            "limited".into(),
            format!("{:.2}", r.limited_rel),
            r.faults.to_string(),
            fmt_slices(&r.limited),
        ]);
    }
    t
}

/// Fig. 6 as CSV.
pub fn csv_fig6(rows: &[Fig6Row]) -> String {
    fig6_table(rows).to_csv()
}

/// Renders Fig. 6 plus the §IV-C decomposition line.
pub fn render_fig6_with_effects(rows: &[Fig6Row], pairs: &[BenchPair]) -> String {
    let e = fig6_effects(pairs);
    format!(
        "{}§IV-C decomposition (geomeans): copy time removed {} of run time | CPU busy ratio {:.3} | GPU busy ratio {:.3}\n(paper: ~11% copy removal, ~6% CPU caching gain, ~9% GPU fault slowdown)\n",
        render_fig6(rows),
        pct(e.copy_removed),
        e.cpu_ratio,
        e.gpu_ratio,
    )
}

/// Convenience for tests: a pair's copy-version serial invariant — slices
/// sum to approximately the run time.
pub fn slices_cover(rows: &[(String, f64)], rel: f64) -> bool {
    let sum: f64 = rows.iter().map(|(_, f)| f).sum();
    (sum - rel).abs() < 0.1 * rel.max(0.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::characterize::characterize_filtered;
    use heteropipe_workloads::Scale;

    fn pairs() -> Vec<BenchPair> {
        characterize_filtered(Scale::TEST, |m| {
            ["kmeans", "srad", "backprop"].contains(&m.name) && m.suite.to_string() == "Rodinia"
        })
    }

    #[test]
    fn fig4_footprint_shrinks_without_mirrors() {
        let rows = fig4(&pairs());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.limited_rel < 0.95,
                "{}: limited footprint {} should shrink",
                r.name,
                r.limited_rel
            );
            // Copy version fractions sum to ~1.
            let sum: f64 = r.copy.iter().map(|(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {}", r.name, sum);
        }
    }

    #[test]
    fn fig5_copy_accesses_vanish_in_limited() {
        let rows = fig5(&pairs());
        for r in &rows {
            assert!(
                r.copy[0] > 0.0,
                "{}: copy engine active in copy version",
                r.name
            );
            if !r.name.contains("srad") {
                // srad and friends may keep residual memcpys; kmeans and
                // backprop are fully elided.
                assert_eq!(r.limited[0], 0.0, "{}", r.name);
            }
        }
    }

    #[test]
    fn fig6_runtime_breakdown_covers() {
        let rows = fig6(&pairs());
        for r in &rows {
            assert!(slices_cover(&r.copy, 1.0), "{}: {:?}", r.name, r.copy);
            assert!(r.limited_rel > 0.0);
        }
        let gm = fig6_geomean(&rows);
        assert!(gm > 0.2 && gm < 1.2, "geomean {gm}");
    }

    #[test]
    fn effects_decomposition_directions() {
        let p = pairs();
        let e = fig6_effects(&p);
        assert!(e.copy_removed > 0.0 && e.copy_removed < 1.0);
        // kmeans/backprop CPU stages benefit from retained caches.
        assert!(e.cpu_ratio < 1.05, "cpu ratio {}", e.cpu_ratio);
        // srad's faults push the GPU ratio above 1.
        assert!(e.gpu_ratio > 1.0, "gpu ratio {}", e.gpu_ratio);
    }

    #[test]
    fn renders_mention_benchmarks() {
        let p = pairs();
        let s4 = render_fig4(&fig4(&p));
        let s5 = render_fig5(&fig5(&p));
        let s6 = render_fig6(&fig6(&p));
        for s in [&s4, &s5, &s6] {
            assert!(s.contains("rodinia/kmeans"));
        }
        assert!(s5.contains("geomean"));
        assert!(s6.contains("paper"));
    }
}
