//! Fig. 9 — off-chip memory accesses broken down by cause, copy vs
//! limited-copy, normalized to the copy version's total.
//!
//! Paper reference points: spills are ~10% of accesses on average; R-R
//! contention averages 38% and reaches 80%+; W-R contention reaches 36%;
//! bandwidth-limited benchmarks (`*`) are mostly the contention-heavy ones.

use crate::classify::AccessClass;
use crate::experiments::characterize::BenchPair;
use crate::render::{pct, TextTable};

/// One version's class fractions (of the copy version's total off-chip
/// transactions).
#[derive(Debug, Clone, Copy)]
pub struct ClassFractions {
    /// Fractions in [`AccessClass::ALL`] order.
    pub fractions: [f64; 5],
    /// Whether this run pushed against the off-chip bandwidth limit.
    pub bw_limited: bool,
}

/// Fig. 9 row.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// `suite/bench`.
    pub name: String,
    /// Copy version.
    pub copy: ClassFractions,
    /// Limited-copy version (fractions of copy total).
    pub limited: ClassFractions,
}

impl Fig9Row {
    /// Contention share of the copy version's own traffic.
    pub fn copy_contention_share(&self) -> f64 {
        let total: f64 = self.copy.fractions.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        (self.copy.fractions[AccessClass::RrContention.index()]
            + self.copy.fractions[AccessClass::WrContention.index()])
            / total
    }
}

/// Computes Fig. 9 rows.
pub fn fig9(pairs: &[BenchPair]) -> Vec<Fig9Row> {
    pairs
        .iter()
        .map(|p| {
            let base = p.copy.classes.total().max(1) as f64;
            let f = |r: &crate::report::RunReport| {
                let mut fractions = [0.0; 5];
                for c in AccessClass::ALL {
                    fractions[c.index()] = r.classes.get(c) as f64 / base;
                }
                ClassFractions {
                    fractions,
                    bw_limited: r.bw_limited,
                }
            };
            Fig9Row {
                name: p.meta.full_name(),
                copy: f(&p.copy),
                limited: f(&p.limited),
            }
        })
        .collect()
}

/// Aggregate class shares across all rows for one version (mean of
/// per-benchmark shares), in [`AccessClass::ALL`] order.
pub fn mean_shares(rows: &[Fig9Row], limited: bool) -> [f64; 5] {
    let mut sums = [0.0; 5];
    let mut n = 0.0;
    for r in rows {
        let v = if limited { &r.limited } else { &r.copy };
        let total: f64 = v.fractions.iter().sum();
        if total > 0.0 {
            for (s, f) in sums.iter_mut().zip(&v.fractions) {
                *s += f / total;
            }
            n += 1.0;
        }
    }
    if n > 0.0 {
        for s in &mut sums {
            *s /= n;
        }
    }
    sums
}

/// Renders Fig. 9.
fn fig9_table(rows: &[Fig9Row]) -> TextTable {
    let mut t = TextTable::new(&[
        "benchmark",
        "version",
        "required",
        "w-r spill",
        "r-r spill",
        "r-r cont",
        "w-r cont",
        "total",
    ]);
    for r in rows {
        for (tag, v) in [("copy", &r.copy), ("limited", &r.limited)] {
            let total: f64 = v.fractions.iter().sum();
            let star = if v.bw_limited { "*" } else { "" };
            let mut cells = vec![format!("{}{}", r.name, star), tag.to_string()];
            for f in v.fractions {
                cells.push(pct(f));
            }
            cells.push(format!("{total:.2}"));
            t.row_owned(cells);
        }
    }
    t
}

/// Fig. 9 as CSV.
pub fn csv(rows: &[Fig9Row]) -> String {
    fig9_table(rows).to_csv()
}

/// Renders Fig. 9 with the paper-comparison summary line.
pub fn render(rows: &[Fig9Row]) -> String {
    let t = fig9_table(rows);
    let mean = mean_shares(rows, true);
    format!(
        "Fig. 9 — off-chip accesses by cause (normalized to copy total; * = bandwidth-limited)\n\n{}\nmean limited-copy shares: required {} | w-r spill {} | r-r spill {} | r-r contention {} | w-r contention {}\n(paper: spills ~10%, r-r contention ~38% mean / 80% max)\n",
        t.render(),
        pct(mean[0]),
        pct(mean[1]),
        pct(mean[2]),
        pct(mean[3]),
        pct(mean[4]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::characterize::characterize_filtered;
    use heteropipe_workloads::Scale;

    #[test]
    fn graph_benchmarks_show_heavy_contention() {
        // Contention needs working sets beyond the 1 MiB GPU L2, so this
        // test runs at a non-trivial scale.
        let pairs = characterize_filtered(Scale::new(0.5), |m| {
            m.full_name() == "pannotia/pr" || m.full_name() == "lonestar/sssp"
        });
        let rows = fig9(&pairs);
        for r in &rows {
            assert!(
                r.copy_contention_share() > 0.3,
                "{}: contention share {}",
                r.name,
                r.copy_contention_share()
            );
        }
    }

    #[test]
    fn fractions_account_for_all_traffic() {
        let pairs = characterize_filtered(Scale::TEST, |m| m.name == "kmeans");
        let rows = fig9(&pairs);
        let copy_total: f64 = rows[0].copy.fractions.iter().sum();
        assert!((copy_total - 1.0).abs() < 1e-9, "{copy_total}");
    }

    #[test]
    fn producer_consumer_spills_present_in_kmeans() {
        let pairs = characterize_filtered(Scale::TEST, |m| m.name == "kmeans");
        let rows = fig9(&pairs);
        let wr = rows[0].copy.fractions[AccessClass::WrSpill.index()];
        assert!(wr > 0.01, "kmeans must show W-R spills, got {wr}");
    }

    #[test]
    fn render_includes_summary() {
        let pairs = characterize_filtered(Scale::TEST, |m| m.name == "kmeans");
        let s = render(&fig9(&pairs));
        assert!(s.contains("mean limited-copy shares"));
        assert!(s.contains("r-r cont"));
    }
}
